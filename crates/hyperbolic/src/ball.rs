//! Poincaré-ball operations (§III-B of the paper).
//!
//! Points are slices of `f64`; the geometry is precision-sensitive near the
//! boundary so this crate computes in double precision and lets callers
//! narrow to `f32` when feeding the neural stack.

/// The Poincaré ball `B^{d,c} = {x : c‖x‖² < 1}` with curvature `-c` (`c > 0`).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct PoincareBall {
    /// Curvature magnitude (the space has curvature `-c`).
    pub c: f64,
}

/// Keeps points strictly inside the ball; mirrors the usual `1e-5` boundary
/// epsilon of hyperbolic embedding implementations.
pub const BOUNDARY_EPS: f64 = 1e-5;

impl Default for PoincareBall {
    /// Unit curvature, the paper's "without loss of generality c = 1".
    fn default() -> Self {
        PoincareBall { c: 1.0 }
    }
}

impl PoincareBall {
    /// A ball with curvature `-c` (`c > 0`).
    pub fn new(c: f64) -> Self {
        assert!(c > 0.0, "curvature parameter c must be positive, got {c}");
        PoincareBall { c }
    }

    /// Maximum Euclidean norm of a representable point.
    pub fn max_norm(&self) -> f64 {
        (1.0 / self.c).sqrt() * (1.0 - BOUNDARY_EPS)
    }

    /// True when `x` lies strictly inside the ball.
    pub fn contains(&self, x: &[f64]) -> bool {
        self.c * dot(x, x) < 1.0
    }

    /// Radially projects `x` into the ball if it escaped (in place).
    pub fn project(&self, x: &mut [f64]) {
        let norm = dot(x, x).sqrt();
        let max = self.max_norm();
        if norm > max {
            let s = max / norm;
            for xi in x.iter_mut() {
                *xi *= s;
            }
        }
    }

    /// Möbius addition `x ⊕_c y` (Eq. 1).
    pub fn mobius_add(&self, x: &[f64], y: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), y.len(), "mobius_add dim mismatch");
        let c = self.c;
        let xy = dot(x, y);
        let x2 = dot(x, x);
        let y2 = dot(y, y);
        let denom = 1.0 + 2.0 * c * xy + c * c * x2 * y2;
        let ax = (1.0 + 2.0 * c * xy + c * y2) / denom;
        let ay = (1.0 - c * x2) / denom;
        let mut out: Vec<f64> = x
            .iter()
            .zip(y)
            .map(|(&xi, &yi)| ax * xi + ay * yi)
            .collect();
        self.project(&mut out);
        out
    }

    /// Hyperbolic distance `d(x, y)` (Eq. 2).
    pub fn distance(&self, x: &[f64], y: &[f64]) -> f64 {
        let c = self.c;
        let neg_x: Vec<f64> = x.iter().map(|&v| -v).collect();
        let m = self.mobius_add(&neg_x, y);
        let arg = (c.sqrt() * dot(&m, &m).sqrt()).min(1.0 - 1e-12);
        2.0 / c.sqrt() * arg.atanh()
    }

    /// The `c = 1` induced distance of Eq. 3 (arcosh form); equal to
    /// [`Self::distance`] up to floating error, kept because the paper writes
    /// both and the filter uses this closed form.
    pub fn distance_arcosh(&self, x: &[f64], y: &[f64]) -> f64 {
        assert!(
            (self.c - 1.0).abs() < 1e-12,
            "arcosh form is the c = 1 special case"
        );
        let x2 = dot(x, x);
        let y2 = dot(y, y);
        let diff2: f64 = x.iter().zip(y).map(|(&a, &b)| (a - b) * (a - b)).sum();
        let denom = ((1.0 - x2) * (1.0 - y2)).max(1e-15);
        let arg = 1.0 + 2.0 * diff2 / denom;
        arg.max(1.0).acosh()
    }

    /// Exponential map at the origin: tangent vector → ball point.
    pub fn exp0(&self, v: &[f64]) -> Vec<f64> {
        let c = self.c;
        let norm = dot(v, v).sqrt();
        if norm < 1e-15 {
            return v.to_vec();
        }
        let scale = (c.sqrt() * norm).tanh() / (c.sqrt() * norm);
        let mut out: Vec<f64> = v.iter().map(|&vi| scale * vi).collect();
        self.project(&mut out);
        out
    }

    /// Logarithmic map at the origin: ball point → tangent vector (Eq. 12).
    pub fn log0(&self, x: &[f64]) -> Vec<f64> {
        let c = self.c;
        let norm = dot(x, x).sqrt();
        if norm < 1e-15 {
            return x.to_vec();
        }
        let scaled = (c.sqrt() * norm).min(1.0 - 1e-12);
        let scale = scaled.atanh() / (c.sqrt() * norm);
        x.iter().map(|&xi| scale * xi).collect()
    }

    /// Left-folds Möbius addition over a sequence of points — the paper's
    /// hyperbolic chain embedding `h_c = h_{r1} ⊕ h_{r2} ⊕ …` (Eq. 7).
    ///
    /// Returns the origin for an empty chain (the identity of ⊕).
    pub fn mobius_chain(&self, points: &[&[f64]], dim: usize) -> Vec<f64> {
        let mut acc = vec![0.0; dim];
        for p in points {
            acc = self.mobius_add(&acc, p);
        }
        acc
    }

    /// The conformal factor `λ_x = 2 / (1 - c‖x‖²)`, used by Riemannian SGD.
    pub fn conformal_factor(&self, x: &[f64]) -> f64 {
        2.0 / (1.0 - self.c * dot(x, x)).max(1e-15)
    }
}

/// Plain Euclidean distance, used by the Figure-7 "Euclidean space" filter arm.
pub fn euclidean_distance(x: &[f64], y: &[f64]) -> f64 {
    x.iter()
        .zip(y)
        .map(|(&a, &b)| (a - b) * (a - b))
        .sum::<f64>()
        .sqrt()
}

pub(crate) fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-9;

    fn ball() -> PoincareBall {
        PoincareBall::default()
    }

    #[test]
    fn mobius_identity_element() {
        // x ⊕ 0 = 0 ⊕ x = x (stated under Eq. 1).
        let b = ball();
        let x = vec![0.3, -0.2, 0.1];
        let zero = vec![0.0; 3];
        for (a, e) in b.mobius_add(&x, &zero).iter().zip(&x) {
            assert!((a - e).abs() < TOL);
        }
        for (a, e) in b.mobius_add(&zero, &x).iter().zip(&x) {
            assert!((a - e).abs() < TOL);
        }
    }

    #[test]
    fn mobius_left_inverse() {
        // (−x) ⊕ x = 0.
        let b = ball();
        let x = vec![0.5, 0.2];
        let nx: Vec<f64> = x.iter().map(|&v| -v).collect();
        let r = b.mobius_add(&nx, &x);
        assert!(r.iter().all(|&v| v.abs() < TOL), "{r:?}");
    }

    #[test]
    fn mobius_is_not_commutative_in_general() {
        let b = ball();
        let x = vec![0.5, 0.0];
        let y = vec![0.0, 0.5];
        let xy = b.mobius_add(&x, &y);
        let yx = b.mobius_add(&y, &x);
        let diff: f64 = xy.iter().zip(&yx).map(|(a, c)| (a - c).abs()).sum();
        assert!(diff > 1e-6, "Möbius addition unexpectedly commuted");
    }

    #[test]
    fn mobius_stays_in_ball() {
        let b = ball();
        let x = vec![0.9, 0.4];
        // ‖x‖ close to 1 — result must still be inside.
        let y = vec![0.43, -0.89];
        let r = b.mobius_add(&x, &y);
        assert!(b.contains(&r), "escaped the ball: {r:?}");
    }

    #[test]
    fn distance_forms_agree() {
        let b = ball();
        let x = vec![0.1, 0.2, -0.3];
        let y = vec![-0.4, 0.05, 0.2];
        let d1 = b.distance(&x, &y);
        let d2 = b.distance_arcosh(&x, &y);
        assert!((d1 - d2).abs() < 1e-9, "{d1} vs {d2}");
    }

    #[test]
    fn distance_is_a_metric_sample() {
        let b = ball();
        let x = vec![0.1, 0.1];
        let y = vec![-0.2, 0.3];
        let z = vec![0.4, -0.1];
        assert!(b.distance(&x, &x) < 1e-9);
        assert!((b.distance(&x, &y) - b.distance(&y, &x)).abs() < 1e-9);
        assert!(b.distance(&x, &z) <= b.distance(&x, &y) + b.distance(&y, &z) + 1e-9);
    }

    #[test]
    fn distance_grows_toward_boundary() {
        // Same Euclidean gap costs more hyperbolic distance near the rim —
        // the "variable resolution" the paper exploits.
        let b = ball();
        let near_origin = b.distance(&[0.0, 0.0], &[0.1, 0.0]);
        let near_rim = b.distance(&[0.85, 0.0], &[0.95, 0.0]);
        assert!(near_rim > 3.0 * near_origin, "{near_rim} vs {near_origin}");
    }

    #[test]
    fn exp_log_round_trip() {
        let b = ball();
        let v = vec![0.7, -1.2, 0.4];
        let x = b.exp0(&v);
        assert!(b.contains(&x));
        let back = b.log0(&x);
        for (a, e) in back.iter().zip(&v) {
            assert!((a - e).abs() < 1e-9, "{back:?} vs {v:?}");
        }
    }

    #[test]
    fn exp0_of_zero_is_origin() {
        let b = ball();
        assert_eq!(b.exp0(&[0.0, 0.0]), vec![0.0, 0.0]);
        assert_eq!(b.log0(&[0.0, 0.0]), vec![0.0, 0.0]);
    }

    #[test]
    fn distance_along_geodesic_through_origin_matches_formula() {
        // For points r·e on a ray, d(0, r·e) = 2·artanh(r) at c = 1.
        let b = ball();
        let r: f64 = 0.6;
        let d = b.distance(&[0.0, 0.0], &[r, 0.0]);
        assert!((d - 2.0 * r.atanh()).abs() < 1e-9);
    }

    #[test]
    fn mobius_chain_reduces_to_single_point() {
        let b = ball();
        let p = vec![0.2, 0.3];
        let chain = b.mobius_chain(&[&p], 2);
        for (a, e) in chain.iter().zip(&p) {
            assert!((a - e).abs() < TOL);
        }
        assert_eq!(b.mobius_chain(&[], 2), vec![0.0, 0.0]);
    }

    #[test]
    fn project_pulls_back_escaped_points() {
        let b = ball();
        let mut x = vec![2.0, 0.0];
        b.project(&mut x);
        assert!(b.contains(&x));
        assert!(x[0] > 0.99);
    }

    #[test]
    fn curvature_scales_distances() {
        // Smaller c -> flatter space -> distance closer to 2‖x−y‖ (Eq. 2 limit).
        let flat = PoincareBall::new(1e-6);
        let d = flat.distance(&[0.1, 0.0], &[0.3, 0.0]);
        assert!((d - 2.0 * 0.2).abs() < 1e-3, "flat-limit distance {d}");
    }

    #[test]
    fn euclidean_distance_basic() {
        assert!((euclidean_distance(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }
}
