//! Trainable Poincaré embeddings with negative-sampling Riemannian SGD
//! (Nickel & Kiela style), used to pre-train the Hyperbolic Filter's
//! relation/attribute table.

use crate::ball::PoincareBall;
use crate::grad::{distance_grad_x, rsgd_step};
use cf_rand::Rng;

/// A table of points on the Poincaré ball, trained so that co-occurring
/// items sit close together.
#[derive(Clone, Debug)]
pub struct PoincareEmbeddings {
    ball: PoincareBall,
    dim: usize,
    points: Vec<Vec<f64>>,
}

impl PoincareEmbeddings {
    /// Initializes `n` points uniformly in a tiny ball around the origin
    /// (the customary Poincaré-embedding init).
    pub fn new(n: usize, dim: usize, rng: &mut impl Rng) -> Self {
        let points = (0..n)
            .map(|_| (0..dim).map(|_| rng.gen_range(-1e-3..1e-3)).collect())
            .collect();
        PoincareEmbeddings {
            ball: PoincareBall::default(),
            dim,
            points,
        }
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the table is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Dimensionality of the points.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The underlying Poincaré ball.
    pub fn ball(&self) -> &PoincareBall {
        &self.ball
    }

    /// Borrow of point `i`.
    pub fn point(&self, i: usize) -> &[f64] {
        &self.points[i]
    }

    /// Hyperbolic distance between stored points.
    pub fn distance(&self, i: usize, j: usize) -> f64 {
        self.ball.distance_arcosh(&self.points[i], &self.points[j])
    }

    /// One epoch of negative-sampling training over positive pairs.
    ///
    /// For each pair `(u, v)` we sample `negatives` uniform corruption
    /// targets and minimize `-log softmax(-d(u, v))` over the candidate set,
    /// taking Riemannian SGD steps on every involved point. Returns the mean
    /// loss.
    pub fn train_epoch(
        &mut self,
        pairs: &[(usize, usize)],
        negatives: usize,
        lr: f64,
        rng: &mut impl Rng,
    ) -> f64 {
        assert!(!self.points.is_empty());
        let mut total = 0.0;
        for &(u, v) in pairs {
            // Candidate list: the positive then the negatives.
            let mut cands = Vec::with_capacity(negatives + 1);
            cands.push(v);
            for _ in 0..negatives {
                let mut n = rng.gen_range(0..self.points.len());
                if n == v {
                    n = (n + 1) % self.points.len();
                }
                cands.push(n);
            }
            let dists: Vec<f64> = cands
                .iter()
                .map(|&c| self.ball.distance_arcosh(&self.points[u], &self.points[c]))
                .collect();
            // softmax over scores s_j = -d_j, stabilized.
            let smax = dists.iter().cloned().fold(f64::INFINITY, f64::min);
            let exps: Vec<f64> = dists.iter().map(|&d| (-(d - smax)).exp()).collect();
            let z: f64 = exps.iter().sum();
            let probs: Vec<f64> = exps.iter().map(|&e| e / z).collect();
            total += -(probs[0].max(1e-12)).ln();

            // dL/dd_j = δ_{j,pos} − p_j   (descent pulls the positive pair
            // together and pushes negatives apart).
            let mut grad_u = vec![0.0; self.dim];
            for (j, &cand) in cands.iter().enumerate() {
                let coef = if j == 0 { 1.0 - probs[j] } else { -probs[j] };
                if coef.abs() < 1e-12 {
                    continue;
                }
                let gu = distance_grad_x(&self.points[u], &self.points[cand]);
                for (acc, g) in grad_u.iter_mut().zip(&gu) {
                    *acc += coef * g;
                }
                let gv = distance_grad_x(&self.points[cand], &self.points[u]);
                let scaled: Vec<f64> = gv.iter().map(|&g| coef * g).collect();
                rsgd_step(&self.ball, &mut self.points[cand], &scaled, lr);
            }
            rsgd_step(&self.ball, &mut self.points[u], &grad_u, lr);
        }
        total / pairs.len().max(1) as f64
    }

    /// Trains with the usual burn-in schedule (reduced lr for the first
    /// tenth of the epochs). Returns the final-epoch mean loss.
    pub fn train(
        &mut self,
        pairs: &[(usize, usize)],
        epochs: usize,
        negatives: usize,
        lr: f64,
        rng: &mut impl Rng,
    ) -> f64 {
        let burn_in = (epochs / 10).max(1);
        let mut last = f64::INFINITY;
        for epoch in 0..epochs {
            let eff_lr = if epoch < burn_in { lr / 10.0 } else { lr };
            last = self.train_epoch(pairs, negatives, eff_lr, rng);
        }
        last
    }

    /// Log-map of point `i` to the tangent space at the origin, narrowed to
    /// `f32` for the neural stack (Eq. 12).
    pub fn log0_f32(&self, i: usize) -> Vec<f32> {
        self.ball
            .log0(&self.points[i])
            .into_iter()
            .map(|x| x as f32)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_rand::rngs::StdRng;
    use cf_rand::SeedableRng;

    #[test]
    fn init_points_are_near_origin_and_inside() {
        let mut rng = StdRng::seed_from_u64(0);
        let e = PoincareEmbeddings::new(10, 4, &mut rng);
        for i in 0..10 {
            assert!(e.ball().contains(e.point(i)));
            assert!(e.point(i).iter().all(|&x| x.abs() < 1e-3));
        }
    }

    #[test]
    fn training_separates_two_clusters() {
        // Items 0-4 co-occur, items 5-9 co-occur; after training,
        // intra-cluster distances should undercut inter-cluster ones.
        let mut rng = StdRng::seed_from_u64(1);
        let mut e = PoincareEmbeddings::new(10, 4, &mut rng);
        let mut pairs = Vec::new();
        for a in 0..5 {
            for b in 0..5 {
                if a != b {
                    pairs.push((a, b));
                    pairs.push((a + 5, b + 5));
                }
            }
        }
        e.train(&pairs, 40, 3, 0.1, &mut rng);
        let intra = e.distance(0, 1) + e.distance(5, 6);
        let inter = e.distance(0, 5) + e.distance(1, 6);
        assert!(
            inter > 1.5 * intra,
            "clusters not separated: intra {intra:.3} inter {inter:.3}"
        );
    }

    #[test]
    fn loss_decreases_over_training() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut e = PoincareEmbeddings::new(8, 3, &mut rng);
        let pairs: Vec<(usize, usize)> = (0..4)
            .flat_map(|a| (0..4).filter(move |&b| b != a).map(move |b| (a, b)))
            .collect();
        let first = e.train_epoch(&pairs, 2, 0.01, &mut rng);
        for _ in 0..30 {
            e.train_epoch(&pairs, 2, 0.05, &mut rng);
        }
        let last = e.train_epoch(&pairs, 2, 0.01, &mut rng);
        assert!(last < first, "loss did not decrease: {first} -> {last}");
    }

    #[test]
    fn points_stay_in_ball_under_aggressive_lr() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut e = PoincareEmbeddings::new(6, 2, &mut rng);
        let pairs = vec![(0, 1), (2, 3), (4, 5)];
        e.train(&pairs, 50, 4, 1.0, &mut rng);
        for i in 0..6 {
            assert!(e.ball().contains(e.point(i)), "point {i} escaped");
        }
    }

    #[test]
    fn log0_narrowing_round_trips_direction() {
        let mut rng = StdRng::seed_from_u64(4);
        let e = PoincareEmbeddings::new(3, 3, &mut rng);
        let v = e.log0_f32(0);
        assert_eq!(v.len(), 3);
        assert!(v.iter().all(|x| x.is_finite()));
    }
}
