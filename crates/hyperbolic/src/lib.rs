#![warn(missing_docs)]

//! # cf-hyperbolic
//!
//! Poincaré-ball hyperbolic geometry for the ChainsFormer reproduction:
//! Möbius addition, hyperbolic distances (both the `artanh` and the c = 1
//! `arcosh` closed form used by the paper's Hyperbolic Filter), exp/log maps
//! at the origin, analytic distance gradients, Riemannian SGD and trainable
//! Poincaré embeddings with negative sampling.
//!
//! ```
//! use cf_hyperbolic::PoincareBall;
//! let ball = PoincareBall::default();
//! let x = [0.2, 0.1];
//! let y = [-0.3, 0.4];
//! let d = ball.distance(&x, &y);
//! assert!((d - ball.distance_arcosh(&x, &y)).abs() < 1e-9);
//! // Möbius addition keeps results in the ball and has 0 as identity.
//! assert!(ball.contains(&ball.mobius_add(&x, &y)));
//! ```

pub mod ball;
pub mod embedding;
pub mod grad;

pub use ball::{euclidean_distance, PoincareBall, BOUNDARY_EPS};
pub use embedding::PoincareEmbeddings;
pub use grad::{distance_grad_x, riemannian_rescale, rsgd_step};
