//! Analytic gradient of the Poincaré distance (c = 1), after Nickel & Kiela
//! (2017), used by Riemannian SGD in [`crate::embedding`].

use crate::ball::{dot, PoincareBall};

/// `∂ d(x, y) / ∂x` for the unit-curvature ball.
///
/// Near-coincident points have a singular gradient; we return zero there,
/// which is the correct subgradient choice for the embedding losses we train
/// (a positive pair at distance zero is already optimal).
pub fn distance_grad_x(x: &[f64], y: &[f64]) -> Vec<f64> {
    let x2 = dot(x, x);
    let y2 = dot(y, y);
    let diff2: f64 = x.iter().zip(y).map(|(&a, &b)| (a - b) * (a - b)).sum();
    if diff2 < 1e-18 {
        return vec![0.0; x.len()];
    }
    let alpha = (1.0 - x2).max(1e-15);
    let beta = (1.0 - y2).max(1e-15);
    let gamma = 1.0 + 2.0 * diff2 / (alpha * beta);
    let denom = (gamma * gamma - 1.0).max(1e-15).sqrt();
    let coef = 4.0 / (beta * denom);
    let xy = dot(x, y);
    let a = (y2 - 2.0 * xy + 1.0) / (alpha * alpha);
    x.iter()
        .zip(y)
        .map(|(&xi, &yi)| coef * (a * xi - yi / alpha))
        .collect()
}

/// Converts a Euclidean gradient at `x` to the Riemannian gradient on the
/// unit ball: scale by `(1 − ‖x‖²)² / 4` (inverse metric tensor).
pub fn riemannian_rescale(x: &[f64], euclidean_grad: &[f64]) -> Vec<f64> {
    let factor = ((1.0 - dot(x, x)).max(0.0)).powi(2) / 4.0;
    euclidean_grad.iter().map(|&g| factor * g).collect()
}

/// One Riemannian SGD step: rescale, step, project back into the ball.
pub fn rsgd_step(ball: &PoincareBall, x: &mut [f64], euclidean_grad: &[f64], lr: f64) {
    let rg = riemannian_rescale(x, euclidean_grad);
    for (xi, gi) in x.iter_mut().zip(&rg) {
        *xi -= lr * gi;
    }
    ball.project(x);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn numeric_grad(x: &[f64], y: &[f64], eps: f64) -> Vec<f64> {
        let ball = PoincareBall::default();
        (0..x.len())
            .map(|i| {
                let mut xp = x.to_vec();
                xp[i] += eps;
                let mut xm = x.to_vec();
                xm[i] -= eps;
                (ball.distance_arcosh(&xp, y) - ball.distance_arcosh(&xm, y)) / (2.0 * eps)
            })
            .collect()
    }

    #[test]
    fn analytic_matches_numeric() {
        let cases = [
            (vec![0.1, 0.2], vec![-0.3, 0.4]),
            (vec![0.0, 0.0], vec![0.5, 0.1]),
            (vec![0.6, -0.5], vec![0.1, 0.1]),
            (vec![0.05, 0.0, -0.6], vec![0.3, 0.3, 0.3]),
        ];
        for (x, y) in cases {
            let analytic = distance_grad_x(&x, &y);
            let numeric = numeric_grad(&x, &y, 1e-6);
            for (a, n) in analytic.iter().zip(&numeric) {
                assert!(
                    (a - n).abs() < 1e-4 * (1.0 + n.abs()),
                    "grad mismatch at {x:?},{y:?}: {analytic:?} vs {numeric:?}"
                );
            }
        }
    }

    #[test]
    fn coincident_points_get_zero_grad() {
        let x = vec![0.2, 0.2];
        assert_eq!(distance_grad_x(&x, &x), vec![0.0, 0.0]);
    }

    #[test]
    fn rsgd_reduces_distance_between_pair() {
        let ball = PoincareBall::default();
        let mut x = vec![0.5, 0.0];
        let y = vec![-0.5, 0.0];
        let before = ball.distance(&x, &y);
        for _ in 0..50 {
            let g = distance_grad_x(&x, &y);
            rsgd_step(&ball, &mut x, &g, 0.05);
        }
        let after = ball.distance(&x, &y);
        assert!(
            after < before * 0.5,
            "rsgd failed to pull points together: {before} -> {after}"
        );
        assert!(ball.contains(&x));
    }

    #[test]
    fn rsgd_slows_near_boundary() {
        // The metric rescaling must shrink steps near the rim.
        let near_rim = riemannian_rescale(&[0.99, 0.0], &[1.0, 0.0]);
        let near_origin = riemannian_rescale(&[0.0, 0.0], &[1.0, 0.0]);
        assert!(near_rim[0] < 0.01 * near_origin[0]);
    }
}
