//! Table VI: ablation study — every degenerate variant vs. the full model,
//! reported as normalized MAE/RMSE on both datasets.

use chainsformer::{ChainsFormerConfig, Variant};
use chainsformer_bench::{load, train_chainsformer, write_csv, BenchArgs, Dataset, Table};

fn main() {
    let mut args = BenchArgs::from_env();
    if args.epochs.is_none() {
        args.epochs = Some(10);
    }
    let mut table = Table::new(
        format!("Table VI — ablation variants (scale: {})", args.scale_name),
        &["variant", "YG MAE", "YG RMSE", "FB MAE", "FB RMSE"],
    );
    let yago = load(Dataset::Yago15kSim, args.scale, args.seed);
    let fb = load(Dataset::Fb15k237Sim, args.scale, args.seed);
    let base = ChainsFormerConfig::default();
    for v in Variant::all() {
        eprintln!("[table6] {} …", v.label());
        let cfg = v.apply(&base);
        let (_, ry) = train_chainsformer(&yago, cfg.clone(), &args);
        let (_, rf) = train_chainsformer(&fb, cfg, &args);
        table.row(vec![
            v.label().into(),
            format!("{:.4}", ry.norm_mae),
            format!("{:.4}", ry.norm_rmse),
            format!("{:.4}", rf.norm_mae),
            format!("{:.4}", rf.norm_rmse),
        ]);
    }
    table.print();
    let path = write_csv(&table, &args.out_dir, "table6_ablation").expect("write csv");
    println!("wrote {}", path.display());
}
