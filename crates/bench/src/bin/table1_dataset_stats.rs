//! Table I: dataset statistics, paper vs. synthetic twin.

use cf_kg::stats::dataset_stats;
use chainsformer_bench::{load, write_csv, BenchArgs, Dataset, Table};

fn main() {
    let args = BenchArgs::from_env();
    let mut table = Table::new(
        format!("Table I — dataset statistics (scale: {})", args.scale_name),
        &[
            "Dataset",
            "|V|",
            "|R|",
            "|A|",
            "|E_r|",
            "|E_a|",
            "paper |V|",
            "paper |R|",
            "paper |A|",
            "paper |E_r|",
            "paper |E_a|",
        ],
    );
    // Paper-reported values for the real datasets.
    let paper = [
        (Dataset::Yago15kSim, (15_404, 32, 7, 122_886, 23_520)),
        (Dataset::Fb15k237Sim, (14_951, 237, 11, 310_116, 23_154)),
    ];
    for (ds, (pv, pr, pa, per, pea)) in paper {
        let w = load(ds, args.scale, args.seed);
        let s = dataset_stats(&w.graph);
        table.row(vec![
            ds.label().into(),
            s.entities.to_string(),
            s.relations.to_string(),
            s.attributes.to_string(),
            s.relational_triples.to_string(),
            s.numeric_triples.to_string(),
            pv.to_string(),
            pr.to_string(),
            pa.to_string(),
            per.to_string(),
            pea.to_string(),
        ]);
    }
    table.print();
    let path = write_csv(&table, &args.out_dir, "table1_dataset_stats").expect("write csv");
    println!("\nwrote {}", path.display());
}
