//! Figure 4: performance across reasoning settings — single- vs multi-hop
//! paths and single- vs multi-attribute reasoning.

use chainsformer::{ChainsFormerConfig, ReasoningSetting};
use chainsformer_bench::{load, train_chainsformer, write_csv, BenchArgs, Dataset, Table};

fn main() {
    let mut args = BenchArgs::from_env();
    if args.epochs.is_none() {
        args.epochs = Some(10);
    }
    let settings = [
        (
            "1-hop, same-attr",
            ReasoningSetting {
                max_hops: 1,
                multi_attribute: false,
            },
        ),
        (
            "1-hop, multi-attr",
            ReasoningSetting {
                max_hops: 1,
                multi_attribute: true,
            },
        ),
        (
            "3-hop, same-attr",
            ReasoningSetting {
                max_hops: 3,
                multi_attribute: false,
            },
        ),
        (
            "3-hop, multi-attr",
            ReasoningSetting {
                max_hops: 3,
                multi_attribute: true,
            },
        ),
    ];
    let mut table = Table::new(
        format!("Figure 4 — reasoning settings (scale: {})", args.scale_name),
        &["setting", "YG MAE", "YG RMSE", "FB MAE", "FB RMSE"],
    );
    let yago = load(Dataset::Yago15kSim, args.scale, args.seed);
    let fb = load(Dataset::Fb15k237Sim, args.scale, args.seed);
    for (name, setting) in settings {
        eprintln!("[fig4] {name} …");
        let cfg = ChainsFormerConfig {
            setting,
            ..ChainsFormerConfig::default()
        };
        let (_, ry) = train_chainsformer(&yago, cfg.clone(), &args);
        let (_, rf) = train_chainsformer(&fb, cfg, &args);
        table.row(vec![
            name.into(),
            format!("{:.4}", ry.norm_mae),
            format!("{:.4}", ry.norm_rmse),
            format!("{:.4}", rf.norm_mae),
            format!("{:.4}", rf.norm_rmse),
        ]);
    }
    table.print();
    println!(
        "\nexpected shape (paper): error drops with more hops and with multi-attribute reasoning"
    );
    let path = write_csv(&table, &args.out_dir, "fig4_reasoning_settings").expect("write csv");
    println!("wrote {}", path.display());
}
