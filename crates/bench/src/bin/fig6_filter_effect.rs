//! Figure 6: the attribute mix in the ToC before vs. after the Hyperbolic
//! Filter (YAGO15K) — the filter should concentrate on the queried and
//! semantically adjacent attributes.

use cf_kg::AttributeId;
use cf_rand::rngs::StdRng;
use cf_rand::SeedableRng;
use chainsformer::explain::filter_effect;
use chainsformer::{ChainsFormer, ChainsFormerConfig};
use chainsformer_bench::{load, write_csv, BenchArgs, Dataset, Table};

fn main() {
    let args = BenchArgs::from_env();
    let w = load(Dataset::Yago15kSim, args.scale, args.seed);
    let mut rng = StdRng::seed_from_u64(args.seed);
    // Only the (pre-trained) filter matters here — no model training needed.
    let cfg = ChainsFormerConfig::default();
    let model = ChainsFormer::new(&w.visible, &w.split.train, cfg, &mut rng);

    let effects = filter_effect(&model, &w.visible, &w.split.test, &mut rng);
    let attr_names: Vec<String> = (0..w.graph.num_attributes())
        .map(|a| w.graph.attribute_name(AttributeId(a as u32)).to_string())
        .collect();

    let mut headers: Vec<&str> = vec!["query attr", "stage"];
    headers.extend(attr_names.iter().map(String::as_str));
    let mut table = Table::new(
        format!(
            "Figure 6 — ToC attribute mix before/after filter (scale: {})",
            args.scale_name
        ),
        &headers,
    );
    let mut same_attr_share_gain = Vec::new();
    for e in &effects {
        let qname = w.graph.attribute_name(e.query_attr).to_string();
        for (stage, dist) in [("before", &e.before), ("after", &e.after)] {
            let mut row = vec![qname.clone(), stage.to_string()];
            for a in 0..attr_names.len() {
                row.push(format!(
                    "{:.3}",
                    dist.get(&(a as u32)).copied().unwrap_or(0.0)
                ));
            }
            table.row(row);
        }
        let before_same = e.before.get(&e.query_attr.0).copied().unwrap_or(0.0);
        let after_same = e.after.get(&e.query_attr.0).copied().unwrap_or(0.0);
        same_attr_share_gain.push(after_same - before_same);
    }
    table.print();
    let mean_gain: f64 =
        same_attr_share_gain.iter().sum::<f64>() / same_attr_share_gain.len().max(1) as f64;
    println!(
        "\nmean gain in same-attribute share after filtering: {mean_gain:+.3} (paper: filter \
         concentrates on the query's own and adjacent attributes)"
    );
    let path = write_csv(&table, &args.out_dir, "fig6_filter_effect").expect("write csv");
    println!("wrote {}", path.display());
}
