//! Table III: the main comparison — per-attribute RMSE/MAE for every
//! baseline and ChainsFormer on both datasets, plus normalized Average*.

use cf_kg::AttributeId;
use chainsformer::ChainsFormerConfig;
use chainsformer_bench::report::fmt_err;
use chainsformer_bench::{
    fit_all_baselines, load, train_chainsformer, write_csv, BenchArgs, Dataset, MethodReport, Table,
};

fn main() {
    let mut args = BenchArgs::from_env();
    if args.epochs.is_none() {
        args.epochs = Some(15); // keep the full two-dataset run tractable on CPU
    }
    for ds in Dataset::both() {
        eprintln!("[table3] building {} …", ds.label());
        let w = load(ds, args.scale, args.seed);
        eprintln!("[table3] fitting baselines …");
        let mut methods = fit_all_baselines(&w, &args);
        eprintln!("[table3] training ChainsFormer …");
        let (_, ours) = train_chainsformer(&w, ChainsFormerConfig::default(), &args);
        methods.push(MethodReport {
            name: "ChainsFormer(Ours)".into(),
            report: ours,
        });

        for (metric, pick) in [("RMSE", false), ("MAE", true)] {
            let mut headers: Vec<&str> = vec!["attribute"];
            let names: Vec<String> = methods.iter().map(|m| m.name.clone()).collect();
            headers.extend(names.iter().map(String::as_str));
            let mut table = Table::new(
                format!(
                    "Table III — {metric}, {} (scale: {})",
                    ds.label(),
                    args.scale_name
                ),
                &headers,
            );
            for a in 0..w.graph.num_attributes() {
                let attr = AttributeId(a as u32);
                let mut row = vec![w.graph.attribute_name(attr).to_string()];
                for m in &methods {
                    let v = if pick {
                        m.report.mae(attr)
                    } else {
                        m.report.rmse(attr)
                    };
                    row.push(fmt_err(v));
                }
                table.row(row);
            }
            let mut avg = vec!["Average*".to_string()];
            for m in &methods {
                let v = if pick {
                    m.report.norm_mae
                } else {
                    m.report.norm_rmse
                };
                avg.push(format!("{v:.4}"));
            }
            table.row(avg);
            table.print();
            let name = format!(
                "table3_{}_{}",
                metric.to_lowercase(),
                ds.label().replace('-', "_").to_lowercase()
            );
            let path = write_csv(&table, &args.out_dir, &name).expect("write csv");
            println!("wrote {}", path.display());
        }

        // RQ1 category breakdown (temporal / spatial / quantity), the
        // grouping the paper's §V-B discussion uses.
        let mut cat_table = Table::new(
            format!("Category MAE (range-scaled), {}", ds.label()),
            &[
                "category",
                "NAP++",
                "MrAP",
                "PLM-reg",
                "KGA",
                "HyNT",
                "ToG-R",
                "AttrMean",
                "ChainsFormer(Ours)",
            ],
        );
        use cf_kg::AttributeCategory;
        for cat in [
            AttributeCategory::Temporal,
            AttributeCategory::Spatial,
            AttributeCategory::Quantity,
        ] {
            let mut row = vec![cat.label().to_string()];
            let mut any = false;
            for m in &methods {
                let by_cat = cf_kg::category_mae(&w.graph, &m.report, &w.norm);
                match by_cat.get(&cat) {
                    Some(v) => {
                        row.push(format!("{v:.4}"));
                        any = true;
                    }
                    None => row.push("-".into()),
                }
            }
            if any {
                cat_table.row(row);
            }
        }
        cat_table.print();
        let cat_name = format!(
            "table3_categories_{}",
            ds.label().replace('-', "_").to_lowercase()
        );
        write_csv(&cat_table, &args.out_dir, &cat_name).expect("write csv");

        // The paper's headline: ChainsFormer ranks first on Average* MAE.
        let best = methods
            .iter()
            .min_by(|a, b| {
                a.report
                    .norm_mae
                    .partial_cmp(&b.report.norm_mae)
                    .expect("finite")
            })
            .expect("methods non-empty");
        println!(
            "\n[{}] best Average* MAE: {} ({:.4})",
            ds.label(),
            best.name,
            best.report.norm_mae
        );
    }
}
