//! Quick GEMM kernel probe (temporary, not part of CI).

use cf_rand::rngs::StdRng;
use cf_rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Instant;

fn rand_vec(n: usize, rng: &mut StdRng) -> Vec<f32> {
    (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

fn naive(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let out_row = &mut out[i * n..(i + 1) * n];
        for p in 0..k {
            let a_ip = a[i * k + p];
            if a_ip == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for j in 0..n {
                out_row[j] += a_ip * b_row[j];
            }
        }
    }
}

fn time(mut f: impl FnMut(), iters: usize) -> f64 {
    for _ in 0..3 {
        f();
    }
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    t0.elapsed().as_secs_f64() / iters as f64 * 1e6
}

fn train_step_phases() {
    use cf_tensor::nn::{Linear, TransformerEncoder};
    use cf_tensor::{ParamStore, Tape, Tensor};
    let mut rng = StdRng::seed_from_u64(3);
    let mut ps = ParamStore::new();
    let enc = TransformerEncoder::new(&mut ps, "enc", 48, 4, 2, 96, &mut rng);
    let head = Linear::new(&mut ps, "head", 48, 1, &mut rng);
    let x = Tensor::new(
        [32, 6, 48],
        (0..32 * 6 * 48)
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect::<Vec<f32>>(),
    );
    let target = Tensor::new(
        [32 * 6, 1],
        (0..32 * 6)
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect::<Vec<f32>>(),
    );
    let mut opt = cf_tensor::optim::Adam::new(1e-3);
    let iters = 200;
    let t_fwd = time(
        || {
            let mut t = Tape::new();
            let xv = t.leaf(x.clone());
            let h = enc.forward(&mut t, &ps, xv, None);
            let flat = t.reshape(h, [32 * 6, 48]);
            let pred = head.forward(&mut t, &ps, flat);
            let loss = t.mse_loss(pred, &target);
            black_box(t.value(loss).item());
        },
        iters,
    );
    let t_fwd_bwd = time(
        || {
            let mut t = Tape::new();
            let xv = t.leaf(x.clone());
            let h = enc.forward(&mut t, &ps, xv, None);
            let flat = t.reshape(h, [32 * 6, 48]);
            let pred = head.forward(&mut t, &ps, flat);
            let loss = t.mse_loss(pred, &target);
            black_box(t.backward(loss, ps.len()));
        },
        iters,
    );
    let t_full = time(
        || {
            let mut t = Tape::new();
            let xv = t.leaf(x.clone());
            let h = enc.forward(&mut t, &ps, xv, None);
            let flat = t.reshape(h, [32 * 6, 48]);
            let pred = head.forward(&mut t, &ps, flat);
            let loss = t.mse_loss(pred, &target);
            let grads = t.backward(loss, ps.len());
            opt.step(&mut ps, &grads);
            black_box(t.value(loss).item());
        },
        iters,
    );
    println!(
        "train_step phases: fwd {t_fwd:.1} us  fwd+bwd {t_fwd_bwd:.1} us  full {t_full:.1} us  (bwd {:.1}, adam {:.1})",
        t_fwd_bwd - t_fwd,
        t_full - t_fwd_bwd
    );
}

fn component_phases() {
    use cf_tensor::nn::{LayerNorm, MultiHeadAttention};
    use cf_tensor::{ParamStore, Tape, Tensor};
    let mut rng = StdRng::seed_from_u64(4);
    let mut ps = ParamStore::new();
    let mha = MultiHeadAttention::new(&mut ps, "a", 48, 4, &mut rng);
    let ln = LayerNorm::new(&mut ps, "ln", 48);
    let x = Tensor::new(
        [32, 6, 48],
        (0..32 * 6 * 48)
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect::<Vec<f32>>(),
    );
    let iters = 400;
    let t_mha = time(
        || {
            let mut t = Tape::new();
            let xv = t.leaf(x.clone());
            let y = mha.forward(&mut t, &ps, xv, None);
            let l = t.mean_all(y);
            black_box(t.backward(l, ps.len()));
        },
        iters,
    );
    let t_ln = time(
        || {
            let mut t = Tape::new();
            let xv = t.leaf(x.clone());
            let y = ln.forward(&mut t, &ps, xv);
            let l = t.mean_all(y);
            black_box(t.backward(l, ps.len()));
        },
        iters,
    );
    let w1 = Tensor::new(
        [48, 96],
        (0..48 * 96)
            .map(|_| rng.gen_range(-0.1..0.1))
            .collect::<Vec<f32>>(),
    );
    let w2 = Tensor::new(
        [96, 48],
        (0..96 * 48)
            .map(|_| rng.gen_range(-0.1..0.1))
            .collect::<Vec<f32>>(),
    );
    let xf = Tensor::new(
        [192, 48],
        (0..192 * 48)
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect::<Vec<f32>>(),
    );
    let t_ffn = time(
        || {
            let mut t = Tape::new();
            let xv = t.leaf(xf.clone());
            let w1v = t.leaf(w1.clone());
            let w2v = t.leaf(w2.clone());
            let h = t.matmul(xv, w1v);
            let h = t.relu(h);
            let y = t.matmul(h, w2v);
            let l = t.mean_all(y);
            black_box(t.backward(l, 0));
        },
        iters,
    );
    println!("components fwd+bwd [32,6,48]: mha {t_mha:.1} us  layernorm {t_ln:.1} us  ffn(192x48x96) {t_ffn:.1} us");
}

fn op_phases() {
    use cf_tensor::nn::Linear;
    use cf_tensor::{ParamStore, Tape, Tensor};
    let mut rng = StdRng::seed_from_u64(5);
    let x = Tensor::new(
        [32, 6, 48],
        (0..32 * 6 * 48)
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect::<Vec<f32>>(),
    );
    let iters = 600;

    // Fused attention core alone (no projections).
    let t_attn = time(
        || {
            let mut t = Tape::new();
            let q = t.leaf(x.clone());
            let k = t.leaf(x.clone());
            let v = t.leaf(x.clone());
            let y = t.fused_attention(q, k, v, 4, 0.2886751, None);
            let l = t.mean_all(y);
            black_box(t.backward(l, 0));
        },
        iters,
    );
    let t_attn_fwd = time(
        || {
            let mut t = Tape::new();
            let q = t.leaf(x.clone());
            let k = t.leaf(x.clone());
            let v = t.leaf(x.clone());
            let y = t.fused_attention(q, k, v, 4, 0.2886751, None);
            black_box(t.value(y).data()[0]);
        },
        iters,
    );
    // Softmax at the attention shape: 768 rows of 6 (exp cost).
    let sm = Tensor::new(
        [768, 6],
        (0..768 * 6)
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect::<Vec<f32>>(),
    );
    let t_softmax = time(
        || {
            let mut t = Tape::new();
            let a = t.leaf(sm.clone());
            let y = t.softmax_last(a);
            black_box(t.value(y).data()[0]);
        },
        iters,
    );
    // One residual add at the activation shape.
    let t_add = time(
        || {
            let mut t = Tape::new();
            let a = t.leaf(x.clone());
            let b = t.leaf(x.clone());
            let y = t.add(a, b);
            let l = t.mean_all(y);
            black_box(t.backward(l, 0));
        },
        iters,
    );
    // Linear 48->48 at [192,48] fwd+bwd (GEMM + bias + at/bt backward).
    let mut ps = ParamStore::new();
    let lin = Linear::new(&mut ps, "l", 48, 48, &mut rng);
    let xf = Tensor::new(
        [192, 48],
        (0..192 * 48)
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect::<Vec<f32>>(),
    );
    let t_linear = time(
        || {
            let mut t = Tape::new();
            let xv = t.leaf(xf.clone());
            let y = lin.forward(&mut t, &ps, xv);
            let l = t.mean_all(y);
            black_box(t.backward(l, ps.len()));
        },
        iters,
    );
    // Tape + leaf-clone + trivial backward overhead.
    let t_tape = time(
        || {
            let mut t = Tape::new();
            let a = t.leaf(x.clone());
            let l = t.mean_all(a);
            black_box(t.backward(l, 0));
        },
        iters,
    );
    println!(
        "ops fwd+bwd: attn_core {t_attn:.1} us (fwd {t_attn_fwd:.1})  softmax768x6 {t_softmax:.1} us  add[32,6,48] {t_add:.1} us  linear48 {t_linear:.1} us  tape+leaf {t_tape:.1} us"
    );
}

fn main() {
    component_phases();
    op_phases();
    train_step_phases();
    let mut rng = StdRng::seed_from_u64(0);
    for &(m, k, n) in &[
        (64usize, 64usize, 64usize),
        (256, 256, 256),
        (128, 384, 128),
        (192, 48, 48),
        (192, 48, 96),
        (192, 96, 48),
        (48, 192, 48),
    ] {
        let a = rand_vec(m * k, &mut rng);
        let b = rand_vec(k * n, &mut rng);
        let mut out = vec![0.0f32; m * n];
        let iters = (50_000_000 / (m * k * n)).max(3);
        let t_naive = time(
            || {
                out.fill(0.0);
                naive(&a, &b, &mut out, m, k, n);
                black_box(out[0]);
            },
            iters,
        );
        let t_blocked = time(
            || {
                out.fill(0.0);
                cf_tensor::matmul_into(&a, &b, &mut out, m, k, n);
                black_box(out[0]);
            },
            iters,
        );
        println!("{m}x{k}x{n}: naive {t_naive:.1} us  blocked {t_blocked:.1} us");
    }
}
