//! Zero-allocation smoke gate (wired into `ci.sh`).
//!
//! Proves the PR-4 buffer pool holds its contract on the *real model*, not
//! just the kernel microbenches: after warm-up, the numeric substrate does
//! zero heap allocations
//!
//! 1. per **train step** — tape forward + loss + backward + clip + Adam over
//!    a pre-gathered batch of chains (the Algorithm-1 inner loop minus
//!    retrieval, which builds fresh `ChainInstance`s by design and is
//!    outside the pooled substrate);
//! 2. per **served predict** — the tape-free [`InferCtx`] model forward over
//!    pre-resolved chains, exactly what a warm `cf-serve` worker runs per
//!    batch (result materialization into `PredictionDetail`s clones chains
//!    for the explanation payload and is likewise out of scope);
//! 3. per **quantized served predict** — the same forward through
//!    [`QuantInferCtx`] with an int8 [`QuantizedParamStore`], the
//!    `--quantize int8` serving path (DESIGN.md §15). Quantizing the store
//!    itself allocates once at load/reload time and is outside the loop.
//!
//! Runs a 2-epoch toy training first so the gate also covers "training still
//! converges end to end with the pool on". Exits non-zero on any violation.

use cf_chains::Query;
use cf_kg::synth::{yago15k_sim, SynthScale};
use cf_kg::Split;
use cf_rand::rngs::StdRng;
use cf_rand::SeedableRng;
use cf_tensor::optim::{clip_global_norm, Adam};
use cf_tensor::{Forward, InferCtx, QuantInferCtx, QuantizedParamStore, Tape, Tensor};
use chainsformer::{ChainsFormer, ChainsFormerConfig, Trainer};
use chainsformer_bench::alloc::{measure, CountingAlloc};
use std::sync::Arc;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let g = yago15k_sim(SynthScale::small(), &mut rng);
    let split = Split::paper_811(&g, &mut rng);
    let visible = split.visible_graph(&g);
    let cfg = ChainsFormerConfig {
        epochs: 2,
        ..ChainsFormerConfig::tiny()
    };
    let mut model = ChainsFormer::new(&visible, &split.train, cfg.clone(), &mut rng);

    // 2-epoch toy run: warms every pool class the model uses and checks
    // training still converges with recycled buffers.
    let result = Trainer::new(&mut model, &visible).train(&split, &mut rng);
    let last = result.epochs.last().expect("epochs ran");
    assert!(
        last.train_loss.is_finite(),
        "toy training diverged: {}",
        last.train_loss
    );

    // Pre-gather one batch of evidence chains (retrieval is outside the
    // measured region — it constructs fresh chains by design).
    let mut batch = Vec::new();
    for t in split.train.iter() {
        let query = Query {
            entity: t.entity,
            attr: t.attr,
        };
        let (toc, _) = model.gather_chains(&visible, query, &mut rng);
        if !toc.is_empty() {
            batch.push((query, toc, t.value));
        }
        if batch.len() >= 8 {
            break;
        }
    }
    assert!(
        batch.len() >= 2,
        "toy graph yielded too few evidence batches"
    );

    // --- Gate 1: steady-state allocations per train step ------------------
    let mut opt = Adam::new(cfg.lr);
    let mut losses = Vec::with_capacity(batch.len());
    let mut train_step = |model: &mut ChainsFormer, opt: &mut Adam| {
        let mut tape = Tape::new();
        losses.clear();
        for (query, toc, value) in &batch {
            let out = model.forward(&mut tape, &toc.chains, *query);
            let pred_norm = model.normalize_on_tape(&mut tape, out.prediction, *query);
            let target = Tensor::scalar(model.normalizer().normalize(query.attr, *value) as f32);
            let loss = tape.l1_loss(pred_norm, &target);
            losses.push(loss);
        }
        let stacked = tape.stack_rows(&losses);
        let batch_loss = tape.mean_all(stacked);
        let mut grads = tape.backward(batch_loss, model.params.len());
        clip_global_norm(&mut grads, cfg.grad_clip);
        opt.step(&mut model.params, &grads);
    };
    for _ in 0..3 {
        train_step(&mut model, &mut opt); // warm-up: pool classes + Adam state
    }
    let steps = 5u64;
    let (_, train_delta) = measure(|| {
        for _ in 0..steps {
            train_step(&mut model, &mut opt);
        }
    });
    let train_allocs = train_delta.allocs / steps;
    println!("train step: {train_allocs} allocs/step at steady state ({steps} steps measured)");

    // --- Gate 2: steady-state allocations per served predict --------------
    let jobs: Vec<(Query, &[cf_chains::ChainInstance])> = batch
        .iter()
        .map(|(q, toc, _)| (*q, toc.chains.as_slice()))
        .collect();
    let mut ctx = InferCtx::new();
    let serve_forward = |ctx: &mut InferCtx| {
        ctx.clear();
        for &(query, chains) in &jobs {
            let out = model.forward(ctx, chains, query);
            std::hint::black_box(ctx.value(out.prediction).item());
        }
    };
    for _ in 0..3 {
        serve_forward(&mut ctx);
    }
    let rounds = 5u64;
    let (_, serve_delta) = measure(|| {
        for _ in 0..rounds {
            serve_forward(&mut ctx);
        }
    });
    let serve_allocs = serve_delta.allocs / rounds;
    println!(
        "served predict: {serve_allocs} allocs/batch at steady state ({rounds} batches of {} jobs)",
        jobs.len()
    );

    // --- Gate 3: steady-state allocations per quantized served predict ----
    let quant = Arc::new(QuantizedParamStore::from_store(&model.params));
    let mut qctx = QuantInferCtx::new();
    qctx.set_weights(quant);
    let quant_forward = |qctx: &mut QuantInferCtx| {
        qctx.clear();
        for &(query, chains) in &jobs {
            let out = model.forward(qctx, chains, query);
            std::hint::black_box(qctx.value(out.prediction).item());
        }
    };
    for _ in 0..3 {
        quant_forward(&mut qctx);
    }
    let (_, quant_delta) = measure(|| {
        for _ in 0..rounds {
            quant_forward(&mut qctx);
        }
    });
    let quant_allocs = quant_delta.allocs / rounds;
    println!(
        "quantized served predict: {quant_allocs} allocs/batch at steady state ({rounds} batches of {} jobs)",
        jobs.len()
    );

    let mut failed = false;
    if train_allocs != 0 {
        eprintln!("FAIL: train step allocated at steady state ({train_allocs}/step, want 0)");
        failed = true;
    }
    if serve_allocs != 0 {
        eprintln!("FAIL: served predict allocated at steady state ({serve_allocs}/batch, want 0)");
        failed = true;
    }
    if quant_allocs != 0 {
        eprintln!(
            "FAIL: quantized served predict allocated at steady state ({quant_allocs}/batch, want 0)"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "alloc gate: PASS (0 steady-state allocations per train step and per served predict, f32 and int8)"
    );
}
