//! Figure 7: filtering in hyperbolic vs. Euclidean space vs. random
//! sampling, across filter dimensions (FB15K).

use chainsformer::{ChainsFormerConfig, FilterSpace};
use chainsformer_bench::{
    line_chart, load, train_chainsformer, write_csv, BenchArgs, Dataset, Table,
};

fn main() {
    let mut args = BenchArgs::from_env();
    if args.epochs.is_none() {
        args.epochs = Some(8);
    }
    // The paper sweeps 32..1024 on the real data; scaled-down dims here
    // (substitution S5), same shape expected: hyperbolic dominates and wins
    // already at low dimension.
    let dims = [4usize, 8, 16, 32];
    let spaces = [
        ("hyperbolic", FilterSpace::Hyperbolic),
        ("euclidean", FilterSpace::Euclidean),
        ("random", FilterSpace::Random),
    ];
    let fb = load(Dataset::Fb15k237Sim, args.scale, args.seed);
    let mut table = Table::new(
        format!(
            "Figure 7 — filter space × dimension, FB15K-sim MAE (scale: {})",
            args.scale_name
        ),
        &["space", "d=4", "d=8", "d=16", "d=32"],
    );
    for (name, space) in spaces {
        let mut row = vec![name.to_string()];
        for &d in &dims {
            eprintln!("[fig7] {name} d={d} …");
            let cfg = ChainsFormerConfig {
                filter_space: space,
                filter_dim: d,
                ..ChainsFormerConfig::default()
            };
            let (_, r) = train_chainsformer(&fb, cfg, &args);
            row.push(format!("{:.4}", r.norm_mae));
        }
        table.row(row);
    }
    table.print();
    let x: Vec<String> = dims.iter().map(|d| format!("d={d}")).collect();
    let series: Vec<(&str, Vec<f64>)> = table
        .rows
        .iter()
        .map(|row| {
            (
                ["hyperbolic", "euclidean", "random"]
                    .iter()
                    .find(|n| **n == row[0])
                    .copied()
                    .unwrap_or("?"),
                row[1..]
                    .iter()
                    .map(|c| c.parse::<f64>().unwrap_or(f64::NAN))
                    .collect(),
            )
        })
        .collect();
    println!(
        "\n{}",
        line_chart(
            "Figure 7 — normalized MAE vs filter dimension",
            &x,
            &series,
            10
        )
    );
    println!("expected shape (paper): hyperbolic < euclidean < random, with low-dim hyperbolic ≈ high-dim euclidean");
    let path = write_csv(&table, &args.out_dir, "fig7_filter_spaces").expect("write csv");
    println!("wrote {}", path.display());
}
