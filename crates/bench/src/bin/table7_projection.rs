//! Table VII: numerical projection methods (Direct / Translation / Scaling
//! / Combined) compared on both datasets.

use chainsformer::{ChainsFormerConfig, Projection};
use chainsformer_bench::{load, train_chainsformer, write_csv, BenchArgs, Dataset, Table};

fn main() {
    let mut args = BenchArgs::from_env();
    if args.epochs.is_none() {
        args.epochs = Some(10);
    }
    let mut table = Table::new(
        format!(
            "Table VII — numerical projection methods (scale: {})",
            args.scale_name
        ),
        &["projection", "YG MAE", "YG RMSE", "FB MAE", "FB RMSE"],
    );
    let yago = load(Dataset::Yago15kSim, args.scale, args.seed);
    let fb = load(Dataset::Fb15k237Sim, args.scale, args.seed);
    for (name, proj) in [
        ("Direct", Projection::Direct),
        ("Translation", Projection::Translation),
        ("Scaling", Projection::Scaling),
        ("Combined", Projection::Combined),
    ] {
        eprintln!("[table7] {name} …");
        let cfg = ChainsFormerConfig {
            projection: proj,
            ..ChainsFormerConfig::default()
        };
        let (_, ry) = train_chainsformer(&yago, cfg.clone(), &args);
        let (_, rf) = train_chainsformer(&fb, cfg, &args);
        table.row(vec![
            name.into(),
            format!("{:.4}", ry.norm_mae),
            format!("{:.4}", ry.norm_rmse),
            format!("{:.4}", rf.norm_mae),
            format!("{:.4}", rf.norm_rmse),
        ]);
    }
    table.print();
    let path = write_csv(&table, &args.out_dir, "table7_projection").expect("write csv");
    println!("wrote {}", path.display());
}
