//! Figure 2: the average number of logic chains connected to a query
//! explodes with reasoning depth.

use cf_chains::mean_chain_count;
use cf_rand::rngs::StdRng;
use cf_rand::SeedableRng;
use chainsformer_bench::{load, write_csv, BenchArgs, Dataset, Table};

fn main() {
    let args = BenchArgs::from_env();
    let mut table = Table::new(
        format!(
            "Figure 2 — mean #logic chains per query vs hops (scale: {})",
            args.scale_name
        ),
        &["dataset", "1 hop", "2 hops", "3 hops", "growth 1→3"],
    );
    // Paper reference points (real datasets): YAGO15K 3.24e5 and FB15K
    // 3.10e6 at three hops.
    for ds in Dataset::both() {
        let w = load(ds, args.scale, args.seed);
        let mut rng = StdRng::seed_from_u64(args.seed);
        let means = mean_chain_count(&w.visible, 3, 100, 50_000_000, &mut rng);
        table.row(vec![
            ds.label().into(),
            format!("{:.1}", means[0]),
            format!("{:.1}", means[1]),
            format!("{:.1}", means[2]),
            format!("{:.0}x", means[2] / means[0].max(1e-9)),
        ]);
    }
    table.print();
    println!("\npaper (real datasets): YAGO15K 3.24e5 @3 hops, FB15K 3.10e6 @3 hops");
    let path = write_csv(&table, &args.out_dir, "fig2_chain_explosion").expect("write csv");
    println!("wrote {}", path.display());
}
