//! Figure 8: hyperparameter sensitivity — retrieval count N_s, filter top-k,
//! Transformer layers L_c and hidden dimension d.
//!
//! The paper sweeps both datasets; for single-core CPU budget this binary
//! sweeps the YAGO15K twin by default and adds the FB twin when
//! `CF_FIG8_BOTH=1` is set.

use chainsformer::ChainsFormerConfig;
use chainsformer_bench::{
    line_chart, load, train_chainsformer, write_csv, BenchArgs, Dataset, Table, Workload,
};

fn sweep(
    table: &mut Table,
    knob: &str,
    values: &[usize],
    yago: &Workload,
    fb: Option<&Workload>,
    args: &chainsformer_bench::BenchArgs,
    make: impl Fn(usize) -> ChainsFormerConfig,
) {
    for &v in values {
        eprintln!("[fig8] {knob}={v} …");
        let cfg = make(v);
        let (_, ry) = train_chainsformer(yago, cfg.clone(), args);
        let (fm, fr) = match fb {
            Some(w) => {
                let (_, rf) = train_chainsformer(w, cfg, args);
                (
                    format!("{:.4}", rf.norm_mae),
                    format!("{:.4}", rf.norm_rmse),
                )
            }
            None => ("-".into(), "-".into()),
        };
        table.row(vec![
            knob.into(),
            v.to_string(),
            format!("{:.4}", ry.norm_mae),
            format!("{:.4}", ry.norm_rmse),
            fm,
            fr,
        ]);
    }
}

fn main() {
    let mut args = BenchArgs::from_env();
    if args.epochs.is_none() {
        args.epochs = Some(8);
    }
    let yago = load(Dataset::Yago15kSim, args.scale, args.seed);
    let both = std::env::var("CF_FIG8_BOTH").is_ok_and(|v| v == "1");
    let fb = both.then(|| load(Dataset::Fb15k237Sim, args.scale, args.seed));
    let fb = fb.as_ref();
    let mut table = Table::new(
        format!(
            "Figure 8 — hyperparameter study (scale: {})",
            args.scale_name
        ),
        &["knob", "value", "YG MAE", "YG RMSE", "FB MAE", "FB RMSE"],
    );
    let base = ChainsFormerConfig::default;
    // Paper sweeps (scaled per substitution S5):
    // N_s ∈ {1024,2048,4096,8192} → {64,128,256,512}
    sweep(&mut table, "N_s", &[64, 256, 512], &yago, fb, &args, |v| {
        ChainsFormerConfig {
            retrieval_walks: v,
            ..base()
        }
    });
    // k ∈ {64,128,256,512} → {8,16,32,64}
    sweep(&mut table, "k", &[8, 32, 64], &yago, fb, &args, |v| {
        ChainsFormerConfig { top_k: v, ..base() }
    });
    // L_c ∈ {1,2,3,4}
    sweep(&mut table, "L_c", &[1, 2, 3], &yago, fb, &args, |v| {
        ChainsFormerConfig {
            layers: v,
            ..base()
        }
    });
    // d ∈ {128,256,512} → {16,32,48,64}
    sweep(&mut table, "d", &[16, 32, 64], &yago, fb, &args, |v| {
        ChainsFormerConfig {
            dim: v,
            ff_dim: 2 * v,
            ..base()
        }
    });
    table.print();
    for knob in ["N_s", "k", "L_c", "d"] {
        let rows: Vec<&Vec<String>> = table.rows.iter().filter(|r| r[0] == knob).collect();
        if rows.is_empty() {
            continue;
        }
        let x: Vec<String> = rows.iter().map(|r| r[1].clone()).collect();
        let values: Vec<f64> = rows
            .iter()
            .map(|r| r[2].parse().unwrap_or(f64::NAN))
            .collect();
        println!(
            "\n{}",
            line_chart(
                &format!("Figure 8 — YAGO MAE vs {knob}"),
                &x,
                &[("MAE", values)],
                7
            )
        );
    }
    println!("expected shape (paper): flat in N_s, optimum at mid k, 2-3 layers best, low sensitivity to d");
    let path = write_csv(&table, &args.out_dir, "fig8_hyperparams").expect("write csv");
    println!("wrote {}", path.display());
}
