//! Table V: the most important RA-Chains per attribute, extracted from a
//! trained Numerical Reasoner's weights.

use cf_rand::rngs::StdRng;
use cf_rand::SeedableRng;
use chainsformer::explain::key_chains_per_attribute;
use chainsformer::{ChainsFormer, ChainsFormerConfig, Trainer};
use chainsformer_bench::{load, write_csv, BenchArgs, Dataset, Table};

fn main() {
    let args = BenchArgs::from_env();
    let mut table = Table::new(
        format!("Table V — key RA-Chains (scale: {})", args.scale_name),
        &["dataset", "attribute", "key chains (by reasoner weight)"],
    );
    for ds in Dataset::both() {
        eprintln!("[table5] training on {} …", ds.label());
        let w = load(ds, args.scale, args.seed);
        let mut rng = StdRng::seed_from_u64(args.seed);
        let mut cfg = ChainsFormerConfig::default();
        cfg.epochs = args.epochs.unwrap_or(10);
        let mut model = ChainsFormer::new(&w.visible, &w.split.train, cfg, &mut rng);
        Trainer::new(&mut model, &w.visible).train(&w.split, &mut rng);

        let keys = key_chains_per_attribute(&model, &w.visible, &w.split.test, 3, &mut rng);
        let mut attrs: Vec<_> = keys.keys().copied().collect();
        attrs.sort();
        for attr in attrs {
            let rendered: Vec<String> = keys[&attr]
                .iter()
                .map(|k| k.chain.render(&w.graph))
                .collect();
            table.row(vec![
                ds.label().into(),
                w.graph.attribute_name(attr).into(),
                rendered.join("  "),
            ]);
        }
    }
    table.print();
    let path = write_csv(&table, &args.out_dir, "table5_key_chains").expect("write csv");
    println!("wrote {}", path.display());
}
