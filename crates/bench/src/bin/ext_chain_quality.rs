//! Extension experiment (paper §VI future work): does the chain-quality
//! evaluation mechanism — pruning RA-Chain patterns with reliably bad
//! training-time predictions — improve accuracy?

use chainsformer::ChainsFormerConfig;
use chainsformer_bench::{load, train_chainsformer, write_csv, BenchArgs, Dataset, Table};

fn main() {
    let mut args = BenchArgs::from_env();
    if args.epochs.is_none() {
        args.epochs = Some(10);
    }
    let mut table = Table::new(
        format!(
            "Extension — chain quality pruning (scale: {})",
            args.scale_name
        ),
        &["variant", "YG MAE", "YG RMSE", "FB MAE", "FB RMSE"],
    );
    let yago = load(Dataset::Yago15kSim, args.scale, args.seed);
    let fb = load(Dataset::Fb15k237Sim, args.scale, args.seed);
    for (name, quality) in [
        ("without quality pruning", false),
        ("with quality pruning", true),
    ] {
        eprintln!("[ext_quality] {name} …");
        let cfg = ChainsFormerConfig {
            chain_quality: quality,
            ..ChainsFormerConfig::default()
        };
        let (_, ry) = train_chainsformer(&yago, cfg.clone(), &args);
        let (_, rf) = train_chainsformer(&fb, cfg, &args);
        table.row(vec![
            name.into(),
            format!("{:.4}", ry.norm_mae),
            format!("{:.4}", ry.norm_rmse),
            format!("{:.4}", rf.norm_mae),
            format!("{:.4}", rf.norm_rmse),
        ]);
    }
    table.print();
    let path = write_csv(&table, &args.out_dir, "ext_chain_quality").expect("write csv");
    println!("wrote {}", path.display());
}
