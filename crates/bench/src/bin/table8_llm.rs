//! Table VIII: zero-shot LLM comparison (simulated ChatGPT tiers,
//! substitution S4) vs. ChainsFormer.

use cf_baselines::{evaluate_baseline, LlmSim, LlmTier, NumericPredictor};
use cf_rand::rngs::StdRng;
use cf_rand::SeedableRng;
use chainsformer::ChainsFormerConfig;
use chainsformer_bench::{load, train_chainsformer, write_csv, BenchArgs, Dataset, Table};

fn main() {
    let mut args = BenchArgs::from_env();
    if args.epochs.is_none() {
        args.epochs = Some(12);
    }
    let mut table = Table::new(
        format!("Table VIII — LLM comparison (scale: {})", args.scale_name),
        &["model", "YG MAE", "YG RMSE", "FB MAE", "FB RMSE"],
    );
    let yago = load(Dataset::Yago15kSim, args.scale, args.seed);
    let fb = load(Dataset::Fb15k237Sim, args.scale, args.seed);
    let mut rng = StdRng::seed_from_u64(args.seed);

    for tier in [LlmTier::Gpt35, LlmTier::Gpt40] {
        let ly = LlmSim::new(&yago.visible, &yago.split.train, tier);
        let ry = evaluate_baseline(&ly, &yago.visible, &yago.split.test, &yago.norm, &mut rng);
        let lf = LlmSim::new(&fb.visible, &fb.split.train, tier);
        let rf = evaluate_baseline(&lf, &fb.visible, &fb.split.test, &fb.norm, &mut rng);
        table.row(vec![
            ly.name().into(),
            format!("{:.4}", ry.norm_mae),
            format!("{:.4}", ry.norm_rmse),
            format!("{:.4}", rf.norm_mae),
            format!("{:.4}", rf.norm_rmse),
        ]);
    }
    eprintln!("[table8] training ChainsFormer …");
    let (_, ry) = train_chainsformer(&yago, ChainsFormerConfig::default(), &args);
    let (_, rf) = train_chainsformer(&fb, ChainsFormerConfig::default(), &args);
    table.row(vec![
        "ChainsFormer(Ours)".into(),
        format!("{:.4}", ry.norm_mae),
        format!("{:.4}", ry.norm_rmse),
        format!("{:.4}", rf.norm_mae),
        format!("{:.4}", rf.norm_rmse),
    ]);
    table.print();
    let path = write_csv(&table, &args.out_dir, "table8_llm").expect("write csv");
    println!("wrote {}", path.display());
}
