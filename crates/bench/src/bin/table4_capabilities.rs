//! Table IV: reasoning-capability matrix. The declared capabilities are
//! checked against live probes where possible (does a trained ChainsFormer
//! actually exploit multi-hop and multi-attribute chains?).

use cf_chains::Query;
use cf_rand::rngs::StdRng;
use cf_rand::SeedableRng;
use chainsformer::ChainsFormer;
use chainsformer::{ChainsFormerConfig, Trainer};
use chainsformer_bench::{load, write_csv, BenchArgs, Dataset, Table};

fn main() {
    let args = BenchArgs::from_env();
    // Static declarations straight from the paper's Table IV.
    let mut table = Table::new(
        "Table IV — reasoning capabilities",
        &[
            "capability",
            "NAP++",
            "MrAP",
            "PLM-reg",
            "KGA",
            "HyNT",
            "Ours",
        ],
    );
    let rows: [(&str, [&str; 6]); 5] = [
        ("Num-aware", ["x", "x", "x", "ok", "ok", "ok"]),
        ("One-hop", ["ok", "ok", "ok", "ok", "ok", "ok"]),
        ("Multi-hop", ["x", "x", "x", "ok", "x", "ok"]),
        ("Same-attr", ["ok", "ok", "ok", "ok", "ok", "ok"]),
        ("Multi-attr", ["x", "ok", "x", "x", "ok", "ok"]),
    ];
    for (cap, cells) in rows {
        let mut row = vec![cap.to_string()];
        row.extend(cells.iter().map(|s| s.to_string()));
        table.row(row);
    }
    table.print();

    // Live probe: train briefly and count the chain mix ChainsFormer uses.
    let w = load(Dataset::Yago15kSim, args.scale, args.seed);
    let mut rng = StdRng::seed_from_u64(args.seed);
    let mut cfg = ChainsFormerConfig::default();
    cfg.epochs = args.epochs.unwrap_or(4);
    let mut model = ChainsFormer::new(&w.visible, &w.split.train, cfg, &mut rng);
    Trainer::new(&mut model, &w.visible).train(&w.split, &mut rng);

    let (mut multi_hop, mut multi_attr, mut total) = (0usize, 0usize, 0usize);
    for t in w.split.test.iter().take(50) {
        let d = model.predict(
            &w.visible,
            Query {
                entity: t.entity,
                attr: t.attr,
            },
            &mut rng,
        );
        for c in &d.chains {
            total += 1;
            if c.chain.hops() > 1 {
                multi_hop += 1;
            }
            if c.chain.known_attr != t.attr {
                multi_attr += 1;
            }
        }
    }
    println!("\n[probe] chains used across 50 test queries: {total}");
    println!(
        "[probe] multi-hop chains: {multi_hop} ({:.1}%) — capability exercised: {}",
        100.0 * multi_hop as f64 / total.max(1) as f64,
        multi_hop > 0
    );
    println!(
        "[probe] multi-attribute chains: {multi_attr} ({:.1}%) — capability exercised: {}",
        100.0 * multi_attr as f64 / total.max(1) as f64,
        multi_attr > 0
    );

    let path = write_csv(&table, &args.out_dir, "table4_capabilities").expect("write csv");
    println!("wrote {}", path.display());
}
