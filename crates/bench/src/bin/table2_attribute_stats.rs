//! Table II: per-attribute numerical statistics, paper ranges alongside.

use cf_kg::stats::attribute_stats;
use chainsformer_bench::report::fmt_err;
use chainsformer_bench::{load, write_csv, BenchArgs, Dataset, Table};

/// Paper Table II `(attribute, min, max)` per dataset, for side-by-side
/// comparison with the synthetic twin.
fn paper_ranges(ds: Dataset) -> &'static [(&'static str, f64, f64)] {
    match ds {
        Dataset::Yago15kSim => &[
            ("birth", 354.9, 2014.0),
            ("death", 348.0, 2161.1),
            ("created", 100.0, 2018.7),
            ("destroyed", 476.0, 2017.2),
            ("happened", 218.0, 2018.2),
            ("latitude", -51.7, 73.0),
            ("longitude", -175.0, 179.0),
        ],
        Dataset::Fb15k237Sim => &[
            ("birth", -383.0, 1999.9),
            ("death", -322.0, 2015.6),
            ("film_release", 1927.1, 2013.5),
            ("org_founded", 1088.0, 2013.0),
            ("loc_founded", -2999.0, 2011.6),
            ("latitude", -90.0, 77.6),
            ("longitude", -175.2, 179.2),
            ("area", 1.0, 1.7e8),
            ("population", 1.0, 3.1e9),
            ("height", 1.34, 2.18),
            ("weight", 44.0, 147.0),
        ],
    }
}

fn main() {
    let args = BenchArgs::from_env();
    for ds in Dataset::both() {
        let w = load(ds, args.scale, args.seed);
        let mut table = Table::new(
            format!(
                "Table II — attribute statistics, {} (scale: {})",
                ds.label(),
                args.scale_name
            ),
            &[
                "attribute",
                "|E_a|",
                "min",
                "max",
                "max-min",
                "paper min",
                "paper max",
            ],
        );
        let paper = paper_ranges(ds);
        for s in attribute_stats(&w.graph) {
            let p = paper.iter().find(|(n, _, _)| *n == s.name);
            table.row(vec![
                s.name.clone(),
                s.count.to_string(),
                fmt_err(s.min),
                fmt_err(s.max),
                fmt_err(s.range()),
                p.map_or("-".into(), |&(_, lo, _)| fmt_err(lo)),
                p.map_or("-".into(), |&(_, _, hi)| fmt_err(hi)),
            ]);
        }
        table.print();
        let name = format!(
            "table2_attribute_stats_{}",
            ds.label().replace('-', "_").to_lowercase()
        );
        let path = write_csv(&table, &args.out_dir, &name).expect("write csv");
        println!("wrote {}", path.display());
    }
}
