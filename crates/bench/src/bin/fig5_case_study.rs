//! Figure 5: the retrieval → filter → weighting funnel for one birth-date
//! query, with the key chains and their weights.

use cf_chains::Query;
use cf_rand::rngs::StdRng;
use cf_rand::SeedableRng;
use chainsformer::explain::case_study;
use chainsformer::{ChainsFormer, ChainsFormerConfig, Trainer};
use chainsformer_bench::{load, write_csv, BenchArgs, Dataset, Table};

fn main() {
    let args = BenchArgs::from_env();
    let w = load(Dataset::Fb15k237Sim, args.scale, args.seed);
    let mut rng = StdRng::seed_from_u64(args.seed);
    let mut cfg = ChainsFormerConfig::default();
    cfg.epochs = args.epochs.unwrap_or(10);
    eprintln!("[fig5] training …");
    let mut model = ChainsFormer::new(&w.visible, &w.split.train, cfg, &mut rng);
    Trainer::new(&mut model, &w.visible).train(&w.split, &mut rng);

    // The paper's query is "What is the birth date of F.F. Coppola?" — pick
    // a well-connected person's birth query from the test split.
    let birth = w.graph.attribute_by_name("birth").expect("birth attribute");
    let t = w
        .split
        .test
        .iter()
        .filter(|t| t.attr == birth)
        .max_by_key(|t| w.visible.degree(t.entity))
        .expect("a birth test query");
    let cs = case_study(
        &model,
        &w.visible,
        Query {
            entity: t.entity,
            attr: t.attr,
        },
        Some(t.value),
        &mut rng,
    );

    println!(
        "\n== Figure 5 — case study: birth date of {} ==",
        w.graph.entity_name(t.entity)
    );
    println!(
        "total chains (≤{} hops, capped count): {}",
        model.cfg.setting.max_hops, cs.total_chains
    );
    println!(
        "retrieved into ToC: {} ({:.3}%)",
        cs.retrieved,
        100.0 * cs.retrieved as f64 / cs.total_chains.max(1) as f64
    );
    println!(
        "after Hyperbolic Filter: {} ({:.4}%)",
        cs.filtered,
        100.0 * cs.filtered as f64 / cs.total_chains.max(1) as f64
    );
    println!(
        "prediction: {:.1}   ground truth: {:.1}",
        cs.prediction, t.value
    );
    println!(
        "top-4 chains carry {:.1}% of the weight",
        100.0 * cs.top4_weight
    );

    let mut table = Table::new("key chains", &["chain", "n_p", "weight"]);
    for (chain, np, wgt) in &cs.top_chains {
        table.row(vec![chain.clone(), format!("{np:.1}"), format!("{wgt:.3}")]);
    }
    table.print();
    let path = write_csv(&table, &args.out_dir, "fig5_case_study").expect("write csv");
    println!("wrote {}", path.display());
}
