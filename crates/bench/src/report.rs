//! Console tables and CSV/JSON persistence for experiment outputs.
//!
//! The JSON writer is hand-rolled (escaping per RFC 8259) so the harness
//! needs no serialization dependency; tables are small and the schema is
//! fixed, so a few lines of careful escaping beat a crate.

use std::io::Write;
use std::path::Path;

/// Core count of the host running the benchmark, as recorded in the JSON
/// metadata of every written table. Absolute numbers in `results/` are only
/// comparable across runs on similarly-sized hosts; recording the count in
/// the file (instead of only in free-text table titles) lets tooling check.
pub fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A simple printable/serializable table.
pub struct Table {
    /// Table caption.
    pub title: String,
    /// Core count of the host that produced the rows (serialized as the
    /// `host_cores` JSON field; defaults to this host's).
    pub host_cores: usize,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (each as wide as `headers`).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// An empty table with the given caption and columns.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            host_cores: host_cores(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; panics if the width disagrees with the headers.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Prints a fixed-width console rendering.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        println!("\n== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| {
            let parts: Vec<String> = cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect();
            println!("| {} |", parts.join(" | "));
        };
        line(&self.headers, &widths);
        println!(
            "|{}|",
            widths
                .iter()
                .map(|w| "-".repeat(w + 2))
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            line(row, &widths);
        }
    }

    /// CSV rendering (quoted only when needed).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// JSON rendering: `{"title", "host_cores", "headers", "rows"}` with
    /// all cells as strings, matching the CSV contents exactly.
    pub fn to_json(&self) -> String {
        let str_array = |items: &[String]| {
            let parts: Vec<String> = items.iter().map(|s| json_string(s)).collect();
            format!("[{}]", parts.join(", "))
        };
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|r| format!("    {}", str_array(r)))
            .collect();
        format!(
            "{{\n  \"title\": {},\n  \"host_cores\": \"{}\",\n  \"headers\": {},\n  \"rows\": [\n{}\n  ]\n}}\n",
            json_string(&self.title),
            self.host_cores,
            str_array(&self.headers),
            rows.join(",\n")
        )
    }
}

/// Escapes `s` as a JSON string literal (RFC 8259 §7: quote, backslash and
/// control characters; everything else passes through as UTF-8).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Writes a table as CSV under `dir/name.csv` (directory created on demand).
pub fn write_csv(table: &Table, dir: &Path, name: &str) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut f = std::fs::File::create(&path)?;
    f.write_all(table.to_csv().as_bytes())?;
    Ok(path)
}

/// Writes a table as JSON under `dir/name.json` (directory created on
/// demand).
pub fn write_json(table: &Table, dir: &Path, name: &str) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    let mut f = std::fs::File::create(&path)?;
    f.write_all(table.to_json().as_bytes())?;
    Ok(path)
}

/// Writes a table as JSON under `dir/name.json`, *merging* with an existing
/// file of the same schema instead of clobbering it.
///
/// Benches with gated arms (e.g. the 1M-entity arm of `kg_retrieval` behind
/// `CF_BENCH_KG_LARGE=1`) run partially most of the time; a plain
/// [`write_json`] would silently drop the expensive rows from the previous
/// full run. Here rows are keyed on their first `key_cols` cells: new rows
/// replace existing rows with the same key and append otherwise, existing
/// rows with keys this run didn't produce survive. If the existing file is
/// unreadable, malformed, or has different headers, the new table replaces
/// it wholesale.
pub fn write_json_merged(
    table: &Table,
    dir: &Path,
    name: &str,
    key_cols: usize,
) -> std::io::Result<std::path::PathBuf> {
    assert!(
        key_cols >= 1 && key_cols <= table.headers.len(),
        "key_cols out of range"
    );
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    let old = std::fs::read_to_string(&path)
        .ok()
        .and_then(|t| parse_table_json(&t));
    let merged = match old {
        Some(old) if old.headers == table.headers => {
            let mut rows = old.rows;
            for row in &table.rows {
                match rows.iter_mut().find(|r| r[..key_cols] == row[..key_cols]) {
                    Some(existing) => *existing = row.clone(),
                    None => rows.push(row.clone()),
                }
            }
            Table {
                title: table.title.clone(),
                // Always stamp the *current* host: after a merge the file
                // claims this machine's shape, and mixing hosts in one file
                // is exactly what the field exists to surface.
                host_cores: table.host_cores,
                headers: table.headers.clone(),
                rows,
            }
        }
        _ => Table {
            title: table.title.clone(),
            host_cores: table.host_cores,
            headers: table.headers.clone(),
            rows: table.rows.clone(),
        },
    };
    let mut f = std::fs::File::create(&path)?;
    f.write_all(merged.to_json().as_bytes())?;
    Ok(path)
}

/// Parses the fixed `{"title", "host_cores", "headers", "rows"}` JSON shape
/// produced by [`Table::to_json`]. Returns `None` on anything else — the
/// merge writer then falls back to replacing the file. (Pre-`host_cores`
/// files fail here and are replaced wholesale on the next write.)
fn parse_table_json(text: &str) -> Option<Table> {
    let mut p = JsonParser {
        chars: text.chars().peekable(),
    };
    p.expect('{')?;
    p.key("title")?;
    let title = p.string()?;
    p.expect(',')?;
    p.key("host_cores")?;
    let host_cores: usize = p.string()?.parse().ok()?;
    p.expect(',')?;
    p.key("headers")?;
    let headers = p.string_array()?;
    p.expect(',')?;
    p.key("rows")?;
    p.expect('[')?;
    let mut rows = Vec::new();
    if p.peek()? == ']' {
        p.expect(']')?;
    } else {
        loop {
            let row = p.string_array()?;
            if row.len() != headers.len() {
                return None;
            }
            rows.push(row);
            match p.next_non_ws()? {
                ',' => continue,
                ']' => break,
                _ => return None,
            }
        }
    }
    p.expect('}')?;
    Some(Table {
        title,
        host_cores,
        headers,
        rows,
    })
}

/// Minimal recursive-descent reader for [`parse_table_json`]; any deviation
/// from the expected shape surfaces as `None`.
struct JsonParser<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
}

impl JsonParser<'_> {
    fn peek(&mut self) -> Option<char> {
        while self.chars.peek().is_some_and(|c| c.is_whitespace()) {
            self.chars.next();
        }
        self.chars.peek().copied()
    }

    fn next_non_ws(&mut self) -> Option<char> {
        self.peek()?;
        self.chars.next()
    }

    fn expect(&mut self, want: char) -> Option<()> {
        (self.next_non_ws()? == want).then_some(())
    }

    /// `"name":` with the exact given name.
    fn key(&mut self, name: &str) -> Option<()> {
        (self.string()? == name).then_some(())?;
        self.expect(':')
    }

    fn string(&mut self) -> Option<String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.chars.next()? {
                '"' => return Some(out),
                '\\' => match self.chars.next()? {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    '/' => out.push('/'),
                    'n' => out.push('\n'),
                    'r' => out.push('\r'),
                    't' => out.push('\t'),
                    'b' => out.push('\u{8}'),
                    'f' => out.push('\u{c}'),
                    'u' => {
                        let mut v = 0u32;
                        for _ in 0..4 {
                            v = v * 16 + self.chars.next()?.to_digit(16)?;
                        }
                        out.push(char::from_u32(v)?);
                    }
                    _ => return None,
                },
                c => out.push(c),
            }
        }
    }

    fn string_array(&mut self) -> Option<Vec<String>> {
        self.expect('[')?;
        let mut out = Vec::new();
        if self.peek()? == ']' {
            self.expect(']')?;
            return Some(out);
        }
        loop {
            out.push(self.string()?);
            match self.next_non_ws()? {
                ',' => continue,
                ']' => return Some(out),
                _ => return None,
            }
        }
    }
}

/// Formats an error the way the paper's tables do: sensible precision for
/// magnitudes from 1e-4 to 1e9.
pub fn fmt_err(v: f64) -> String {
    if !v.is_finite() {
        "n/a".into()
    } else if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1e5 {
        format!("{v:.1e}")
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_round_trips_simple_rows() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(vec!["1".into(), "x,y".into()]);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n1,\"x,y\"\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn fmt_err_covers_magnitudes() {
        assert_eq!(fmt_err(0.0), "0");
        assert_eq!(fmt_err(0.0163), "0.0163");
        assert_eq!(fmt_err(15.53), "15.53");
        assert_eq!(fmt_err(205.1), "205.1");
        assert_eq!(fmt_err(1.7e8), "1.7e8");
        assert_eq!(fmt_err(f64::NAN), "n/a");
    }

    #[test]
    fn json_escapes_special_characters() {
        let mut t = Table::new("q\"uote\\slash", &["h"]);
        t.row(vec!["line\nbreak\ttab\u{1}".into()]);
        let json = t.to_json();
        assert!(json.contains(r#""q\"uote\\slash""#));
        assert!(json.contains(r#""line\nbreak\ttab\u0001""#));
    }

    #[test]
    fn json_has_expected_shape() {
        let mut t = Table::new("t", &["a", "b"]);
        t.host_cores = 32; // pin for an exact-format assertion
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["3".into(), "4".into()]);
        assert_eq!(
            t.to_json(),
            "{\n  \"title\": \"t\",\n  \"host_cores\": \"32\",\n  \"headers\": [\"a\", \"b\"],\n  \"rows\": [\n    [\"1\", \"2\"],\n    [\"3\", \"4\"]\n  ]\n}\n"
        );
    }

    #[test]
    fn json_metadata_records_this_hosts_cores() {
        let t = Table::new("t", &["a"]);
        assert_eq!(t.host_cores, host_cores());
        assert!(host_cores() >= 1);
        let back = parse_table_json(&t.to_json()).unwrap();
        assert_eq!(back.host_cores, host_cores());
        // Pre-metadata files (no host_cores key) are rejected, which makes
        // the merge writer replace them wholesale rather than guess.
        let legacy =
            "{\n  \"title\": \"t\",\n  \"headers\": [\"a\"],\n  \"rows\": [\n    [\"1\"]\n  ]\n}\n";
        assert!(parse_table_json(legacy).is_none());
    }

    #[test]
    fn write_json_creates_file() {
        let dir = std::env::temp_dir().join("cf_bench_test_json");
        let mut t = Table::new("t", &["a"]);
        t.row(vec!["1".into()]);
        let path = write_json(&t, &dir, "unit").unwrap();
        assert!(path.exists());
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn parse_table_json_round_trips() {
        let mut t = Table::new("ti\"tle\n", &["k", "v"]);
        t.row(vec!["a\\b".into(), "1".into()]);
        t.row(vec!["c\td".into(), "2".into()]);
        let back = parse_table_json(&t.to_json()).unwrap();
        assert_eq!(back.title, t.title);
        assert_eq!(back.headers, t.headers);
        assert_eq!(back.rows, t.rows);
    }

    #[test]
    fn parse_table_json_rejects_malformed() {
        assert!(parse_table_json("").is_none());
        assert!(parse_table_json("{}").is_none());
        assert!(parse_table_json("not json at all").is_none());
        // ragged row (width != headers)
        let ragged = "{\n  \"title\": \"t\",\n  \"host_cores\": \"8\",\n  \"headers\": [\"a\", \"b\"],\n  \"rows\": [\n    [\"1\"]\n  ]\n}\n";
        assert!(parse_table_json(ragged).is_none());
        // truncated file (e.g. interrupted write)
        let mut t = Table::new("t", &["a"]);
        t.row(vec!["1".into()]);
        let full = t.to_json();
        assert!(parse_table_json(&full[..full.len() / 2]).is_none());
    }

    #[test]
    fn write_json_merged_keeps_rows_from_other_arms() {
        let dir = std::env::temp_dir().join(format!("cf_bench_merge_{}", std::process::id()));
        // First run: the expensive arm writes its rows.
        let mut big = Table::new("t", &["scale", "metric", "value"]);
        big.row(vec!["1m".into(), "p99".into(), "500".into()]);
        write_json_merged(&big, &dir, "unit_merge", 2).unwrap();
        // Second run: only the small arm runs; it must not clobber "1m".
        let mut small = Table::new("t", &["scale", "metric", "value"]);
        small.row(vec!["15k".into(), "p99".into(), "20".into()]);
        let path = write_json_merged(&small, &dir, "unit_merge", 2).unwrap();
        let merged = parse_table_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(merged.rows.len(), 2);
        assert!(merged.rows.iter().any(|r| r[0] == "1m" && r[2] == "500"));
        assert!(merged.rows.iter().any(|r| r[0] == "15k" && r[2] == "20"));
        // Third run: small arm again with a new value replaces its row in place.
        let mut rerun = Table::new("t", &["scale", "metric", "value"]);
        rerun.row(vec!["15k".into(), "p99".into(), "25".into()]);
        write_json_merged(&rerun, &dir, "unit_merge", 2).unwrap();
        let merged = parse_table_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(merged.rows.len(), 2);
        assert!(merged.rows.iter().any(|r| r[0] == "15k" && r[2] == "25"));
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_dir(&dir).unwrap();
    }

    #[test]
    fn write_json_merged_replaces_on_schema_change() {
        let dir =
            std::env::temp_dir().join(format!("cf_bench_merge_schema_{}", std::process::id()));
        let mut old = Table::new("t", &["a", "b"]);
        old.row(vec!["1".into(), "2".into()]);
        write_json_merged(&old, &dir, "unit_schema", 1).unwrap();
        let mut new = Table::new("t", &["a", "b", "c"]);
        new.row(vec!["1".into(), "2".into(), "3".into()]);
        let path = write_json_merged(&new, &dir, "unit_schema", 1).unwrap();
        let got = parse_table_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(got.headers, vec!["a", "b", "c"]);
        assert_eq!(got.rows.len(), 1);
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_dir(&dir).unwrap();
    }

    #[test]
    fn write_json_merged_replaces_corrupt_file() {
        let dir =
            std::env::temp_dir().join(format!("cf_bench_merge_corrupt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("unit_corrupt.json");
        std::fs::write(&path, b"{ truncated garba").unwrap();
        let mut t = Table::new("t", &["a"]);
        t.row(vec!["1".into()]);
        write_json_merged(&t, &dir, "unit_corrupt", 1).unwrap();
        let got = parse_table_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(got.rows, vec![vec!["1".to_string()]]);
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_dir(&dir).unwrap();
    }

    #[test]
    fn write_csv_creates_file() {
        let dir = std::env::temp_dir().join("cf_bench_test");
        let mut t = Table::new("t", &["a"]);
        t.row(vec!["1".into()]);
        let path = write_csv(&t, &dir, "unit").unwrap();
        assert!(path.exists());
        std::fs::remove_file(path).unwrap();
    }
}
