//! Console tables and CSV/JSON persistence for experiment outputs.
//!
//! The JSON writer is hand-rolled (escaping per RFC 8259) so the harness
//! needs no serialization dependency; tables are small and the schema is
//! fixed, so a few lines of careful escaping beat a crate.

use std::io::Write;
use std::path::Path;

/// A simple printable/serializable table.
pub struct Table {
    /// Table caption.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (each as wide as `headers`).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// An empty table with the given caption and columns.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; panics if the width disagrees with the headers.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Prints a fixed-width console rendering.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        println!("\n== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| {
            let parts: Vec<String> = cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect();
            println!("| {} |", parts.join(" | "));
        };
        line(&self.headers, &widths);
        println!(
            "|{}|",
            widths
                .iter()
                .map(|w| "-".repeat(w + 2))
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            line(row, &widths);
        }
    }

    /// CSV rendering (quoted only when needed).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// JSON rendering: `{"title", "headers", "rows"}` with all cells as
    /// strings, matching the CSV contents exactly.
    pub fn to_json(&self) -> String {
        let str_array = |items: &[String]| {
            let parts: Vec<String> = items.iter().map(|s| json_string(s)).collect();
            format!("[{}]", parts.join(", "))
        };
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|r| format!("    {}", str_array(r)))
            .collect();
        format!(
            "{{\n  \"title\": {},\n  \"headers\": {},\n  \"rows\": [\n{}\n  ]\n}}\n",
            json_string(&self.title),
            str_array(&self.headers),
            rows.join(",\n")
        )
    }
}

/// Escapes `s` as a JSON string literal (RFC 8259 §7: quote, backslash and
/// control characters; everything else passes through as UTF-8).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Writes a table as CSV under `dir/name.csv` (directory created on demand).
pub fn write_csv(table: &Table, dir: &Path, name: &str) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut f = std::fs::File::create(&path)?;
    f.write_all(table.to_csv().as_bytes())?;
    Ok(path)
}

/// Writes a table as JSON under `dir/name.json` (directory created on
/// demand).
pub fn write_json(table: &Table, dir: &Path, name: &str) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    let mut f = std::fs::File::create(&path)?;
    f.write_all(table.to_json().as_bytes())?;
    Ok(path)
}

/// Formats an error the way the paper's tables do: sensible precision for
/// magnitudes from 1e-4 to 1e9.
pub fn fmt_err(v: f64) -> String {
    if !v.is_finite() {
        "n/a".into()
    } else if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1e5 {
        format!("{v:.1e}")
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_round_trips_simple_rows() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(vec!["1".into(), "x,y".into()]);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n1,\"x,y\"\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn fmt_err_covers_magnitudes() {
        assert_eq!(fmt_err(0.0), "0");
        assert_eq!(fmt_err(0.0163), "0.0163");
        assert_eq!(fmt_err(15.53), "15.53");
        assert_eq!(fmt_err(205.1), "205.1");
        assert_eq!(fmt_err(1.7e8), "1.7e8");
        assert_eq!(fmt_err(f64::NAN), "n/a");
    }

    #[test]
    fn json_escapes_special_characters() {
        let mut t = Table::new("q\"uote\\slash", &["h"]);
        t.row(vec!["line\nbreak\ttab\u{1}".into()]);
        let json = t.to_json();
        assert!(json.contains(r#""q\"uote\\slash""#));
        assert!(json.contains(r#""line\nbreak\ttab\u0001""#));
    }

    #[test]
    fn json_has_expected_shape() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["3".into(), "4".into()]);
        assert_eq!(
            t.to_json(),
            "{\n  \"title\": \"t\",\n  \"headers\": [\"a\", \"b\"],\n  \"rows\": [\n    [\"1\", \"2\"],\n    [\"3\", \"4\"]\n  ]\n}\n"
        );
    }

    #[test]
    fn write_json_creates_file() {
        let dir = std::env::temp_dir().join("cf_bench_test_json");
        let mut t = Table::new("t", &["a"]);
        t.row(vec!["1".into()]);
        let path = write_json(&t, &dir, "unit").unwrap();
        assert!(path.exists());
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn write_csv_creates_file() {
        let dir = std::env::temp_dir().join("cf_bench_test");
        let mut t = Table::new("t", &["a"]);
        t.row(vec!["1".into()]);
        let path = write_csv(&t, &dir, "unit").unwrap();
        assert!(path.exists());
        std::fs::remove_file(path).unwrap();
    }
}
