//! Console tables and CSV persistence for experiment outputs.

use std::io::Write;
use std::path::Path;

/// A simple printable/serializable table.
pub struct Table {
    /// Table caption.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (each as wide as `headers`).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// An empty table with the given caption and columns.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; panics if the width disagrees with the headers.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Prints a fixed-width console rendering.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        println!("\n== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| {
            let parts: Vec<String> = cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect();
            println!("| {} |", parts.join(" | "));
        };
        line(&self.headers, &widths);
        println!(
            "|{}|",
            widths
                .iter()
                .map(|w| "-".repeat(w + 2))
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            line(row, &widths);
        }
    }

    /// CSV rendering (quoted only when needed).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Writes a table as CSV under `dir/name.csv` (directory created on demand).
pub fn write_csv(table: &Table, dir: &Path, name: &str) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut f = std::fs::File::create(&path)?;
    f.write_all(table.to_csv().as_bytes())?;
    Ok(path)
}

/// Formats an error the way the paper's tables do: sensible precision for
/// magnitudes from 1e-4 to 1e9.
pub fn fmt_err(v: f64) -> String {
    if !v.is_finite() {
        "n/a".into()
    } else if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1e5 {
        format!("{v:.1e}")
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_round_trips_simple_rows() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(vec!["1".into(), "x,y".into()]);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n1,\"x,y\"\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn fmt_err_covers_magnitudes() {
        assert_eq!(fmt_err(0.0), "0");
        assert_eq!(fmt_err(0.0163), "0.0163");
        assert_eq!(fmt_err(15.53), "15.53");
        assert_eq!(fmt_err(205.1), "205.1");
        assert_eq!(fmt_err(1.7e8), "1.7e8");
        assert_eq!(fmt_err(f64::NAN), "n/a");
    }

    #[test]
    fn write_csv_creates_file() {
        let dir = std::env::temp_dir().join("cf_bench_test");
        let mut t = Table::new("t", &["a"]);
        t.row(vec!["1".into()]);
        let path = write_csv(&t, &dir, "unit").unwrap();
        assert!(path.exists());
        std::fs::remove_file(path).unwrap();
    }
}
