#![warn(missing_docs)]

//! # chainsformer-bench
//!
//! The experiment harness: one binary per table and figure of the paper
//! (see DESIGN.md §3 for the index), sharing workload construction, a
//! method registry and table/CSV reporters.
//!
//! Every binary honours these environment variables:
//! - `CF_SCALE` — `small` | `default` | `paper` (dataset size, default
//!   `default`);
//! - `CF_SEED` — RNG seed (default 7);
//! - `CF_EPOCHS` — ChainsFormer training epochs override;
//! - `CF_OUT` — directory for CSV outputs (default `results/`).

pub mod alloc;
pub mod ascii_plot;
pub mod harness;
pub mod methods;
pub mod micro;
pub mod report;

pub use ascii_plot::{bar_chart, line_chart};
pub use harness::{load, BenchArgs, Dataset, Workload};
pub use methods::{fit_all_baselines, train_chainsformer, MethodReport};
pub use report::{write_csv, Table};
