//! Minimal ASCII charts, so the figure binaries can show the *shape* the
//! paper plots (bars and line series) directly in the terminal and in logs.

/// Renders a horizontal bar chart. Values must be non-negative; bars are
/// scaled to `width` characters against the maximum.
pub fn bar_chart(title: &str, rows: &[(String, f64)], width: usize) -> String {
    let max = rows.iter().map(|r| r.1).fold(0.0f64, f64::max).max(1e-12);
    let label_w = rows.iter().map(|r| r.0.len()).max().unwrap_or(0);
    let mut out = format!("{title}\n");
    for (label, v) in rows {
        let filled = ((v / max) * width as f64).round() as usize;
        out.push_str(&format!(
            "{label:<label_w$} | {}{} {v:.4}\n",
            "█".repeat(filled),
            " ".repeat(width.saturating_sub(filled)),
        ));
    }
    out
}

/// Renders one or more line series over shared x labels as a dot matrix of
/// `height` rows. Lower values plot lower; each series uses its own glyph.
pub fn line_chart(
    title: &str,
    x_labels: &[String],
    series: &[(&str, Vec<f64>)],
    height: usize,
) -> String {
    assert!(height >= 2, "line_chart needs at least 2 rows");
    let all: Vec<f64> = series.iter().flat_map(|s| s.1.iter().copied()).collect();
    let lo = all.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = all.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-12);
    let glyphs = ['o', 'x', '+', '*', '#', '@'];
    let cols = x_labels.len();
    let col_w = 8usize;
    let mut grid = vec![vec![' '; cols * col_w]; height];
    for (si, (_, values)) in series.iter().enumerate() {
        for (ci, &v) in values.iter().enumerate() {
            let row = ((hi - v) / span * (height - 1) as f64).round() as usize;
            grid[row.min(height - 1)][ci * col_w + col_w / 2] = glyphs[si % glyphs.len()];
        }
    }
    let mut out = format!("{title}   (top = {hi:.4}, bottom = {lo:.4})\n");
    for row in grid {
        out.push_str(&format!("  |{}\n", row.into_iter().collect::<String>()));
    }
    out.push_str("   ");
    for l in x_labels {
        out.push_str(&format!("{l:^col_w$}"));
    }
    out.push('\n');
    for (si, (name, _)) in series.iter().enumerate() {
        out.push_str(&format!("   {} = {name}\n", glyphs[si % glyphs.len()]));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_chart_scales_to_max() {
        let rows = vec![("a".to_string(), 1.0), ("bb".to_string(), 2.0)];
        let s = bar_chart("t", &rows, 10);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "t");
        // The max row is fully filled.
        assert!(lines[2].matches('█').count() == 10, "{s}");
        assert!(lines[1].matches('█').count() == 5, "{s}");
        // Labels are padded to equal width.
        assert!(
            lines[1].starts_with("a  |") || lines[1].starts_with("a "),
            "{s}"
        );
    }

    #[test]
    fn line_chart_places_extremes_on_edges() {
        let x: Vec<String> = ["1", "2", "3"].iter().map(|s| s.to_string()).collect();
        let s = line_chart("t", &x, &[("mae", vec![0.1, 0.5, 0.9])], 5);
        let lines: Vec<&str> = s.lines().collect();
        // Highest value (0.9) in the top grid row; lowest in the bottom row.
        assert!(lines[1].contains('o'), "top row missing point: {s}");
        assert!(lines[5].contains('o'), "bottom row missing point: {s}");
    }

    #[test]
    fn line_chart_handles_constant_series() {
        let x: Vec<String> = ["a", "b"].iter().map(|s| s.to_string()).collect();
        let s = line_chart("t", &x, &[("flat", vec![1.0, 1.0])], 3);
        assert!(s.contains('o'));
    }

    #[test]
    fn multiple_series_use_distinct_glyphs() {
        let x: Vec<String> = ["a", "b"].iter().map(|s| s.to_string()).collect();
        let s = line_chart("t", &x, &[("u", vec![0.0, 1.0]), ("v", vec![1.0, 0.0])], 4);
        assert!(s.contains('o') && s.contains('x'));
        assert!(s.contains("o = u") && s.contains("x = v"));
    }
}
