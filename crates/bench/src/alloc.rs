//! A counting global allocator for the zero-allocation perf gate.
//!
//! Wraps [`System`] and counts every `alloc`/`dealloc` (a `realloc` counts
//! as one of each). Install it in a binary with
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: chainsformer_bench::alloc::CountingAlloc = CountingAlloc;
//! ```
//!
//! then bracket a region with [`measure`] to get the allocation delta it
//! caused. The counters are process-global relaxed atomics: cheap enough to
//! leave on under a benchmark (one uncontended `fetch_add` per allocator
//! call, noise next to the allocation itself) and exact on the single
//! thread the gates run on.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static FREES: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

/// [`System`] plus relaxed per-call counters.
pub struct CountingAlloc;

// SAFETY: defers every allocation verbatim to `System`; the counter updates
// are allocation-free atomics.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        FREES.fetch_add(1, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A grow-in-place is still allocator traffic the pool should have
        // absorbed; book it as a free of the old block + alloc of the new.
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        FREES.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// Allocator-traffic totals at one instant (or the delta over a region).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocCounts {
    /// Calls into `alloc`/`alloc_zeroed` (+1 per `realloc`).
    pub allocs: u64,
    /// Calls into `dealloc` (+1 per `realloc`).
    pub frees: u64,
    /// Bytes requested across all counted allocations.
    pub bytes: u64,
}

impl AllocCounts {
    /// Counter-wise difference `self - earlier` (saturating).
    pub fn since(&self, earlier: AllocCounts) -> AllocCounts {
        AllocCounts {
            allocs: self.allocs.saturating_sub(earlier.allocs),
            frees: self.frees.saturating_sub(earlier.frees),
            bytes: self.bytes.saturating_sub(earlier.bytes),
        }
    }
}

/// Snapshot of the process-wide counters.
pub fn counts() -> AllocCounts {
    AllocCounts {
        allocs: ALLOCS.load(Ordering::Relaxed),
        frees: FREES.load(Ordering::Relaxed),
        bytes: ALLOC_BYTES.load(Ordering::Relaxed),
    }
}

/// Runs `f` and returns its result plus the allocator traffic it caused.
/// Only meaningful when [`CountingAlloc`] is the installed global allocator
/// (otherwise the delta is always zero) and no other thread allocates
/// concurrently.
pub fn measure<T>(f: impl FnOnce() -> T) -> (T, AllocCounts) {
    let before = counts();
    let out = f();
    (out, counts().since(before))
}
