//! Method registry: trains/fits every Table-III column against a workload.

use crate::harness::{BenchArgs, Workload};
use cf_baselines::{
    evaluate_baseline, AttributeMean, HyntLite, Kga, MrAP, NapPlusPlus, NumericPredictor, PlmReg,
    TogConfig, TogR, TransE, TransEConfig,
};
use cf_kg::RegressionReport;
use cf_rand::rngs::StdRng;
use cf_rand::SeedableRng;
use chainsformer::{evaluate_model, ChainsFormer, ChainsFormerConfig, Trainer};

/// One evaluated method: name + test-set report.
pub struct MethodReport {
    /// Method column label.
    pub name: String,
    /// Test-split evaluation report.
    pub report: RegressionReport,
}

/// Trains ChainsFormer on a workload and evaluates on its test split.
/// `cfg` lets callers inject ablation/sweep variants; `args.epochs`
/// overrides the epoch count when set.
pub fn train_chainsformer(
    w: &Workload,
    mut cfg: ChainsFormerConfig,
    args: &BenchArgs,
) -> (ChainsFormer, RegressionReport) {
    if let Some(e) = args.epochs {
        cfg.epochs = e;
    }
    cfg.seed = args.seed;
    let mut rng = StdRng::seed_from_u64(args.seed.wrapping_mul(31).wrapping_add(1));
    let mut model = ChainsFormer::new(&w.visible, &w.split.train, cfg, &mut rng);
    Trainer::new(&mut model, &w.visible).train(&w.split, &mut rng);
    let report = evaluate_model(&model, &w.visible, &w.split.test, &mut rng);
    (model, report)
}

/// Fits and evaluates every baseline of Table III (plus the attribute-mean
/// reference). Returns reports in the paper's column order.
pub fn fit_all_baselines(w: &Workload, args: &BenchArgs) -> Vec<MethodReport> {
    let mut rng = StdRng::seed_from_u64(args.seed.wrapping_mul(97).wrapping_add(5));
    let na = w.graph.num_attributes();
    let transe_cfg = TransEConfig {
        epochs: 25,
        ..Default::default()
    };
    let transe = TransE::fit(&w.visible, transe_cfg, &mut rng);

    let mut out = Vec::new();
    let eval = |p: &dyn NumericPredictor, rng: &mut StdRng| MethodReport {
        name: p.name().to_string(),
        report: evaluate_baseline(p, &w.visible, &w.split.test, &w.norm, rng),
    };

    let nap = NapPlusPlus::new(transe.clone(), 8, na, &w.split.train);
    out.push(eval(&nap, &mut rng));

    let mrap = MrAP::fit(&w.visible, &w.split.train, 3);
    out.push(eval(&mrap, &mut rng));

    let plm = PlmReg::fit(&w.visible, &w.split.train, 40, &mut rng);
    out.push(eval(&plm, &mut rng));

    let kga = Kga::fit(&w.visible, &w.split.train, 16, transe_cfg, &mut rng);
    out.push(eval(&kga, &mut rng));

    let hynt = HyntLite::fit(&w.visible, &transe, &w.split.train, 40, &mut rng);
    out.push(eval(&hynt, &mut rng));

    let tog = TogR::fit(&w.visible, &w.split.train, TogConfig::default());
    out.push(eval(&tog, &mut rng));

    let mean = AttributeMean::fit(na, &w.split.train);
    out.push(eval(&mean, &mut rng));

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{load, Dataset};
    use cf_kg::synth::SynthScale;

    fn small_args() -> BenchArgs {
        BenchArgs {
            scale: SynthScale::small(),
            scale_name: "small".into(),
            seed: 2,
            epochs: Some(2),
            out_dir: std::env::temp_dir(),
        }
    }

    #[test]
    fn all_baselines_produce_reports() {
        let w = load(Dataset::Yago15kSim, SynthScale::small(), 2);
        let reports = fit_all_baselines(&w, &small_args());
        assert_eq!(reports.len(), 7);
        let names: Vec<&str> = reports.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(
            names,
            ["NAP++", "MrAP", "PLM-reg", "KGA", "HyNT", "ToG-R", "AttrMean"]
        );
        for r in &reports {
            assert!(r.report.norm_mae.is_finite(), "{} non-finite", r.name);
        }
    }

    #[test]
    fn chainsformer_trains_under_harness() {
        let w = load(Dataset::Yago15kSim, SynthScale::small(), 2);
        let (_, report) = train_chainsformer(&w, ChainsFormerConfig::tiny(), &small_args());
        assert!(report.norm_mae.is_finite());
    }
}
