//! Minimal micro-benchmark harness (offline replacement for Criterion).
//!
//! Implements the slice of the Criterion API the `benches/` programs use —
//! [`Criterion::sample_size`], [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros — so a bench ports with an import swap.
//!
//! Methodology: each benchmark is calibrated once to pick an iteration
//! count whose wall time is ≈[`SAMPLE_BUDGET_NS`], then timed for
//! `sample_size` samples; the report prints min / median / mean per-call
//! time. No outlier analysis or statistics files — these numbers guide
//! optimization work, they are not a measurement paper. Set
//! `CF_BENCH_SAMPLES` to override every sample count (e.g. `=5` for a
//! smoke run in CI).

use std::hint::black_box;
use std::time::Instant;

/// Wall-time target for one calibrated sample.
const SAMPLE_BUDGET_NS: f64 = 2_000_000.0;

/// Controls how `iter_batched` amortizes setup; only small-input batching
/// is implemented because that is the only mode the benches use.
#[derive(Copy, Clone, Debug)]
pub enum BatchSize {
    /// Inputs are cheap to hold: pre-build one batch per sample.
    SmallInput,
}

/// Summary statistics of one finished benchmark, in nanoseconds per call.
/// Collected by [`Criterion`] so bench binaries can persist a machine-readable
/// report (see `report::write_json`) next to the console output.
#[derive(Clone, Debug)]
pub struct BenchStats {
    /// Benchmark id (`group/member` for grouped benches).
    pub name: String,
    /// Median per-call time.
    pub median_ns: f64,
    /// Mean per-call time.
    pub mean_ns: f64,
    /// Fastest sample's per-call time.
    pub min_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
}

/// Top-level benchmark driver; build with `Criterion::default()` and
/// adjust with [`sample_size`](Criterion::sample_size).
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    results: Vec<BenchStats>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark (env
    /// `CF_BENCH_SAMPLES` overrides at run time).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    fn effective_samples(&self) -> usize {
        std::env::var("CF_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n: &usize| n > 0)
            .unwrap_or(self.sample_size)
    }

    /// Runs one named benchmark; the closure drives a [`Bencher`].
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.effective_samples(),
        };
        f(&mut b);
        let stats = summarize(&id.into(), &b.samples);
        report(&stats);
        self.results.push(stats);
        self
    }

    /// Statistics of every benchmark run so far, in execution order.
    pub fn results(&self) -> &[BenchStats] {
        &self.results
    }

    /// Starts a named group; member benchmarks are reported as
    /// `group/member`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one member benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        self.criterion.bench_function(full, f);
        self
    }

    /// Ends the group (kept for API parity; reporting is immediate).
    pub fn finish(self) {}
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    /// Per-call nanoseconds, one entry per sample.
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` repeatedly, black-boxing its output.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let iters = calibrate(|| {
            black_box(routine());
        });
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples
                .push(t0.elapsed().as_nanos() as f64 / iters as f64);
        }
    }

    /// Times `routine` on fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let iters = {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            iters_for(t0.elapsed().as_nanos() as f64)
        };
        for _ in 0..self.sample_size {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let t0 = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            self.samples
                .push(t0.elapsed().as_nanos() as f64 / iters as f64);
        }
    }
}

/// Picks an iteration count so one sample takes ≈ the budget, from a
/// repeatable routine.
fn calibrate<F: FnMut()>(mut routine: F) -> u64 {
    routine(); // warm caches and lazy statics
    let t0 = Instant::now();
    routine();
    iters_for(t0.elapsed().as_nanos() as f64)
}

fn iters_for(single_ns: f64) -> u64 {
    (SAMPLE_BUDGET_NS / single_ns.max(1.0)).clamp(1.0, 1_000_000.0) as u64
}

fn summarize(name: &str, samples: &[f64]) -> BenchStats {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    BenchStats {
        name: name.to_string(),
        median_ns: sorted.get(sorted.len() / 2).copied().unwrap_or(0.0),
        mean_ns: sorted.iter().sum::<f64>() / sorted.len().max(1) as f64,
        min_ns: sorted.first().copied().unwrap_or(0.0),
        samples: sorted.len(),
    }
}

fn report(stats: &BenchStats) {
    println!(
        "{:<40} median {:>10}  mean {:>10}  min {:>10}  ({} samples)",
        stats.name,
        fmt_ns(stats.median_ns),
        fmt_ns(stats.mean_ns),
        fmt_ns(stats.min_ns),
        stats.samples
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Declares a bench group function, mirroring Criterion's macro grammar.
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        fn $name() {
            let mut c = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::micro::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

pub use crate::{criterion_group, criterion_main};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_records_requested_samples() {
        let mut c = Criterion::default().sample_size(5);
        let mut seen = 0;
        c.bench_function("noop", |b| {
            b.iter(|| std::hint::black_box(1 + 1));
            seen = 5;
        });
        assert_eq!(seen, 5);
    }

    #[test]
    fn iter_batched_consumes_fresh_inputs() {
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u8, 2, 3],
                |v| {
                    assert_eq!(v, [1, 2, 3]);
                    v.len()
                },
                BatchSize::SmallInput,
            );
        });
    }

    #[test]
    fn groups_prefix_names_and_finish() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("grp");
        g.bench_function("member", |b| b.iter(|| 0));
        g.finish();
    }

    #[test]
    fn format_scales_units() {
        assert_eq!(fmt_ns(500.0), "500.0 ns");
        assert_eq!(fmt_ns(1_500.0), "1.50 µs");
        assert_eq!(fmt_ns(2_500_000.0), "2.50 ms");
        assert_eq!(fmt_ns(3_000_000_000.0), "3.00 s");
    }

    #[test]
    fn calibration_never_returns_zero_iters() {
        assert_eq!(iters_for(f64::INFINITY), 1);
        assert!(iters_for(0.0) >= 1);
    }
}
