//! Workload construction shared by every experiment binary.

use cf_kg::synth::{fb15k_sim, yago15k_sim, SynthScale};
use cf_kg::{KnowledgeGraph, MinMaxNormalizer, Split};
use cf_rand::rngs::StdRng;
use cf_rand::SeedableRng;

/// Which synthetic dataset twin to run on.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Dataset {
    /// The YAGO15K-like twin.
    Yago15kSim,
    /// The FB15K-237-like twin.
    Fb15k237Sim,
}

impl Dataset {
    /// Display label matching the paper's dataset names.
    pub fn label(&self) -> &'static str {
        match self {
            Dataset::Yago15kSim => "YAGO15K-sim",
            Dataset::Fb15k237Sim => "FB15K-237-sim",
        }
    }

    /// Both datasets, in the paper's order.
    pub fn both() -> [Dataset; 2] {
        [Dataset::Yago15kSim, Dataset::Fb15k237Sim]
    }
}

/// Experiment-wide knobs, parsed from environment variables so every binary
/// shares one convention (see crate docs).
#[derive(Clone, Debug)]
pub struct BenchArgs {
    /// Dataset size profile.
    pub scale: SynthScale,
    /// The `CF_SCALE` string, echoed in titles.
    pub scale_name: String,
    /// RNG seed shared by dataset/model builders.
    pub seed: u64,
    /// Epoch override (`CF_EPOCHS`).
    pub epochs: Option<usize>,
    /// Directory receiving CSV outputs.
    pub out_dir: std::path::PathBuf,
}

impl BenchArgs {
    /// Parses the `CF_*` environment variables (see crate docs).
    pub fn from_env() -> Self {
        let scale_name = std::env::var("CF_SCALE").unwrap_or_else(|_| "default".into());
        let scale = match scale_name.as_str() {
            "small" => SynthScale::small(),
            "paper" => SynthScale::paper(),
            "default" => SynthScale::default_scale(),
            other => panic!("unknown CF_SCALE {other:?}; use small|default|paper"),
        };
        let seed = std::env::var("CF_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(7);
        let epochs = std::env::var("CF_EPOCHS").ok().and_then(|s| s.parse().ok());
        let out_dir = std::env::var("CF_OUT")
            .unwrap_or_else(|_| "results".into())
            .into();
        BenchArgs {
            scale,
            scale_name,
            seed,
            epochs,
            out_dir,
        }
    }
}

/// One ready-to-run dataset: full graph, split, visible graph, normalizer.
pub struct Workload {
    /// Which twin this workload is.
    pub dataset: Dataset,
    /// The full graph (including eval answers).
    pub graph: KnowledgeGraph,
    /// The 8:1:1 split.
    pub split: Split,
    /// The graph with eval answers hidden.
    pub visible: KnowledgeGraph,
    /// Normalizer fitted on the training triples.
    pub norm: MinMaxNormalizer,
}

/// Builds a workload deterministically from `(dataset, scale, seed)`.
pub fn load(dataset: Dataset, scale: SynthScale, seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let graph = match dataset {
        Dataset::Yago15kSim => yago15k_sim(scale, &mut rng),
        Dataset::Fb15k237Sim => fb15k_sim(scale, &mut rng),
    };
    let split = Split::paper_811(&graph, &mut rng);
    let visible = split.visible_graph(&graph);
    let norm = MinMaxNormalizer::fit(graph.num_attributes(), &split.train);
    Workload {
        dataset,
        graph,
        split,
        visible,
        norm,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_is_deterministic() {
        let a = load(Dataset::Yago15kSim, SynthScale::small(), 3);
        let b = load(Dataset::Yago15kSim, SynthScale::small(), 3);
        assert_eq!(a.graph.numerics().len(), b.graph.numerics().len());
        assert_eq!(a.split.test.len(), b.split.test.len());
        for (x, y) in a.split.test.iter().zip(&b.split.test) {
            assert_eq!(x.entity, y.entity);
            assert_eq!(x.value, y.value);
        }
    }

    #[test]
    fn visible_graph_is_consistent_with_split() {
        let w = load(Dataset::Fb15k237Sim, SynthScale::small(), 1);
        for t in &w.split.test {
            assert_eq!(w.visible.value_of(t.entity, t.attr), None);
        }
        assert_eq!(
            w.visible.numerics().len(),
            w.graph.numerics().len() - w.split.valid.len() - w.split.test.len()
        );
    }

    #[test]
    fn both_datasets_have_distinct_labels() {
        assert_ne!(Dataset::Yago15kSim.label(), Dataset::Fb15k237Sim.label());
    }
}
