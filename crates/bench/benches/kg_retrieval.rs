//! Million-entity graph store and chain index: load + retrieval latency.
//!
//! Pins the ISSUE-7 performance claims (DESIGN.md §13):
//! - loading a CFKG1 store by mmap (`MappedGraph::open`, CRC-validate then
//!   cast — no parse, no per-edge allocation) versus re-parsing the TSV
//!   twins and versus the owned heap load (`read_store`); the two sides of
//!   the headline ratio are each the median of three runs;
//! - chain-index build time at 1 and 4 pool threads, with the output bytes
//!   asserted identical (the fixed-shard determinism contract);
//! - retrieval latency per query, walk-per-query (`retrieve`, Eq. 6's
//!   `N_s` random walks over adjacency) versus indexed
//!   (`retrieve_indexed`, one CSR slice + weighted sampling).
//!
//! The 15K-entity arm always runs. The 1M-entity arm needs a few GB of
//! temp space and minutes of CPU, so it is gated behind
//! `CF_BENCH_KG_LARGE=1`. Set `CF_BENCH_JSON=1` to write
//! `results/BENCH_kg.json`; partial runs *merge* into the existing file
//! (keyed on scale+metric), so a small-only run never erases the large
//! rows. `CF_BENCH_SAMPLES` scales the query count (CI smoke uses 1).

use cf_chains::{retrieve, retrieve_indexed, Query, RetrievalConfig};
use cf_kg::io::{write_numerics, write_triples, TsvLoader};
use cf_kg::synth::{large_sim, LargeScale};
use cf_kg::{
    build_chain_index, read_store, write_index, write_store, ChainIndexView, GraphView,
    IndexParams, MappedChainIndex, MappedGraph,
};
use cf_rand::rngs::StdRng;
use cf_rand::SeedableRng;
use chainsformer_bench::report::{write_json_merged, Table};
use std::io::BufReader;
use std::path::{Path, PathBuf};
use std::time::Instant;

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("cf_bench_kg_{}_{}", std::process::id(), name));
    p
}

fn secs(t: Instant) -> f64 {
    t.elapsed().as_secs_f64()
}

/// Median of three timed repetitions. The two headline load metrics feed a
/// ratio (mmap open vs TSV parse), and a single sample of either can catch
/// a scheduler stall on a shared host; the median keeps the ratio stable.
fn median3(mut run: impl FnMut() -> f64) -> f64 {
    let mut t = [run(), run(), run()];
    t.sort_by(|a, b| a.partial_cmp(b).unwrap());
    t[1]
}

/// Per-query latencies in microseconds, sorted; (p50, p99) picked by rank.
fn percentiles(mut lat_us: Vec<f64>) -> (f64, f64) {
    lat_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pick = |q: f64| lat_us[((lat_us.len() - 1) as f64 * q).round() as usize];
    (pick(0.50), pick(0.99))
}

/// Queries with evidence, spread across the entity range.
fn sample_queries(g: &impl GraphView, n: usize) -> Vec<Query> {
    let stride = (g.num_entities() / n.max(1)).max(1);
    let mut out = Vec::with_capacity(n);
    let mut e = 0usize;
    while out.len() < n && e < g.num_entities() {
        let ent = cf_kg::EntityId(e as u32);
        if let Some(f) = g.numerics_of(ent).first() {
            if g.degree(ent) > 0 {
                out.push(Query {
                    entity: ent,
                    attr: f.attr,
                });
            }
        }
        e += stride;
    }
    out
}

struct ScaleResult {
    rows: Vec<(String, f64, &'static str)>,
}

fn run_scale(label: &str, scale: LargeScale, params: IndexParams, queries: usize) -> ScaleResult {
    let mut rows: Vec<(String, f64, &'static str)> = Vec::new();
    let mut push = |metric: &str, value: f64, unit: &'static str| {
        println!("[{label}] {metric:<28} {value:>12.3} {unit}");
        rows.push((metric.to_string(), value, unit));
    };

    // --- generate the world ---
    let t = Instant::now();
    let g = large_sim(scale, &mut StdRng::seed_from_u64(7));
    push("gen_s", secs(t), "s");
    push("entities", g.num_entities() as f64, "n");
    push("edges", g.triples().len() as f64, "n");

    // --- TSV parse arm (the status-quo load path) ---
    let triples_path = tmp(&format!("{label}_triples.tsv"));
    let numerics_path = tmp(&format!("{label}_numerics.tsv"));
    write_triples(
        &g,
        std::io::BufWriter::new(std::fs::File::create(&triples_path).unwrap()),
    )
    .unwrap();
    write_numerics(
        &g,
        std::io::BufWriter::new(std::fs::File::create(&numerics_path).unwrap()),
    )
    .unwrap();
    let mut parsed = None;
    let tsv_parse_s = median3(|| {
        let t = Instant::now();
        let mut loader = TsvLoader::new();
        loader
            .load_triples(BufReader::new(std::fs::File::open(&triples_path).unwrap()))
            .unwrap();
        loader
            .load_numerics(BufReader::new(std::fs::File::open(&numerics_path).unwrap()))
            .unwrap();
        parsed = Some(loader.finish());
        secs(t)
    });
    let parsed = parsed.unwrap();
    push("tsv_parse_s", tsv_parse_s, "s");
    // TSV is facts-only: an entity with no edges and no numeric facts
    // cannot round-trip through it (the binary store carries every
    // entity). At zipfian 1M a few dozen isolated entities drop out.
    assert!(parsed.num_entities() <= g.num_entities());
    push(
        "tsv_lost_entities",
        (g.num_entities() - parsed.num_entities()) as f64,
        "n",
    );
    drop(parsed);

    // --- store write + both load paths ---
    let store_path = tmp(&format!("{label}.cfkg"));
    let t = Instant::now();
    write_store(&g, &store_path).unwrap();
    push("store_write_s", secs(t), "s");
    push(
        "store_bytes",
        std::fs::metadata(&store_path).unwrap().len() as f64,
        "B",
    );
    let t = Instant::now();
    let heap = read_store(&store_path).unwrap();
    push("heap_load_s", secs(t), "s");
    drop(heap);
    let mut mapped = None;
    let mmap_open_s = median3(|| {
        let t = Instant::now();
        mapped = Some(MappedGraph::open(&store_path).unwrap());
        secs(t)
    });
    let mapped = mapped.unwrap();
    push("mmap_open_s", mmap_open_s, "s");
    push("mmap_vs_tsv_parse_speedup", tsv_parse_s / mmap_open_s, "x");

    // --- chain index build: 1 vs 4 threads, bytes must match ---
    push("index_fanout", params.fanout as f64, "n");
    push("index_per_entity_cap", params.per_entity_cap as f64, "n");
    let ix_path_1 = tmp(&format!("{label}_t1.cfci"));
    let ix_path_4 = tmp(&format!("{label}_t4.cfci"));
    cf_tensor::pool::set_threads(1);
    let t = Instant::now();
    let ix = build_chain_index(&mapped, params);
    push("index_build_t1_s", secs(t), "s");
    write_index(&ix, &ix_path_1).unwrap();
    drop(ix);
    cf_tensor::pool::set_threads(4);
    let t = Instant::now();
    let ix = build_chain_index(&mapped, params);
    push("index_build_t4_s", secs(t), "s");
    write_index(&ix, &ix_path_4).unwrap();
    drop(ix);
    assert_eq!(
        std::fs::read(&ix_path_1).unwrap(),
        std::fs::read(&ix_path_4).unwrap(),
        "index bytes differ between CF_THREADS=1 and CF_THREADS=4"
    );
    push(
        "index_bytes",
        std::fs::metadata(&ix_path_1).unwrap().len() as f64,
        "B",
    );
    let index = MappedChainIndex::open(&ix_path_1).unwrap();
    index.check_matches(&mapped).unwrap();

    // --- retrieval: walk-per-query vs indexed, same mmap backend ---
    let cfg = RetrievalConfig::default();
    let qs = sample_queries(&mapped, queries);
    assert!(!qs.is_empty(), "no evidence-bearing queries sampled");
    let mut walk_us = Vec::with_capacity(qs.len());
    for (i, q) in qs.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(0xBE7C_0000 + i as u64);
        let t = Instant::now();
        let toc = retrieve(&mapped, *q, &cfg, &mut rng);
        walk_us.push(secs(t) * 1e6);
        std::hint::black_box(toc.len());
    }
    let (walk_p50, walk_p99) = percentiles(walk_us);
    push("walk_p50_us", walk_p50, "us");
    push("walk_p99_us", walk_p99, "us");
    let mut ix_us = Vec::with_capacity(qs.len());
    for (i, q) in qs.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(0xBE7C_0000 + i as u64);
        let t = Instant::now();
        let toc = retrieve_indexed(&index, *q, &cfg, &mut rng);
        ix_us.push(secs(t) * 1e6);
        std::hint::black_box(toc.len());
    }
    let (ix_p50, ix_p99) = percentiles(ix_us);
    push("indexed_p50_us", ix_p50, "us");
    push("indexed_p99_us", ix_p99, "us");
    push("indexed_vs_walk_p99_speedup", walk_p99 / ix_p99, "x");
    push("queries", qs.len() as f64, "n");

    for p in [
        &triples_path,
        &numerics_path,
        &store_path,
        &ix_path_1,
        &ix_path_4,
    ] {
        let _ = std::fs::remove_file(p);
    }
    ScaleResult { rows }
}

fn main() {
    let samples: usize = std::env::var("CF_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    // The small arm uses the default index params; the 1M arm uses the
    // density an operator would run at that scale (fanout 8, 64 entries
    // per entity ≈ 2 GB of index instead of 8 GB at cap 256).
    let mut arms: Vec<(&str, LargeScale, IndexParams, usize)> = vec![(
        "15k",
        LargeScale::smoke(),
        IndexParams::default(),
        8 * samples,
    )];
    if std::env::var("CF_BENCH_KG_LARGE").is_ok() {
        let large_params = IndexParams {
            fanout: 8,
            per_entity_cap: 64,
            ..IndexParams::default()
        };
        arms.push(("1m", LargeScale::million(), large_params, 8 * samples));
    } else {
        println!("CF_BENCH_KG_LARGE not set: skipping the 1M-entity arm");
    }

    // Shared with `kg_mutate` — both benches merge rows into
    // `BENCH_kg.json`, and the merge stamps the last writer's title, so the
    // title must describe the union.
    let mut table = Table::new(
        "graph store + chain index: load/retrieval latency and live-mutation cost \
         (mmap vs TSV, indexed vs walk, journal/overlay/invalidation)",
        &["scale", "metric", "value", "unit"],
    );
    for (label, scale, params, queries) in arms {
        let r = run_scale(label, scale, params, queries);
        for (metric, value, unit) in r.rows {
            table.row(vec![
                label.to_string(),
                metric,
                if unit == "n" || unit == "B" {
                    format!("{value:.0}")
                } else {
                    format!("{value:.3}")
                },
                unit.to_string(),
            ]);
        }
    }
    table.print();

    if std::env::var("CF_BENCH_JSON").is_ok() {
        let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
        let path = write_json_merged(&table, &dir, "BENCH_kg", 2).expect("write BENCH_kg.json");
        println!("wrote {}", path.display());
    }
}
