//! Live-graph mutation cost: journal commit, overlay apply, invalidation.
//!
//! Pins the ISSUE-10 serving-mutation claims (DESIGN.md §16): what a
//! `{"mutate": …}` costs per mutation, decomposed into its three phases —
//!
//! - **journal** — encode + append + `fdatasync` of one CFJ1 record
//!   (durability is paid *before* visibility, so this fsync bounds mutation
//!   admission latency);
//! - **apply** — the copy-on-write row merge into [`OverlayGraph`];
//! - **invalidate** — the `max_hops` BFS ([`cf_serve::dirty_entities`])
//!   that computes the stale set for the chain cache and index.
//!
//! Plus the two batch operations: **replay** (recover the journal, apply
//! every mutation to a fresh overlay — the restart path) and **compact**
//! (fold the overlay into a new CFKG1 store, atomic tmp+rename).
//!
//! The 15K-entity arm always runs; the 1M-entity arm is gated behind
//! `CF_BENCH_KG_LARGE=1` (same convention as `kg_retrieval`). Rows merge
//! into `results/BENCH_kg.json` keyed on scale+metric, so this bench and
//! `kg_retrieval` share the file without clobbering each other.

use cf_kg::journal::{recover_file, JournalWriter};
use cf_kg::synth::{large_sim, LargeScale};
use cf_kg::{write_store, EntityId, GraphView, MappedGraph, Mutation, OverlayGraph, RelationId};
use cf_rand::rngs::StdRng;
use cf_rand::SeedableRng;
use cf_serve::dirty_entities;
use chainsformer_bench::report::{write_json_merged, Table};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Hops for the invalidation BFS — the paper's chain-length budget
/// (`max_hops = 3`), which is what a serving engine built from the default
/// reasoning setting uses.
const INVALIDATE_HOPS: usize = 3;

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("cf_bench_mut_{}_{}", std::process::id(), name));
    p
}

fn secs(t: Instant) -> f64 {
    t.elapsed().as_secs_f64()
}

/// Per-op latencies in microseconds, sorted; (p50, p99) picked by rank.
fn percentiles(mut lat_us: Vec<f64>) -> (f64, f64) {
    lat_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pick = |q: f64| lat_us[((lat_us.len() - 1) as f64 * q).round() as usize];
    (pick(0.50), pick(0.99))
}

/// One upsert per sampled evidence-bearing entity, spread across the id
/// range, plus an add-entity + add-edge pair every fourth slot (the mix a
/// live feed produces: mostly value updates, occasionally new nodes).
fn sample_mutations(g: &impl GraphView, n: usize) -> Vec<Mutation> {
    let stride = (g.num_entities() / n.max(1)).max(1);
    let rel0 = g.relation_name(RelationId(0)).to_string();
    let mut out = Vec::with_capacity(n + n / 4 * 2);
    let mut e = 0usize;
    while out.len() < n && e < g.num_entities() {
        let ent = EntityId(e as u32);
        if let Some(f) = g.numerics_of(ent).first() {
            let name = g.entity_name(ent).to_string();
            out.push(Mutation::UpsertNumeric {
                entity: name.clone(),
                attr: g.attribute_name(f.attr).to_string(),
                value: f.value + 1.0,
            });
            if out.len() % 4 == 0 {
                let fresh = format!("bench_mut_{e}");
                out.push(Mutation::AddEntity {
                    name: fresh.clone(),
                });
                out.push(Mutation::AddEdge {
                    head: fresh,
                    rel: rel0.clone(),
                    tail: name,
                });
            }
        }
        e += stride;
    }
    out
}

fn run_scale(label: &str, scale: LargeScale, samples: usize) -> Vec<(String, f64, &'static str)> {
    let mut rows: Vec<(String, f64, &'static str)> = Vec::new();
    let mut push = |metric: &str, value: f64, unit: &'static str| {
        println!("[{label}] {metric:<28} {value:>12.3} {unit}");
        rows.push((metric.to_string(), value, unit));
    };

    let g = large_sim(scale, &mut StdRng::seed_from_u64(7));
    let store_path = tmp(&format!("{label}.cfkg"));
    write_store(&g, &store_path).unwrap();
    drop(g);
    let mapped = MappedGraph::open(&store_path).unwrap();
    push("entities", mapped.num_entities() as f64, "n");

    let muts = sample_mutations(&mapped, samples);
    assert!(!muts.is_empty(), "no evidence-bearing entities sampled");
    push("mutations", muts.len() as f64, "n");
    push("invalidate_hops", INVALIDATE_HOPS as f64, "n");

    // --- per-mutation: journal fsync, overlay apply, invalidation BFS ---
    let journal_path = tmp(&format!("{label}.cfj"));
    let _ = std::fs::remove_file(&journal_path);
    let (mut journal, _) = JournalWriter::open(&journal_path).unwrap();
    let mut overlay = OverlayGraph::new(mapped.into());
    let mut journal_us = Vec::with_capacity(muts.len());
    let mut apply_us = Vec::with_capacity(muts.len());
    let mut bfs_us = Vec::with_capacity(muts.len());
    let mut dirty_total = 0usize;
    for m in &muts {
        let t = Instant::now();
        journal.append(m);
        journal.commit().unwrap();
        journal_us.push(secs(t) * 1e6);

        let t = Instant::now();
        let outcome = overlay.apply(m);
        apply_us.push(secs(t) * 1e6);

        let t = Instant::now();
        let dirty = dirty_entities(&overlay, &outcome.touched, INVALIDATE_HOPS);
        bfs_us.push(secs(t) * 1e6);
        dirty_total += dirty.len();
        std::hint::black_box(dirty.len());
    }
    let (p50, p99) = percentiles(journal_us);
    push("journal_commit_p50_us", p50, "us");
    push("journal_commit_p99_us", p99, "us");
    let (p50, p99) = percentiles(apply_us);
    push("overlay_apply_p50_us", p50, "us");
    push("overlay_apply_p99_us", p99, "us");
    let (p50, p99) = percentiles(bfs_us);
    push("invalidate_bfs_p50_us", p50, "us");
    push("invalidate_bfs_p99_us", p99, "us");
    push("dirty_mean", dirty_total as f64 / muts.len() as f64, "n");

    // --- restart path: recover the journal, re-apply onto a fresh base ---
    let t = Instant::now();
    let recovery = recover_file(&journal_path).unwrap();
    let mut replayed = OverlayGraph::new(MappedGraph::open(&store_path).unwrap().into());
    replayed.apply_all(&recovery.mutations);
    push("replay_s", secs(t), "s");
    assert_eq!(recovery.mutations.len(), muts.len());
    assert_eq!(replayed.mutations_applied(), overlay.mutations_applied());

    // --- compaction: fold the overlay into a new store, atomically ---
    let compact_path = tmp(&format!("{label}_compacted.cfkg"));
    let t = Instant::now();
    overlay.compact_to(&compact_path).unwrap();
    push("compact_s", secs(t), "s");
    push(
        "compact_bytes",
        std::fs::metadata(&compact_path).unwrap().len() as f64,
        "B",
    );

    for p in [&store_path, &journal_path, &compact_path] {
        let _ = std::fs::remove_file(p);
    }
    rows
}

fn main() {
    let samples: usize = std::env::var("CF_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    let mut arms: Vec<(&str, LargeScale, usize)> = vec![("15k", LargeScale::smoke(), 8 * samples)];
    if std::env::var("CF_BENCH_KG_LARGE").is_ok() {
        arms.push(("1m", LargeScale::million(), 8 * samples));
    } else {
        println!("CF_BENCH_KG_LARGE not set: skipping the 1M-entity arm");
    }

    // Shared with `kg_retrieval` — both benches merge rows into
    // `BENCH_kg.json`, and the merge stamps the last writer's title, so the
    // title must describe the union.
    let mut table = Table::new(
        "graph store + chain index: load/retrieval latency and live-mutation cost \
         (mmap vs TSV, indexed vs walk, journal/overlay/invalidation)",
        &["scale", "metric", "value", "unit"],
    );
    for (label, scale, samples) in arms {
        for (metric, value, unit) in run_scale(label, scale, samples) {
            table.row(vec![
                label.to_string(),
                metric,
                if unit == "n" || unit == "B" {
                    format!("{value:.0}")
                } else {
                    format!("{value:.3}")
                },
                unit.to_string(),
            ]);
        }
    }
    table.print();

    if std::env::var("CF_BENCH_JSON").is_ok() {
        let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
        let path = write_json_merged(&table, &dir, "BENCH_kg", 2).expect("write BENCH_kg.json");
        println!("wrote {}", path.display());
    }
}
