//! Pipeline-stage benchmarks on a realistic workload: query retrieval,
//! hyperbolic filtering, chain encoding and full per-query inference — the
//! complexity terms of the paper's §IV-G (`O(N_s·d + k·d²)`).

use cf_chains::{retrieve, ChainVocab, Query, RetrievalConfig};
use cf_kg::synth::{yago15k_sim, SynthScale};
use cf_kg::Split;
use cf_rand::rngs::StdRng;
use cf_rand::SeedableRng;
use chainsformer::{ChainFilter, ChainsFormer, ChainsFormerConfig, FilterSpace};
use chainsformer_bench::micro::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

struct Setup {
    visible: cf_kg::KnowledgeGraph,
    model: ChainsFormer,
    filter: ChainFilter,
    query: Query,
}

fn setup() -> Setup {
    let mut rng = StdRng::seed_from_u64(7);
    let graph = yago15k_sim(SynthScale::default_scale(), &mut rng);
    let split = Split::paper_811(&graph, &mut rng);
    let visible = split.visible_graph(&graph);
    let cfg = ChainsFormerConfig::default();
    let model = ChainsFormer::new(&visible, &split.train, cfg, &mut rng);
    let filter = ChainFilter::fit(&visible, FilterSpace::Hyperbolic, 16, 0.5, 10, &mut rng);
    // A well-connected query.
    let t = split
        .test
        .iter()
        .max_by_key(|t| visible.degree(t.entity))
        .copied()
        .expect("test triples");
    Setup {
        visible,
        model,
        filter,
        query: Query {
            entity: t.entity,
            attr: t.attr,
        },
    }
}

fn bench_pipeline(c: &mut Criterion) {
    let s = setup();
    let mut rng = StdRng::seed_from_u64(8);
    let retrieval = RetrievalConfig {
        num_walks: 256,
        max_hops: 3,
        ..Default::default()
    };

    c.bench_function("retrieval_256_walks", |b| {
        b.iter(|| black_box(retrieve(&s.visible, s.query, &retrieval, &mut rng)))
    });

    let toc = retrieve(&s.visible, s.query, &retrieval, &mut rng);
    c.bench_function("filter_score_and_topk_32", |b| {
        b.iter(|| black_box(s.filter.select_top_k(&toc, 32, &mut rng)))
    });

    let selected = s.filter.select_top_k(&toc, 32, &mut rng);
    c.bench_function("encode_and_reason_32_chains", |b| {
        b.iter(|| {
            let mut tape = cf_tensor::Tape::new();
            black_box(s.model.forward(&mut tape, &selected.chains, s.query))
        })
    });

    c.bench_function("predict_end_to_end", |b| {
        b.iter(|| black_box(s.model.predict(&s.visible, s.query, &mut rng)))
    });

    let vocab = ChainVocab::for_graph(&s.visible);
    c.bench_function("chain_tokenize", |b| {
        b.iter(|| {
            for ci in &selected.chains {
                black_box(ci.chain.tokens(&vocab));
            }
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_pipeline
);
criterion_main!(benches);
