//! Micro-benchmarks of the tensor/autodiff substrate: matmul kernels,
//! softmax/layer-norm, attention-sized forward passes and tape overhead.

use cf_rand::rngs::StdRng;
use cf_rand::{Rng, SeedableRng};
use cf_tensor::nn::TransformerEncoder;
use cf_tensor::{ParamStore, Tape, Tensor};
use chainsformer_bench::micro::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn rand_tensor(shape: &[usize], rng: &mut StdRng) -> Tensor {
    let n: usize = shape.iter().product();
    Tensor::new(
        shape.to_vec(),
        (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect(),
    )
}

fn bench_matmul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let mut group = c.benchmark_group("matmul");
    for &n in &[32usize, 64, 128] {
        let a = rand_tensor(&[n, n], &mut rng);
        let b = rand_tensor(&[n, n], &mut rng);
        group.bench_function(format!("{n}x{n}"), |bch| {
            bch.iter(|| black_box(a.matmul(&b)));
        });
    }
    group.finish();
}

fn bench_rowwise_ops(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let x = rand_tensor(&[256, 64], &mut rng);
    c.bench_function("softmax_256x64", |b| {
        b.iter_batched(
            || x.clone(),
            |xv| {
                let mut t = Tape::new();
                let v = t.leaf(xv);
                black_box(t.softmax_last(v))
            },
            BatchSize::SmallInput,
        )
    });
    c.bench_function("layernorm_256x64", |b| {
        b.iter_batched(
            || x.clone(),
            |xv| {
                let mut t = Tape::new();
                let v = t.leaf(xv);
                black_box(t.layer_norm_last(v, 1e-5))
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_tape_overhead(c: &mut Criterion) {
    // Raw kernel vs recorded op + backward: the cost of autodiff.
    let mut rng = StdRng::seed_from_u64(2);
    let a = rand_tensor(&[64, 64], &mut rng);
    let b = rand_tensor(&[64, 64], &mut rng);
    c.bench_function("matmul64_raw", |bch| bch.iter(|| black_box(a.matmul(&b))));
    c.bench_function("matmul64_tape_fwd_bwd", |bch| {
        bch.iter(|| {
            let mut t = Tape::new();
            let av = t.leaf(a.clone());
            let bv = t.leaf(b.clone());
            let p = t.matmul(av, bv);
            let l = t.mean_all(p);
            black_box(t.backward(l, 0))
        })
    });
}

fn bench_transformer_forward(c: &mut Criterion) {
    // The Chain Encoder's workload: [k=32 chains, T=6 tokens, d=48].
    let mut rng = StdRng::seed_from_u64(3);
    let mut ps = ParamStore::new();
    let enc = TransformerEncoder::new(&mut ps, "enc", 48, 4, 2, 96, &mut rng);
    let x = rand_tensor(&[32, 6, 48], &mut rng);
    c.bench_function("transformer_fwd_32x6x48", |b| {
        b.iter(|| {
            let mut t = Tape::new();
            let xv = t.leaf(x.clone());
            black_box(enc.forward(&mut t, &ps, xv, None))
        })
    });
    c.bench_function("transformer_fwd_bwd_32x6x48", |b| {
        b.iter(|| {
            let mut t = Tape::new();
            let xv = t.leaf(x.clone());
            let y = enc.forward(&mut t, &ps, xv, None);
            let l = t.mean_all(y);
            black_box(t.backward(l, ps.len()))
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_matmul, bench_rowwise_ops, bench_tape_overhead, bench_transformer_forward
);
criterion_main!(benches);
