//! Serving throughput: closed-loop clients and open-loop load against the
//! `cf-serve` engine.
//!
//! Closed-loop arms (DESIGN.md §9.5):
//! - `per_request` — the status-quo serving strategy: every request is
//!   answered individually (`max_batch = 1`) with a fresh chain retrieval
//!   (cache disabled). This is what calling `predict` per request costs.
//! - `micro_batch` — the serving subsystem: micro-batching
//!   (`max_batch = 8`, 2 ms batching window) + the LRU chain cache.
//!
//! Each closed-loop arm runs with 1, 2 and 4 client threads cycling a
//! fixed pool of hot queries. Clients matter because a lone closed-loop
//! client never leaves more than one job in the queue: micro-batching only
//! forms real batches once several clients overlap.
//!
//! Open-loop arms (DESIGN.md §14):
//! - `open_loop` at shard counts 1, 2 and 4 — a full TCP server driven by
//!   cf-load's fixed Poisson arrival schedule (zipfian entity popularity)
//!   at an offered rate above single-shard capacity. qps here is goodput
//!   (answered predictions per second of the measurement window), and the
//!   latency quantiles are measured from each request's *scheduled* send
//!   instant, so queueing delay is charged honestly.
//! - the same open-loop setup with `--quantize int8` (DESIGN.md §15) at
//!   shard counts 1 and 4, so the quantized serving path has f32 rows to
//!   sit next to in `BENCH_serve.json` (`quantize` column).
//!
//! Host caveat: on a single-core host (CI) extra shards cannot add
//! parallel speedup — the open-loop arms then measure the sharding
//! machinery's overhead and the admission behavior, not scaling. The
//! table title records the host's core count for exactly this reason.
//!
//! Set `CF_BENCH_JSON=1` to write `results/BENCH_serve.json`;
//! `CF_BENCH_SAMPLES` scales the request count (CI smoke uses 1).

use cf_chains::Query;
use cf_kg::synth::{yago15k_sim, SynthScale};
use cf_kg::{GraphView, Split};
use cf_rand::rngs::StdRng;
use cf_rand::SeedableRng;
use cf_serve::{Engine, EngineConfig, QuantMode};
use chainsformer::{ChainsFormer, ChainsFormerConfig};
use chainsformer_bench::report::{write_json_merged, Table};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

struct ArmResult {
    arm: &'static str,
    clients: usize,
    shards: usize,
    quantize: QuantMode,
    requests: usize,
    elapsed_ms: f64,
    qps: f64,
    mean_batch: u64,
    cache_hit_rate: f64,
    p50_us: u64,
    p95_us: u64,
    p99_us: u64,
}

/// Tiny model dims (fast forward) with the retrieval load dialed toward
/// the paper's operating point (`N_s ≫ K`; the paper uses `N_s = 2048`
/// walks per query). This is the regime the chain cache exists for:
/// retrieval is the expensive per-request step.
fn bench_config() -> ChainsFormerConfig {
    let mut cfg = ChainsFormerConfig::tiny();
    cfg.retrieval_walks = 512;
    cfg
}

fn build_model() -> (cf_kg::KnowledgeGraph, Vec<Query>, ChainsFormer) {
    let mut rng = StdRng::seed_from_u64(17);
    let g = yago15k_sim(SynthScale::small(), &mut rng);
    let split = Split::paper_811(&g, &mut rng);
    let visible = split.visible_graph(&g);
    let model = ChainsFormer::new(&visible, &split.train, bench_config(), &mut rng);
    let pool: Vec<Query> = split
        .test
        .iter()
        .take(32)
        .map(|t| Query {
            entity: t.entity,
            attr: t.attr,
        })
        .collect();
    (visible, pool, model)
}

fn arm_config(arm: &str) -> EngineConfig {
    match arm {
        "per_request" => EngineConfig {
            max_batch: 1,
            max_wait_us: 0,
            cache_cap: 0,
            workers: 1,
            ..EngineConfig::default()
        },
        "micro_batch" => EngineConfig {
            max_batch: 8,
            max_wait_us: 2000,
            cache_cap: 4096,
            workers: 1,
            ..EngineConfig::default()
        },
        other => unreachable!("unknown arm {other}"),
    }
}

/// Runs one closed-loop arm at one client count; returns steady-state
/// throughput. A fresh engine per run keeps arms independent; one warmup
/// pass over the query pool precedes the timed window so the cached arm is
/// measured at its operating point, not while filling the cache.
fn run_closed_loop(
    arm: &'static str,
    clients: usize,
    per_client: usize,
    graph: &cf_kg::KnowledgeGraph,
    pool: &[Query],
    model: &ChainsFormer,
) -> ArmResult {
    let engine = Arc::new(Engine::new(model.clone(), graph.clone(), arm_config(arm)));
    for &q in pool {
        engine.predict(q).expect("warmup prediction");
    }
    // Measure a clean steady-state window: warmup (cache fill, single-query
    // batches) must not pollute the reported hit rate / batch histogram.
    engine.metrics().reset();

    let start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let engine = Arc::clone(&engine);
            let pool: Vec<Query> = pool.to_vec();
            std::thread::spawn(move || {
                for i in 0..per_client {
                    let q = pool[(c * 7 + i) % pool.len()];
                    engine.predict(q).expect("prediction");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    let elapsed = start.elapsed();

    let m = engine.metrics();
    let requests = clients * per_client;
    ArmResult {
        arm,
        clients,
        shards: 1,
        quantize: QuantMode::F32,
        requests,
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
        qps: requests as f64 / elapsed.as_secs_f64(),
        mean_batch: m.batch_size.mean(),
        cache_hit_rate: m.cache_hit_rate(),
        p50_us: m.latency_us.quantile(0.50),
        p95_us: m.latency_us.quantile(0.95),
        p99_us: m.latency_us.quantile(0.99),
    }
}

/// Runs the open-loop arm at one shard count: a real TCP server, driven by
/// the same deterministic plan `cfkg loadtest` would send.
fn run_open_loop(
    shards: usize,
    quantize: QuantMode,
    conns: usize,
    requests: usize,
    warmup: usize,
    rate_hz: f64,
    graph: &cf_kg::KnowledgeGraph,
    model: &ChainsFormer,
) -> ArmResult {
    let engine = Arc::new(Engine::new(
        model.clone(),
        graph.clone(),
        EngineConfig {
            shards,
            quantize,
            ..EngineConfig::default()
        },
    ));
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let shutdown = Arc::new(AtomicBool::new(false));
    let server = {
        let engine = Arc::clone(&engine);
        let shutdown = Arc::clone(&shutdown);
        std::thread::spawn(move || cf_serve::run(engine, listener, shutdown).expect("server"))
    };

    let plan = cf_load::build_plan(
        GraphView::num_entities(graph),
        GraphView::num_attributes(graph),
        &cf_load::PlanConfig {
            arrivals: cf_load::ArrivalProcess::Poisson,
            rate_hz,
            requests,
            warmup,
            zipf_s: 1.0,
            reload_every: 0,
            mutate_every: 0,
            seed: 29,
        },
    );
    let events = cf_load::render_events(&plan, graph, None, None);
    engine.metrics().reset();
    let outcome = cf_load::run_tcp(&addr, &events, conns).expect("loadtest run");
    let m = engine.metrics();
    let r = &outcome.report;
    let result = ArmResult {
        arm: "open_loop",
        clients: conns,
        shards,
        quantize,
        requests: r.sent as usize,
        elapsed_ms: r.elapsed_s * 1e3,
        qps: r.qps,
        mean_batch: m.batch_size.mean(),
        cache_hit_rate: m.cache_hit_rate(),
        p50_us: r.latency.quantile(0.50),
        p95_us: r.latency.quantile(0.95),
        p99_us: r.latency.quantile(0.99),
    };
    shutdown.store(true, Ordering::SeqCst);
    server.join().expect("server thread");
    result
}

fn main() {
    let samples: usize = std::env::var("CF_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let per_client = 12 * samples;
    let (graph, pool, model) = build_model();

    let mut results = Vec::new();
    for &clients in &[1usize, 2, 4] {
        for arm in ["per_request", "micro_batch"] {
            let r = run_closed_loop(arm, clients, per_client, &graph, &pool, &model);
            print_arm(&r);
            results.push(r);
        }
    }
    // Open loop: offered rate above a single shard's measured capacity, so
    // the run probes capacity (goodput) rather than echoing the offered
    // rate back. 1.8× the closed-loop micro-batch ceiling keeps the server
    // saturated without drowning a 1-core CI host.
    let capacity_hint = results
        .iter()
        .filter(|r| r.arm == "micro_batch")
        .map(|r| r.qps)
        .fold(0.0f64, f64::max);
    let rate_hz = (capacity_hint * 1.8).max(500.0);
    let open_requests = 150 * samples;
    let open_warmup = 25 * samples;
    for &shards in &[1usize, 2, 4] {
        let r = run_open_loop(
            shards,
            QuantMode::F32,
            16,
            open_requests,
            open_warmup,
            rate_hz,
            &graph,
            &model,
        );
        print_arm(&r);
        results.push(r);
    }
    // Quantized serving arms next to the f32 rows: same offered load, same
    // plan, engine built with `quantize: int8` (DESIGN.md §15).
    for &shards in &[1usize, 4] {
        let r = run_open_loop(
            shards,
            QuantMode::Int8,
            16,
            open_requests,
            open_warmup,
            rate_hz,
            &graph,
            &model,
        );
        print_arm(&r);
        results.push(r);
    }

    // Headline: micro-batched vs per-request at 4 client threads.
    let qps = |arm: &str, clients: usize| {
        results
            .iter()
            .find(|r| r.arm == arm && r.clients == clients)
            .map(|r| r.qps)
            .expect("arm present")
    };
    let speedup = qps("micro_batch", 4) / qps("per_request", 4);
    println!("micro_batch vs per_request at 4 clients: {speedup:.2}x");

    if std::env::var("CF_BENCH_JSON").is_ok() {
        let cores = cf_tensor::pool::threads();
        let mut table = Table::new(
            &format!(
                "serving throughput: closed-loop engine arms + open-loop TCP load vs shard count ({cores}-thread host; open-loop qps is goodput at {rate_hz:.0}/s offered, latency from scheduled send)"
            ),
            &[
                "arm",
                "clients",
                "shards",
                "quantize",
                "requests",
                "elapsed_ms",
                "qps",
                "mean_batch",
                "cache_hit_rate",
                "p50_us",
                "p95_us",
                "p99_us",
            ],
        );
        for r in &results {
            table.row(vec![
                r.arm.to_string(),
                r.clients.to_string(),
                r.shards.to_string(),
                r.quantize.to_string(),
                r.requests.to_string(),
                format!("{:.1}", r.elapsed_ms),
                format!("{:.1}", r.qps),
                r.mean_batch.to_string(),
                format!("{:.3}", r.cache_hit_rate),
                r.p50_us.to_string(),
                r.p95_us.to_string(),
                r.p99_us.to_string(),
            ]);
        }
        table.row(vec![
            "speedup_micro_vs_per_request_4_clients".into(),
            "4".into(),
            "1".into(),
            "f32".into(),
            String::new(),
            String::new(),
            format!("{speedup:.2}"),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
        ]);
        let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
        let path =
            write_json_merged(&table, &dir, "BENCH_serve", 4).expect("write BENCH_serve.json");
        println!("wrote {}", path.display());
    }
}

fn print_arm(r: &ArmResult) {
    println!(
        "{:<12} clients={} shards={} quantize={} requests={:>5} {:>8.1} ms  {:>7.1} q/s  batch≈{} hit={:.2} p50={}us p95={}us p99={}us",
        r.arm,
        r.clients,
        r.shards,
        r.quantize,
        r.requests,
        r.elapsed_ms,
        r.qps,
        r.mean_batch,
        r.cache_hit_rate,
        r.p50_us,
        r.p95_us,
        r.p99_us
    );
}
