//! Serving throughput: closed-loop clients against the `cf-serve` engine.
//!
//! Two arms (DESIGN.md §9.5):
//! - `per_request` — the status-quo serving strategy: every request is
//!   answered individually (`max_batch = 1`) with a fresh chain retrieval
//!   (cache disabled). This is what calling `predict` per request costs.
//! - `micro_batch` — the serving subsystem: micro-batching
//!   (`max_batch = 8`, 2 ms batching window) + the LRU chain cache.
//!
//! Each arm runs with 1, 2 and 4 closed-loop client threads cycling a
//! fixed pool of hot queries. This host is single-core, so any speedup is
//! *not* thread parallelism — it is retrieval caching, tape-free batched
//! encoding, and per-request overhead amortization. Clients matter because
//! a lone closed-loop client never leaves more than one job in the queue:
//! micro-batching only forms real batches once several clients overlap.
//!
//! Set `CF_BENCH_JSON=1` to write `results/BENCH_serve.json`;
//! `CF_BENCH_SAMPLES` scales the request count (CI smoke uses 1).

use cf_chains::Query;
use cf_kg::synth::{yago15k_sim, SynthScale};
use cf_kg::Split;
use cf_rand::rngs::StdRng;
use cf_rand::SeedableRng;
use cf_serve::{Engine, EngineConfig};
use chainsformer::{ChainsFormer, ChainsFormerConfig};
use chainsformer_bench::report::{write_json_merged, Table};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

struct ArmResult {
    arm: &'static str,
    clients: usize,
    requests: usize,
    elapsed_ms: f64,
    qps: f64,
    mean_batch: u64,
    cache_hit_rate: f64,
    p50_us: u64,
    p95_us: u64,
}

/// Tiny model dims (fast forward) with the retrieval load dialed toward
/// the paper's operating point (`N_s ≫ K`; the paper uses `N_s = 2048`
/// walks per query). This is the regime the chain cache exists for:
/// retrieval is the expensive per-request step.
fn bench_config() -> ChainsFormerConfig {
    let mut cfg = ChainsFormerConfig::tiny();
    cfg.retrieval_walks = 512;
    cfg
}

fn build_model() -> (cf_kg::KnowledgeGraph, Vec<Query>, ChainsFormer) {
    let mut rng = StdRng::seed_from_u64(17);
    let g = yago15k_sim(SynthScale::small(), &mut rng);
    let split = Split::paper_811(&g, &mut rng);
    let visible = split.visible_graph(&g);
    let model = ChainsFormer::new(&visible, &split.train, bench_config(), &mut rng);
    let pool: Vec<Query> = split
        .test
        .iter()
        .take(32)
        .map(|t| Query {
            entity: t.entity,
            attr: t.attr,
        })
        .collect();
    (visible, pool, model)
}

fn arm_config(arm: &str) -> EngineConfig {
    match arm {
        "per_request" => EngineConfig {
            max_batch: 1,
            max_wait_us: 0,
            cache_cap: 0,
            workers: 1,
            ..EngineConfig::default()
        },
        "micro_batch" => EngineConfig {
            max_batch: 8,
            max_wait_us: 2000,
            cache_cap: 4096,
            workers: 1,
            ..EngineConfig::default()
        },
        other => unreachable!("unknown arm {other}"),
    }
}

/// Runs one arm at one client count; returns steady-state throughput.
/// A fresh engine per run keeps arms independent; one warmup pass over the
/// query pool precedes the timed window so the cached arm is measured at
/// its operating point, not while filling the cache.
fn run_arm(
    arm: &'static str,
    clients: usize,
    per_client: usize,
    graph: &cf_kg::KnowledgeGraph,
    pool: &[Query],
    model: &ChainsFormer,
) -> ArmResult {
    // Engine::new takes ownership; rebuild the residents per run by clone.
    let engine = Arc::new(Engine::new(
        clone_model(model, graph),
        graph.clone(),
        arm_config(arm),
    ));
    for &q in pool {
        engine.predict(q).expect("warmup prediction");
    }
    // Measure a clean steady-state window: warmup (cache fill, single-query
    // batches) must not pollute the reported hit rate / batch histogram.
    engine.metrics().reset();

    let start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let engine = Arc::clone(&engine);
            let pool: Vec<Query> = pool.to_vec();
            std::thread::spawn(move || {
                for i in 0..per_client {
                    let q = pool[(c * 7 + i) % pool.len()];
                    engine.predict(q).expect("prediction");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    let elapsed = start.elapsed();

    let m = engine.metrics();
    let requests = clients * per_client;
    ArmResult {
        arm,
        clients,
        requests,
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
        qps: requests as f64 / elapsed.as_secs_f64(),
        mean_batch: m.batch_size.mean(),
        cache_hit_rate: m.cache_hit_rate(),
        p50_us: m.latency_us.quantile(0.50),
        p95_us: m.latency_us.quantile(0.95),
    }
}

/// The engine takes ownership of a model; rebuilding from the same seed
/// reproduces identical parameters (construction is deterministic), so
/// every run serves the same resident model.
fn clone_model(_reference: &ChainsFormer, _graph: &cf_kg::KnowledgeGraph) -> ChainsFormer {
    let mut rng = StdRng::seed_from_u64(17);
    let g = yago15k_sim(SynthScale::small(), &mut rng);
    let split = Split::paper_811(&g, &mut rng);
    let visible = split.visible_graph(&g);
    ChainsFormer::new(&visible, &split.train, bench_config(), &mut rng)
}

fn main() {
    let samples: usize = std::env::var("CF_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let per_client = 12 * samples;
    let (graph, pool, model) = build_model();

    let mut results = Vec::new();
    for &clients in &[1usize, 2, 4] {
        for arm in ["per_request", "micro_batch"] {
            let r = run_arm(arm, clients, per_client, &graph, &pool, &model);
            println!(
                "{:<12} clients={} requests={:>4} {:>8.1} ms  {:>7.1} q/s  batch≈{} hit={:.2} p50={}us p95={}us",
                r.arm,
                r.clients,
                r.requests,
                r.elapsed_ms,
                r.qps,
                r.mean_batch,
                r.cache_hit_rate,
                r.p50_us,
                r.p95_us
            );
            results.push(r);
        }
    }

    // Headline: micro-batched vs per-request at 4 client threads.
    let qps = |arm: &str, clients: usize| {
        results
            .iter()
            .find(|r| r.arm == arm && r.clients == clients)
            .map(|r| r.qps)
            .expect("arm present")
    };
    let speedup = qps("micro_batch", 4) / qps("per_request", 4);
    println!("micro_batch vs per_request at 4 clients: {speedup:.2}x");

    if std::env::var("CF_BENCH_JSON").is_ok() {
        let mut table = Table::new(
            "serving throughput: per-request vs micro-batched engine (closed-loop clients)",
            &[
                "arm",
                "clients",
                "requests",
                "elapsed_ms",
                "qps",
                "mean_batch",
                "cache_hit_rate",
                "p50_us",
                "p95_us",
            ],
        );
        for r in &results {
            table.row(vec![
                r.arm.to_string(),
                r.clients.to_string(),
                r.requests.to_string(),
                format!("{:.1}", r.elapsed_ms),
                format!("{:.1}", r.qps),
                r.mean_batch.to_string(),
                format!("{:.3}", r.cache_hit_rate),
                r.p50_us.to_string(),
                r.p95_us.to_string(),
            ]);
        }
        table.row(vec![
            "speedup_micro_vs_per_request_4_clients".into(),
            "4".into(),
            String::new(),
            String::new(),
            format!("{speedup:.2}"),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
        ]);
        let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
        let path =
            write_json_merged(&table, &dir, "BENCH_serve", 2).expect("write BENCH_serve.json");
        println!("wrote {}", path.display());
    }
}
