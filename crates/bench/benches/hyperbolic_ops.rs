//! Micro-benchmarks of the Poincaré-ball substrate: Möbius addition,
//! distances, chain composition and Riemannian SGD steps — the Hyperbolic
//! Filter's inner loop.

use cf_hyperbolic::{distance_grad_x, rsgd_step, PoincareBall};
use cf_rand::rngs::StdRng;
use cf_rand::{Rng, SeedableRng};
use chainsformer_bench::micro::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn rand_point(dim: usize, rng: &mut StdRng) -> Vec<f64> {
    let v: Vec<f64> = (0..dim).map(|_| rng.gen_range(-0.3..0.3)).collect();
    v
}

fn bench_mobius(c: &mut Criterion) {
    let ball = PoincareBall::default();
    let mut rng = StdRng::seed_from_u64(0);
    let mut group = c.benchmark_group("mobius_add");
    for &d in &[16usize, 64, 256] {
        let x = rand_point(d, &mut rng);
        let y = rand_point(d, &mut rng);
        group.bench_function(format!("d{d}"), |b| {
            b.iter(|| black_box(ball.mobius_add(&x, &y)));
        });
    }
    group.finish();
}

fn bench_distance(c: &mut Criterion) {
    let ball = PoincareBall::default();
    let mut rng = StdRng::seed_from_u64(1);
    let x = rand_point(64, &mut rng);
    let y = rand_point(64, &mut rng);
    c.bench_function("distance_artanh_d64", |b| {
        b.iter(|| black_box(ball.distance(&x, &y)))
    });
    c.bench_function("distance_arcosh_d64", |b| {
        b.iter(|| black_box(ball.distance_arcosh(&x, &y)))
    });
    c.bench_function("distance_grad_d64", |b| {
        b.iter(|| black_box(distance_grad_x(&x, &y)))
    });
}

fn bench_chain_composition(c: &mut Criterion) {
    // Eq. 7 over a 3-hop chain — the filter scores thousands of these.
    let ball = PoincareBall::default();
    let mut rng = StdRng::seed_from_u64(2);
    let points: Vec<Vec<f64>> = (0..3).map(|_| rand_point(16, &mut rng)).collect();
    let refs: Vec<&[f64]> = points.iter().map(Vec::as_slice).collect();
    c.bench_function("mobius_chain_3hop_d16", |b| {
        b.iter(|| black_box(ball.mobius_chain(&refs, 16)))
    });
}

fn bench_rsgd(c: &mut Criterion) {
    let ball = PoincareBall::default();
    let mut rng = StdRng::seed_from_u64(3);
    let grad = rand_point(32, &mut rng);
    c.bench_function("rsgd_step_d32", |b| {
        b.iter_batched(
            || rand_point(32, &mut rng),
            |mut x| {
                rsgd_step(&ball, &mut x, &grad, 0.05);
                black_box(x)
            },
            chainsformer_bench::micro::BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_mobius, bench_distance, bench_chain_composition, bench_rsgd
);
criterion_main!(benches);
