//! Dense-kernel micro-benchmarks at the paper's model shapes: GEMM variants,
//! multi-head attention, and one full train step of the Chain-Encoder-sized
//! Transformer. This is the perf gate for the training hot path.
//!
//! Unlike the `criterion_group!`-style benches, this binary drives the
//! harness by hand so it can persist its numbers: set `CF_BENCH_JSON=1` to
//! write `results/BENCH_tensor.json` (the repo's kernel perf trajectory).
//!
//! The binary runs under [`CountingAlloc`], so next to the timings it
//! records `allocs_per_step`/`frees_per_step` — steady-state allocator calls
//! per iteration, measured after a warm-up. The pooled substrate (PR 4) must
//! hold these at 0 for every arm that runs with the pool enabled.

use cf_rand::rngs::StdRng;
use cf_rand::{Rng, SeedableRng};
use cf_tensor::nn::{Linear, TransformerEncoder};
use cf_tensor::{ParamStore, Tape, Tensor};
use chainsformer_bench::alloc::{measure, AllocCounts, CountingAlloc};
use chainsformer_bench::micro::Criterion;
use chainsformer_bench::report::{write_json_merged, Table};
use std::collections::HashMap;
use std::hint::black_box;
use std::path::Path;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Steady-state allocator calls per iteration of `f`: warm up, then average
/// over `iters` runs. Registered per bench arm and joined into the JSON.
fn steady_state_allocs(allocs: &mut HashMap<String, AllocCounts>, name: &str, mut f: impl FnMut()) {
    for _ in 0..3 {
        f(); // warm-up: pools fill, optimizer state materializes
    }
    let iters = 10u64;
    let (_, delta) = measure(|| {
        for _ in 0..iters {
            f();
        }
    });
    allocs.insert(
        name.to_string(),
        AllocCounts {
            allocs: delta.allocs / iters,
            frees: delta.frees / iters,
            bytes: delta.bytes / iters,
        },
    );
}

fn rand_tensor(shape: &[usize], rng: &mut StdRng) -> Tensor {
    let n: usize = shape.iter().product();
    Tensor::new(
        shape.to_vec(),
        (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect(),
    )
}

/// The pre-overhaul GEMM inner loop (naive `ikj` with the `a_ip == 0.0`
/// skip branch), kept here as the in-binary before/after baseline for the
/// tiled kernel.
fn matmul_into_naive(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let out_row = &mut out[i * n..(i + 1) * n];
        for p in 0..k {
            let a_ip = a[i * k + p];
            if a_ip == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for j in 0..n {
                out_row[j] += a_ip * b_row[j];
            }
        }
    }
}

/// `[m,k] x [k,n]` products: the naive pre-overhaul kernel, the
/// register-tiled/cache-blocked kernel, and the transpose-fused variants
/// (which the backward pass runs instead of materializing Aᵀ/Bᵀ). The two
/// larger shapes (256³ and 128×384×128) spill L1/L2 and exist to make the
/// cache blocking visible; the two small ones are the PR-2 gate shapes.
fn bench_gemm(c: &mut Criterion, allocs: &mut HashMap<String, AllocCounts>) {
    let mut rng = StdRng::seed_from_u64(0);
    for &(m, k, n) in &[
        (64usize, 64usize, 64usize),
        (128, 32, 128),
        (256, 256, 256),
        (128, 384, 128),
    ] {
        let a = rand_tensor(&[m, k], &mut rng);
        let b = rand_tensor(&[k, n], &mut rng);
        c.bench_function(format!("gemm_naive/{m}x{k}x{n}"), |bch| {
            let mut out = vec![0.0f32; m * n];
            bch.iter(|| {
                out.fill(0.0);
                matmul_into_naive(a.data(), b.data(), &mut out, m, k, n);
                black_box(out[0])
            });
        });
        c.bench_function(format!("gemm/{m}x{k}x{n}"), |bch| {
            bch.iter(|| black_box(a.matmul(&b)));
        });
        steady_state_allocs(allocs, &format!("gemm/{m}x{k}x{n}"), || {
            black_box(a.matmul(&b));
        });
        // Aᵀ·B with A stored [k,m]: the dB kernel of backward.
        let at = rand_tensor(&[k, m], &mut rng);
        c.bench_function(format!("gemm_at/{m}x{k}x{n}"), |bch| {
            let mut out = vec![0.0f32; m * n];
            bch.iter(|| {
                out.fill(0.0);
                cf_tensor::matmul_into_at(at.data(), b.data(), &mut out, m, k, n);
                black_box(out[0])
            });
        });
        // A·Bᵀ with B stored [n,k]: the dA kernel of backward and QKᵀ.
        let bt = rand_tensor(&[n, k], &mut rng);
        c.bench_function(format!("gemm_bt/{m}x{k}x{n}"), |bch| {
            let mut out = vec![0.0f32; m * n];
            bch.iter(|| {
                out.fill(0.0);
                cf_tensor::matmul_into_bt(a.data(), bt.data(), &mut out, m, k, n);
                black_box(out[0])
            });
        });
    }
}

/// Int8 GEMM arms next to their f32 counterparts (same shapes as
/// `bench_gemm`'s cache-spilling pair). Two flavors:
///
/// - `gemm_i8/…` — the raw kernel `matmul_q8_into` on pre-quantized
///   operands (pack + int8×int8→i32 tiles), the apples-to-apples rival of
///   `gemm/…` which also packs per call;
/// - `gemm_i8_dyn/…` — the serving path `QuantizedTensor::matmul_quantized`:
///   dynamic per-batch activation quantization, packed int8 GEMM, and f32
///   dequantize — what `--quantize int8` actually pays per linear layer.
fn bench_gemm_i8(c: &mut Criterion, allocs: &mut HashMap<String, AllocCounts>) {
    let mut rng = StdRng::seed_from_u64(0);
    for &(m, k, n) in &[
        (64usize, 64usize, 64usize),
        (256, 256, 256),
        (128, 384, 128),
    ] {
        let a = rand_tensor(&[m, k], &mut rng);
        let b = rand_tensor(&[k, n], &mut rng);
        let qa = {
            let recip = 1.0 / cf_tensor::quant::quantize_scale(a.data());
            let mut out = Vec::new();
            cf_tensor::quant::quantize_slice_into(a.data(), recip, &mut out);
            out
        };
        let qb = {
            let recip = 1.0 / cf_tensor::quant::quantize_scale(b.data());
            let mut out = Vec::new();
            cf_tensor::quant::quantize_slice_into(b.data(), recip, &mut out);
            out
        };
        c.bench_function(format!("gemm_i8/{m}x{k}x{n}"), |bch| {
            let mut out = vec![0i32; m * n];
            bch.iter(|| {
                cf_tensor::quant::matmul_q8_into(&qa, &qb, &mut out, m, k, n);
                black_box(out[0])
            });
        });
        let qt = cf_tensor::QuantizedTensor::from_tensor(&b).expect("eligible weight");
        c.bench_function(format!("gemm_i8_dyn/{m}x{k}x{n}"), |bch| {
            bch.iter(|| black_box(qt.matmul_quantized(&a)));
        });
        steady_state_allocs(allocs, &format!("gemm_i8_dyn/{m}x{k}x{n}"), || {
            black_box(qt.matmul_quantized(&a));
        });
    }
}

/// Forward and forward+backward of a matmul through the tape: measures the
/// backward kernels (dA = G·Bᵀ, dB = Aᵀ·G) on top of the forward.
fn bench_gemm_tape(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let a = rand_tensor(&[64, 64], &mut rng);
    let b = rand_tensor(&[64, 64], &mut rng);
    c.bench_function("gemm_tape/64_fwd_bwd", |bch| {
        bch.iter(|| {
            let mut t = Tape::new();
            let av = t.leaf(a.clone());
            let bv = t.leaf(b.clone());
            let p = t.matmul(av, bv);
            let l = t.mean_all(p);
            black_box(t.backward(l, 0))
        })
    });
}

/// Multi-head attention at the paper shape B=8, T=16, d=64, h=4.
fn bench_attention(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let mut ps = ParamStore::new();
    let mha = cf_tensor::nn::MultiHeadAttention::new(&mut ps, "a", 64, 4, &mut rng);
    let x = rand_tensor(&[8, 16, 64], &mut rng);
    c.bench_function("attention/fwd_8x16x64h4", |b| {
        b.iter(|| {
            let mut t = Tape::new();
            let xv = t.leaf(x.clone());
            black_box(mha.forward(&mut t, &ps, xv, None))
        })
    });
    c.bench_function("attention/fwd_bwd_8x16x64h4", |b| {
        b.iter(|| {
            let mut t = Tape::new();
            let xv = t.leaf(x.clone());
            let y = mha.forward(&mut t, &ps, xv, None);
            let l = t.mean_all(y);
            black_box(t.backward(l, ps.len()))
        })
    });
}

/// One full train step (forward, loss, backward, Adam update) of the
/// Chain-Encoder-sized Transformer: [B=32 chains, T=6 tokens, d=48], 2
/// layers, 4 heads — the training hot path end to end.
///
/// Three arms share the identical step closure and differ only in buffer
/// policy: `train_step` is the default substrate (pool on — the number the
/// acceptance gate tracks), `train_step_pooled` pins the pool on explicitly,
/// and `train_step_unpooled` disables it, reproducing the pre-PR-4 fresh
/// `Vec` per buffer behaviour as the before/after baseline.
fn bench_train_step(c: &mut Criterion, allocs: &mut HashMap<String, AllocCounts>) {
    let mut rng = StdRng::seed_from_u64(3);
    let mut ps = ParamStore::new();
    let enc = TransformerEncoder::new(&mut ps, "enc", 48, 4, 2, 96, &mut rng);
    let head = Linear::new(&mut ps, "head", 48, 1, &mut rng);
    let x = rand_tensor(&[32, 6, 48], &mut rng);
    let target = rand_tensor(&[32 * 6, 1], &mut rng);
    let mut opt = cf_tensor::optim::Adam::new(1e-3);
    let step = |ps: &mut ParamStore, opt: &mut cf_tensor::optim::Adam| {
        let mut t = Tape::new();
        let xv = t.leaf(x.clone());
        let h = enc.forward(&mut t, ps, xv, None);
        let flat = t.reshape(h, [32 * 6, 48]);
        let pred = head.forward(&mut t, ps, flat);
        let loss = t.mse_loss(pred, &target);
        let grads = t.backward(loss, ps.len());
        opt.step(ps, &grads);
        black_box(t.value(loss).item())
    };
    for (name, pooled) in [
        ("train_step/enc_32x6x48", true),
        ("train_step_pooled/enc_32x6x48", true),
        ("train_step_unpooled/enc_32x6x48", false),
    ] {
        let prev = cf_tensor::pool::set_enabled(pooled);
        c.bench_function(name, |b| b.iter(|| step(&mut ps, &mut opt)));
        steady_state_allocs(allocs, name, || {
            step(&mut ps, &mut opt);
        });
        cf_tensor::pool::set_enabled(prev);
    }
}

/// Thread-scaling arms: the 256³ GEMM and the full train step at pool
/// widths 1/2/4/8. The outputs are bitwise identical at every width (pinned
/// by the `thread_invariance` suites); these rows track what the width buys
/// in wall clock on the host the bench ran on. On a single-core host the
/// widths time-slice one core, so the >1-thread rows measure pool overhead,
/// not speedup — read the ratios together with the host's core count.
fn bench_mt(c: &mut Criterion, allocs: &mut HashMap<String, AllocCounts>) {
    let mut rng = StdRng::seed_from_u64(4);
    let (m, k, n) = (256usize, 256usize, 256usize);
    let a = rand_tensor(&[m, k], &mut rng);
    let b = rand_tensor(&[k, n], &mut rng);

    let mut ps = ParamStore::new();
    let enc = TransformerEncoder::new(&mut ps, "enc", 48, 4, 2, 96, &mut rng);
    let head = Linear::new(&mut ps, "head", 48, 1, &mut rng);
    let x = rand_tensor(&[32, 6, 48], &mut rng);
    let target = rand_tensor(&[32 * 6, 1], &mut rng);
    let mut opt = cf_tensor::optim::Adam::new(1e-3);
    let step = |ps: &mut ParamStore, opt: &mut cf_tensor::optim::Adam| {
        let mut t = Tape::new();
        let xv = t.leaf(x.clone());
        let h = enc.forward(&mut t, ps, xv, None);
        let flat = t.reshape(h, [32 * 6, 48]);
        let pred = head.forward(&mut t, ps, flat);
        let loss = t.mse_loss(pred, &target);
        let grads = t.backward(loss, ps.len());
        opt.step(ps, &grads);
        black_box(t.value(loss).item())
    };

    for threads in [1usize, 2, 4, 8] {
        cf_tensor::pool::set_threads(threads);
        let gemm_name = format!("gemm_mt/{m}x{k}x{n}/t{threads}");
        c.bench_function(gemm_name.clone(), |bch| {
            bch.iter(|| black_box(a.matmul(&b)));
        });
        steady_state_allocs(allocs, &gemm_name, || {
            black_box(a.matmul(&b));
        });
        let step_name = format!("train_step_mt/enc_32x6x48/t{threads}");
        c.bench_function(step_name.clone(), |bch| {
            bch.iter(|| step(&mut ps, &mut opt))
        });
        steady_state_allocs(allocs, &step_name, || {
            step(&mut ps, &mut opt);
        });
    }
    cf_tensor::pool::set_threads(1);
}

/// Pool width a bench arm ran at: the `/tN` suffix of the `_mt` arms, else 1
/// (`main` pins the default arms to a single thread).
fn threads_of(name: &str) -> String {
    name.rsplit_once("/t")
        .and_then(|(_, t)| t.parse::<usize>().ok())
        .unwrap_or(1)
        .to_string()
}

fn main() {
    // Pin the non-_mt arms to one thread so their trajectory stays
    // comparable across hosts regardless of CF_THREADS or core count.
    cf_tensor::pool::set_threads(1);
    let mut c = Criterion::default().sample_size(20);
    let mut allocs: HashMap<String, AllocCounts> = HashMap::new();
    bench_gemm(&mut c, &mut allocs);
    bench_gemm_i8(&mut c, &mut allocs);
    bench_gemm_tape(&mut c);
    bench_attention(&mut c);
    bench_train_step(&mut c, &mut allocs);
    bench_mt(&mut c, &mut allocs);

    for (name, a) in {
        let mut rows: Vec<_> = allocs.iter().collect();
        rows.sort_by(|x, y| x.0.cmp(y.0));
        rows
    } {
        println!(
            "{name}: {} allocs / {} frees per step at steady state",
            a.allocs, a.frees
        );
    }

    if std::env::var("CF_BENCH_JSON").is_ok() {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let mut table = Table::new(
            format!(
                "tensor kernel micro-benchmarks (ns per call; host cores: {cores} \
                 — _mt arms time-slice one core when threads exceed cores, so \
                 their ratios measure pool overhead there, not speedup)"
            ),
            &[
                "bench",
                "threads",
                "median_ns",
                "mean_ns",
                "min_ns",
                "samples",
                "allocs_per_step",
                "frees_per_step",
            ],
        );
        for s in c.results() {
            let (allocs_col, frees_col) = match allocs.get(&s.name) {
                Some(a) => (a.allocs.to_string(), a.frees.to_string()),
                None => ("-".to_string(), "-".to_string()),
            };
            table.row(vec![
                s.name.clone(),
                threads_of(&s.name),
                format!("{:.0}", s.median_ns),
                format!("{:.0}", s.mean_ns),
                format!("{:.0}", s.min_ns),
                s.samples.to_string(),
                allocs_col,
                frees_col,
            ]);
        }
        let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
        let path =
            write_json_merged(&table, &dir, "BENCH_tensor", 2).expect("write BENCH_tensor.json");
        println!("wrote {}", path.display());
    }
}
