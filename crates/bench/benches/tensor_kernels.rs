//! Dense-kernel micro-benchmarks at the paper's model shapes: GEMM variants,
//! multi-head attention, and one full train step of the Chain-Encoder-sized
//! Transformer. This is the perf gate for the training hot path.
//!
//! Unlike the `criterion_group!`-style benches, this binary drives the
//! harness by hand so it can persist its numbers: set `CF_BENCH_JSON=1` to
//! write `results/BENCH_tensor.json` (the repo's kernel perf trajectory).

use cf_rand::rngs::StdRng;
use cf_rand::{Rng, SeedableRng};
use cf_tensor::nn::{Linear, TransformerEncoder};
use cf_tensor::{ParamStore, Tape, Tensor};
use chainsformer_bench::micro::Criterion;
use chainsformer_bench::report::{write_json, Table};
use std::hint::black_box;
use std::path::Path;

fn rand_tensor(shape: &[usize], rng: &mut StdRng) -> Tensor {
    let n: usize = shape.iter().product();
    Tensor::new(
        shape.to_vec(),
        (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect(),
    )
}

/// The pre-overhaul GEMM inner loop (naive `ikj` with the `a_ip == 0.0`
/// skip branch), kept here as the in-binary before/after baseline for the
/// tiled kernel.
fn matmul_into_naive(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let out_row = &mut out[i * n..(i + 1) * n];
        for p in 0..k {
            let a_ip = a[i * k + p];
            if a_ip == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for j in 0..n {
                out_row[j] += a_ip * b_row[j];
            }
        }
    }
}

/// `[m,k] x [k,n]` products at the two shapes called out by the perf gate:
/// the naive pre-overhaul kernel, the tiled kernel, and the transpose-fused
/// variants (which the backward pass runs instead of materializing Aᵀ/Bᵀ).
fn bench_gemm(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    for &(m, k, n) in &[(64usize, 64usize, 64usize), (128, 32, 128)] {
        let a = rand_tensor(&[m, k], &mut rng);
        let b = rand_tensor(&[k, n], &mut rng);
        c.bench_function(format!("gemm_naive/{m}x{k}x{n}"), |bch| {
            let mut out = vec![0.0f32; m * n];
            bch.iter(|| {
                out.fill(0.0);
                matmul_into_naive(a.data(), b.data(), &mut out, m, k, n);
                black_box(out[0])
            });
        });
        c.bench_function(format!("gemm/{m}x{k}x{n}"), |bch| {
            bch.iter(|| black_box(a.matmul(&b)));
        });
        // Aᵀ·B with A stored [k,m]: the dB kernel of backward.
        let at = rand_tensor(&[k, m], &mut rng);
        c.bench_function(format!("gemm_at/{m}x{k}x{n}"), |bch| {
            let mut out = vec![0.0f32; m * n];
            bch.iter(|| {
                out.fill(0.0);
                cf_tensor::matmul_into_at(at.data(), b.data(), &mut out, m, k, n);
                black_box(out[0])
            });
        });
        // A·Bᵀ with B stored [n,k]: the dA kernel of backward and QKᵀ.
        let bt = rand_tensor(&[n, k], &mut rng);
        c.bench_function(format!("gemm_bt/{m}x{k}x{n}"), |bch| {
            let mut out = vec![0.0f32; m * n];
            bch.iter(|| {
                out.fill(0.0);
                cf_tensor::matmul_into_bt(a.data(), bt.data(), &mut out, m, k, n);
                black_box(out[0])
            });
        });
    }
}

/// Forward and forward+backward of a matmul through the tape: measures the
/// backward kernels (dA = G·Bᵀ, dB = Aᵀ·G) on top of the forward.
fn bench_gemm_tape(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let a = rand_tensor(&[64, 64], &mut rng);
    let b = rand_tensor(&[64, 64], &mut rng);
    c.bench_function("gemm_tape/64_fwd_bwd", |bch| {
        bch.iter(|| {
            let mut t = Tape::new();
            let av = t.leaf(a.clone());
            let bv = t.leaf(b.clone());
            let p = t.matmul(av, bv);
            let l = t.mean_all(p);
            black_box(t.backward(l, 0))
        })
    });
}

/// Multi-head attention at the paper shape B=8, T=16, d=64, h=4.
fn bench_attention(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let mut ps = ParamStore::new();
    let mha = cf_tensor::nn::MultiHeadAttention::new(&mut ps, "a", 64, 4, &mut rng);
    let x = rand_tensor(&[8, 16, 64], &mut rng);
    c.bench_function("attention/fwd_8x16x64h4", |b| {
        b.iter(|| {
            let mut t = Tape::new();
            let xv = t.leaf(x.clone());
            black_box(mha.forward(&mut t, &ps, xv, None))
        })
    });
    c.bench_function("attention/fwd_bwd_8x16x64h4", |b| {
        b.iter(|| {
            let mut t = Tape::new();
            let xv = t.leaf(x.clone());
            let y = mha.forward(&mut t, &ps, xv, None);
            let l = t.mean_all(y);
            black_box(t.backward(l, ps.len()))
        })
    });
}

/// One full train step (forward, loss, backward, Adam update) of the
/// Chain-Encoder-sized Transformer: [B=32 chains, T=6 tokens, d=48], 2
/// layers, 4 heads — the training hot path end to end.
fn bench_train_step(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let mut ps = ParamStore::new();
    let enc = TransformerEncoder::new(&mut ps, "enc", 48, 4, 2, 96, &mut rng);
    let head = Linear::new(&mut ps, "head", 48, 1, &mut rng);
    let x = rand_tensor(&[32, 6, 48], &mut rng);
    let target = rand_tensor(&[32 * 6, 1], &mut rng);
    let mut opt = cf_tensor::optim::Adam::new(1e-3);
    c.bench_function("train_step/enc_32x6x48", |b| {
        b.iter(|| {
            let mut t = Tape::new();
            let xv = t.leaf(x.clone());
            let h = enc.forward(&mut t, &ps, xv, None);
            let flat = t.reshape(h, [32 * 6, 48]);
            let pred = head.forward(&mut t, &ps, flat);
            let loss = t.mse_loss(pred, &target);
            let grads = t.backward(loss, ps.len());
            opt.step(&mut ps, &grads);
            black_box(t.value(loss).item())
        })
    });
}

fn main() {
    let mut c = Criterion::default().sample_size(20);
    bench_gemm(&mut c);
    bench_gemm_tape(&mut c);
    bench_attention(&mut c);
    bench_train_step(&mut c);

    if std::env::var("CF_BENCH_JSON").is_ok() {
        let mut table = Table::new(
            "tensor kernel micro-benchmarks (ns per call)",
            &["bench", "median_ns", "mean_ns", "min_ns", "samples"],
        );
        for s in c.results() {
            table.row(vec![
                s.name.clone(),
                format!("{:.0}", s.median_ns),
                format!("{:.0}", s.mean_ns),
                format!("{:.0}", s.min_ns),
                s.samples.to_string(),
            ]);
        }
        let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
        let path = write_json(&table, &dir, "BENCH_tensor").expect("write BENCH_tensor.json");
        println!("wrote {}", path.display());
    }
}
