//! Affine layers: `Linear` and `LayerNorm` (with learnable affine).

use crate::infer::Forward;
use crate::init::Init;
use crate::params::{ParamId, ParamStore};
use crate::tape::Var;
use cf_rand::Rng;

/// Fully connected layer `y = x W + b` with `W: [in, out]`.
///
/// Accepts inputs of any rank; the last dimension must equal `in_dim` and is
/// mapped to `out_dim` (higher-rank inputs are flattened to rows internally).
#[derive(Clone, Debug)]
pub struct Linear {
    /// Weight parameter `[in, out]`.
    pub w: ParamId,
    /// Bias parameter `[out]`, absent for bias-free layers.
    pub b: Option<ParamId>,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Xavier-initialised layer with a zero bias.
    pub fn new(
        ps: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let w = ps.add_init(
            format!("{name}.w"),
            [in_dim, out_dim],
            Init::XavierUniform,
            rng,
        );
        let b = ps.add(format!("{name}.b"), crate::tensor::Tensor::zeros([out_dim]));
        Linear {
            w,
            b: Some(b),
            in_dim,
            out_dim,
        }
    }

    /// A linear layer without a bias term.
    pub fn new_no_bias(
        ps: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let w = ps.add_init(
            format!("{name}.w"),
            [in_dim, out_dim],
            Init::XavierUniform,
            rng,
        );
        Linear {
            w,
            b: None,
            in_dim,
            out_dim,
        }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Applies `x W + b` over the last dimension. Generic over the evaluation
    /// context: a [`Tape`](crate::tape::Tape) for training or an
    /// [`InferCtx`](crate::infer::InferCtx) for the tape-free serving path.
    pub fn forward<F: Forward>(&self, t: &mut F, ps: &ParamStore, x: Var) -> Var {
        let shape = t.value(x).shape().clone();
        assert_eq!(
            shape.last_dim(),
            self.in_dim,
            "Linear: input last dim {} != {}",
            shape.last_dim(),
            self.in_dim
        );
        let rows = shape.leading();
        let flat = if shape.rank() == 2 {
            x
        } else {
            t.reshape(x, [rows, self.in_dim].into())
        };
        let w = t.param(ps, self.w);
        let mut y = t.matmul(flat, w);
        if let Some(b) = self.b {
            let bv = t.param(ps, b);
            y = t.add_bias(y, bv);
        }
        if shape.rank() != 2 {
            y = t.reshape(y, shape.with_last(self.out_dim));
        }
        y
    }
}

/// Layer normalization over the last dimension with learnable gain/bias.
#[derive(Clone, Debug)]
pub struct LayerNorm {
    /// Learnable per-feature gain (init 1).
    pub gain: ParamId,
    /// Learnable per-feature bias (init 0).
    pub bias: ParamId,
    /// Variance epsilon.
    pub eps: f32,
}

impl LayerNorm {
    /// Layer norm over `dim` features.
    pub fn new(ps: &mut ParamStore, name: &str, dim: usize) -> Self {
        let gain = ps.add(format!("{name}.gain"), crate::tensor::Tensor::ones([dim]));
        let bias = ps.add(format!("{name}.bias"), crate::tensor::Tensor::zeros([dim]));
        LayerNorm {
            gain,
            bias,
            eps: 1e-5,
        }
    }

    /// Normalizes the last dimension, then applies gain and bias.
    pub fn forward<F: Forward>(&self, t: &mut F, ps: &ParamStore, x: Var) -> Var {
        let normed = t.layer_norm_last(x, self.eps);
        let g = t.param(ps, self.gain);
        let scaled = t.mul_bcast_row(normed, g);
        let b = t.param(ps, self.bias);
        t.add_bias(scaled, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;
    use crate::tensor::Tensor;
    use cf_rand::rngs::StdRng;
    use cf_rand::SeedableRng;

    #[test]
    fn linear_shapes_2d_and_3d() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut ps = ParamStore::new();
        let lin = Linear::new(&mut ps, "l", 4, 3, &mut rng);
        let mut t = Tape::new();
        let x2 = t.leaf(Tensor::zeros([5, 4]));
        let y2 = lin.forward(&mut t, &ps, x2);
        assert_eq!(t.value(y2).shape().as_matrix(), (5, 3));
        let x3 = t.leaf(Tensor::zeros([2, 5, 4]));
        let y3 = lin.forward(&mut t, &ps, x3);
        assert_eq!(t.value(y3).shape().as_batch_matrix(), (2, 5, 3));
    }

    #[test]
    fn linear_trains_to_fit_line() {
        // y = 2x + 1 learned by a 1->1 linear layer.
        let mut rng = StdRng::seed_from_u64(1);
        let mut ps = ParamStore::new();
        let lin = Linear::new(&mut ps, "l", 1, 1, &mut rng);
        let mut opt = crate::optim::Adam::new(0.05);
        let xs = Tensor::new([8, 1], vec![-2.0, -1.5, -1.0, -0.5, 0.5, 1.0, 1.5, 2.0]);
        let ys = xs.map(|x| 2.0 * x + 1.0);
        for _ in 0..400 {
            let mut t = Tape::new();
            let x = t.leaf(xs.clone());
            let pred = lin.forward(&mut t, &ps, x);
            let loss = t.mse_loss(pred, &ys);
            let grads = t.backward(loss, ps.len());
            opt.step(&mut ps, &grads);
        }
        let w = ps.get(lin.w).item();
        let b = ps.get(lin.b.unwrap()).item();
        assert!((w - 2.0).abs() < 0.05, "w = {w}");
        assert!((b - 1.0).abs() < 0.05, "b = {b}");
    }

    #[test]
    fn layer_norm_affine_identity_at_init() {
        // gain=1, bias=0 at init: output equals plain layer norm.
        let mut ps = ParamStore::new();
        let ln = LayerNorm::new(&mut ps, "ln", 4);
        let mut t = Tape::new();
        let x = t.leaf(Tensor::matrix(&[&[1.0, 2.0, 3.0, 4.0]]));
        let y = ln.forward(&mut t, &ps, x);
        let plain = t.layer_norm_last(x, 1e-5);
        assert_eq!(t.value(y).data(), t.value(plain).data());
    }

    #[test]
    #[should_panic(expected = "input last dim")]
    fn linear_rejects_wrong_width() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut ps = ParamStore::new();
        let lin = Linear::new(&mut ps, "l", 4, 3, &mut rng);
        let mut t = Tape::new();
        let x = t.leaf(Tensor::zeros([5, 5]));
        lin.forward(&mut t, &ps, x);
    }
}
