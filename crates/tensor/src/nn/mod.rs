//! Neural-network layers built on the autodiff tape.
//!
//! Layers allocate their parameters in a shared [`crate::params::ParamStore`]
//! at construction time and are immutable afterwards; `forward` records onto
//! a caller-provided [`crate::tape::Tape`]. There is no `Module` trait — each
//! layer exposes the `forward` signature its shape discipline needs.

mod attention;
mod embedding;
mod linear;
mod lstm;
mod mlp;
mod transformer;

pub use attention::{KeyMask, MultiHeadAttention};
pub use embedding::Embedding;
pub use linear::{LayerNorm, Linear};
pub use lstm::Lstm;
pub use mlp::{Activation, Mlp};
pub use transformer::{TransformerEncoder, TransformerEncoderLayer};
