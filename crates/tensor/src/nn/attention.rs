//! Multi-head scaled dot-product self-attention over `[B, T, d]` sequences.

use super::linear::Linear;
use crate::infer::Forward;
use crate::params::ParamStore;
#[cfg(debug_assertions)]
use crate::tape::Tape;
use crate::tape::Var;
use crate::tensor::Tensor;
use cf_rand::Rng;

/// Additive value for masked attention logits. Large enough to zero the
/// softmax weight, small enough to stay far from f32 overflow.
const MASK_NEG: f32 = -1e9;

/// Which key positions each batch element may attend to.
///
/// `PrefixLens` is the padded-batch case — the first `len` keys of row `i`
/// are valid — and borrows a plain `&[usize]`, so callers on the hot path
/// can pass pooled storage without materialising per-row bool vectors.
/// `Rows` keeps full generality for arbitrary masks.
#[derive(Clone, Copy, Debug)]
pub enum KeyMask<'a> {
    /// One `Vec<bool>` per batch element; `true` marks a valid key.
    Rows(&'a [Vec<bool>]),
    /// Per batch element, the count of valid leading key positions.
    PrefixLens(&'a [usize]),
}

impl KeyMask<'_> {
    fn validate(&self, b: usize, seq: usize) {
        match self {
            KeyMask::Rows(rows) => {
                assert_eq!(rows.len(), b, "key_mask batch mismatch");
                for m in *rows {
                    assert_eq!(m.len(), seq, "key_mask length mismatch");
                }
            }
            KeyMask::PrefixLens(lens) => {
                assert_eq!(lens.len(), b, "key_mask batch mismatch");
                for &l in *lens {
                    assert!(l <= seq, "key_mask prefix {l} exceeds seq {seq}");
                }
            }
        }
    }

    fn is_valid(&self, bi: usize, ki: usize) -> bool {
        match self {
            KeyMask::Rows(rows) => rows[bi][ki],
            KeyMask::PrefixLens(lens) => ki < lens[bi],
        }
    }

    /// The `[B, seq, seq]` additive logit mask (0 where valid, `-1e9` where
    /// not), built in pooled storage.
    fn additive(&self, b: usize, seq: usize) -> Tensor {
        let mut data = crate::pool::take_f32_zeroed(b * seq * seq);
        for bi in 0..b {
            for qi in 0..seq {
                for ki in 0..seq {
                    if !self.is_valid(bi, ki) {
                        data[(bi * seq + qi) * seq + ki] = MASK_NEG;
                    }
                }
            }
        }
        Tensor::new([b, seq, seq], data)
    }
}

/// Multi-head self-attention (Vaswani et al.), as used by the paper's Chain
/// Encoder and Treeformer.
#[derive(Clone, Debug)]
pub struct MultiHeadAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    heads: usize,
    dim: usize,
}

impl MultiHeadAttention {
    /// Builds the four projections; `dim` must divide evenly by `heads`.
    pub fn new(
        ps: &mut ParamStore,
        name: &str,
        dim: usize,
        heads: usize,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(
            heads > 0 && dim % heads == 0,
            "dim {dim} not divisible by heads {heads}"
        );
        MultiHeadAttention {
            wq: Linear::new(ps, &format!("{name}.wq"), dim, dim, rng),
            wk: Linear::new(ps, &format!("{name}.wk"), dim, dim, rng),
            wv: Linear::new(ps, &format!("{name}.wv"), dim, dim, rng),
            wo: Linear::new(ps, &format!("{name}.wo"), dim, dim, rng),
            heads,
            dim,
        }
    }

    /// Model dimension `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Self-attention over `x: [B, T, d]`.
    ///
    /// `key_mask`, when given, marks the *valid* (attendable) key positions
    /// per batch element (see [`KeyMask`]). Padded positions receive `-1e9`
    /// logits for every query.
    pub fn forward<F: Forward>(
        &self,
        t: &mut F,
        ps: &ParamStore,
        x: Var,
        key_mask: Option<KeyMask<'_>>,
    ) -> Var {
        let (b, seq, d) = t.value(x).shape().as_batch_matrix();
        assert_eq!(d, self.dim, "attention dim mismatch: {d} vs {}", self.dim);
        if let Some(mask) = &key_mask {
            mask.validate(b, seq);
        }
        let q = self.wq.forward(t, ps, x);
        let k = self.wk.forward(t, ps, x);
        let v = self.wv.forward(t, ps, x);

        let add_mask = key_mask.map(|mask| mask.additive(b, seq));

        let dh = self.dim / self.heads;
        let scale = 1.0 / (dh as f32).sqrt();
        let merged = t.fused_attention(q, k, v, self.heads, scale, add_mask.as_ref());
        self.wo.forward(t, ps, merged)
    }

    /// Reference forward running the compositional per-head graph the fused
    /// kernel replaced (slice, QKᵀ, scale, mask, softmax, probs·V, concat).
    /// Kept for the bitwise fused-vs-reference equivalence test; debug builds
    /// only so release binaries carry a single attention path.
    #[cfg(debug_assertions)]
    pub fn forward_reference(
        &self,
        t: &mut Tape,
        ps: &ParamStore,
        x: Var,
        key_mask: Option<KeyMask<'_>>,
    ) -> Var {
        let (b, seq, d) = t.value(x).shape().as_batch_matrix();
        assert_eq!(d, self.dim, "attention dim mismatch: {d} vs {}", self.dim);
        let q = self.wq.forward(t, ps, x);
        let k = self.wk.forward(t, ps, x);
        let v = self.wv.forward(t, ps, x);
        let add_mask = key_mask.map(|mask| mask.additive(b, seq));
        let dh = self.dim / self.heads;
        let scale = 1.0 / (dh as f32).sqrt();
        let mut head_outputs = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let qh = t.slice_last(q, h * dh, dh);
            let kh = t.slice_last(k, h * dh, dh);
            let vh = t.slice_last(v, h * dh, dh);
            let scores = t.bmm_bt(qh, kh);
            let mut scores = t.mul_scalar(scores, scale);
            if let Some(m) = &add_mask {
                scores = t.add_const(scores, m);
            }
            let probs = t.softmax_last(scores);
            head_outputs.push(t.bmm(probs, vh));
        }
        let merged = t.concat_last(&head_outputs);
        self.wo.forward(t, ps, merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;
    use cf_rand::rngs::StdRng;
    use cf_rand::SeedableRng;

    fn attn(dim: usize, heads: usize, seed: u64) -> (MultiHeadAttention, ParamStore) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ps = ParamStore::new();
        let a = MultiHeadAttention::new(&mut ps, "a", dim, heads, &mut rng);
        (a, ps)
    }

    #[test]
    fn output_shape_matches_input() {
        let (a, ps) = attn(8, 2, 0);
        let mut t = Tape::new();
        let x = t.leaf(Tensor::new([3, 5, 8], vec![0.1; 120]));
        let y = a.forward(&mut t, &ps, x, None);
        assert_eq!(t.value(y).shape().as_batch_matrix(), (3, 5, 8));
    }

    #[test]
    fn masked_positions_do_not_influence_output() {
        // Changing the value at a masked key position must leave every
        // unmasked query's output untouched.
        let (a, ps) = attn(4, 1, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let base: Vec<f32> = (0..2 * 3 * 4).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mask = vec![vec![true, true, false], vec![true, true, true]];

        let mut t1 = Tape::new();
        let x1 = t1.leaf(Tensor::new([2, 3, 4], base.clone()));
        let y1 = a.forward(&mut t1, &ps, x1, Some(KeyMask::Rows(&mask)));

        let mut perturbed = base.clone();
        for j in 0..4 {
            perturbed[2 * 4 + j] += 10.0; // token 2 of batch 0 is masked
        }
        let mut t2 = Tape::new();
        let x2 = t2.leaf(Tensor::new([2, 3, 4], perturbed));
        let y2 = a.forward(&mut t2, &ps, x2, Some(KeyMask::Rows(&mask)));

        // Batch 0, tokens 0 and 1 must match exactly (token 2 itself queries
        // with a different input so it may differ).
        for tok in 0..2 {
            for j in 0..4 {
                let i = (0 * 3 + tok) * 4 + j;
                assert!(
                    (t1.value(y1).data()[i] - t2.value(y2).data()[i]).abs() < 1e-5,
                    "masked key leaked into output"
                );
            }
        }
        // Batch 1 untouched entirely.
        for i in 3 * 4..2 * 3 * 4 {
            let i1 = t1.value(y1).data()[3 * 4 + i - 12];
            let i2 = t2.value(y2).data()[3 * 4 + i - 12];
            assert!((i1 - i2).abs() < 1e-5);
        }
    }

    #[test]
    fn permutation_equivariance_without_mask() {
        // Self-attention with no positional signal is permutation-equivariant.
        let (a, ps) = attn(4, 2, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let rows: Vec<Vec<f32>> = (0..3)
            .map(|_| (0..4).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        let seq = |order: &[usize]| -> Tensor {
            let mut data = Vec::new();
            for &i in order {
                data.extend_from_slice(&rows[i]);
            }
            Tensor::new([1, 3, 4], data)
        };
        let mut t1 = Tape::new();
        let x1 = t1.leaf(seq(&[0, 1, 2]));
        let y1 = a.forward(&mut t1, &ps, x1, None);
        let mut t2 = Tape::new();
        let x2 = t2.leaf(seq(&[2, 0, 1]));
        let y2 = a.forward(&mut t2, &ps, x2, None);
        // token 0's output in t1 should equal token 1's output in t2.
        for j in 0..4 {
            let a0 = t1.value(y1).data()[j];
            let b1 = t2.value(y2).data()[4 + j];
            assert!((a0 - b1).abs() < 1e-5, "not permutation-equivariant");
        }
    }

    #[test]
    fn gradients_flow_to_all_projections() {
        let (a, ps) = attn(4, 2, 5);
        let mut t = Tape::new();
        let x = t.leaf(Tensor::new(
            [1, 3, 4],
            (0..12).map(|i| i as f32 * 0.1).collect(),
        ));
        let y = a.forward(&mut t, &ps, x, None);
        let l = t.mean_all(y);
        let g = t.backward(l, ps.len());
        for (id, name, _) in ps.iter() {
            assert!(g.param_grad(id).is_some(), "no grad for {name}");
        }
    }
}
