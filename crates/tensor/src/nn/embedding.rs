//! Token embedding table.

use crate::infer::Forward;
use crate::init::Init;
use crate::params::{ParamId, ParamStore};
use crate::tape::Var;
use cf_rand::Rng;

/// Learnable embedding table `[vocab, dim]` with index lookup.
#[derive(Clone, Debug)]
pub struct Embedding {
    /// The `[vocab, dim]` table parameter.
    pub table: ParamId,
    vocab: usize,
    dim: usize,
}

impl Embedding {
    /// A table of `vocab` rows of width `dim`, small-normal initialised.
    pub fn new(
        ps: &mut ParamStore,
        name: &str,
        vocab: usize,
        dim: usize,
        rng: &mut impl Rng,
    ) -> Self {
        // Small-norm init keeps early softmax/attention temperatures sane.
        let table = ps.add_init(name, [vocab, dim], Init::Normal(0.02), rng);
        Embedding { table, vocab, dim }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Embedding width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Looks up `ids`, producing `[ids.len(), dim]`. Repeated ids are fine —
    /// gradients scatter-add into the table.
    pub fn forward<F: Forward>(&self, t: &mut F, ps: &ParamStore, ids: &[usize]) -> Var {
        for &id in ids {
            assert!(
                id < self.vocab,
                "embedding id {id} out of vocab {}",
                self.vocab
            );
        }
        let table = t.param(ps, self.table);
        t.select_rows(table, ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;
    use crate::tensor::Tensor;
    use cf_rand::rngs::StdRng;
    use cf_rand::SeedableRng;

    #[test]
    fn lookup_returns_table_rows() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut ps = ParamStore::new();
        let emb = Embedding::new(&mut ps, "e", 5, 3, &mut rng);
        let mut t = Tape::new();
        let out = emb.forward(&mut t, &ps, &[2, 2, 4]);
        assert_eq!(t.value(out).shape().as_matrix(), (3, 3));
        assert_eq!(t.value(out).row(0), t.value(out).row(1));
        assert_eq!(t.value(out).row(0), ps.get(emb.table).row(2));
    }

    #[test]
    fn grads_scatter_into_used_rows_only() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut ps = ParamStore::new();
        let emb = Embedding::new(&mut ps, "e", 4, 2, &mut rng);
        let mut t = Tape::new();
        let out = emb.forward(&mut t, &ps, &[1, 1]);
        let loss = t.mse_loss(out, &Tensor::zeros([2, 2]));
        let grads = t.backward(loss, ps.len());
        let g = grads.param_grad(emb.table).unwrap();
        assert!(g.row(0).iter().all(|&x| x == 0.0));
        assert!(g.row(1).iter().any(|&x| x != 0.0));
        assert!(g.row(2).iter().all(|&x| x == 0.0));
    }

    #[test]
    #[should_panic(expected = "out of vocab")]
    fn rejects_out_of_vocab_ids() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut ps = ParamStore::new();
        let emb = Embedding::new(&mut ps, "e", 3, 2, &mut rng);
        let mut t = Tape::new();
        emb.forward(&mut t, &ps, &[3]);
    }
}
