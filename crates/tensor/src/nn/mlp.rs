//! Multi-layer perceptron with a configurable activation.

use super::linear::Linear;
use crate::infer::Forward;
use crate::params::ParamStore;
use crate::tape::Var;
use cf_rand::Rng;

/// Activation functions available to [`Mlp`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// Gaussian error linear unit (tanh approximation).
    Gelu,
    /// Hyperbolic tangent.
    Tanh,
    /// No nonlinearity (a deep linear network).
    Identity,
}

impl Activation {
    /// Applies the activation on the evaluation context.
    pub fn apply<F: Forward>(self, t: &mut F, x: Var) -> Var {
        match self {
            Activation::Relu => t.relu(x),
            Activation::Gelu => t.gelu(x),
            Activation::Tanh => t.tanh(x),
            Activation::Identity => x,
        }
    }
}

/// A stack of linear layers with the activation between them (not after the
/// last layer).
#[derive(Clone, Debug)]
pub struct Mlp {
    layers: Vec<Linear>,
    activation: Activation,
}

impl Mlp {
    /// `dims` lists every width including input and output, e.g.
    /// `[64, 128, 1]` builds `64→128→1` with one hidden activation.
    pub fn new(
        ps: &mut ParamStore,
        name: &str,
        dims: &[usize],
        activation: Activation,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(dims.len() >= 2, "Mlp needs at least input and output dims");
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(ps, &format!("{name}.{i}"), w[0], w[1], rng))
            .collect();
        Mlp { layers, activation }
    }

    /// Output width of the final layer.
    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim()
    }

    /// Input width of the first layer.
    pub fn in_dim(&self) -> usize {
        self.layers.first().expect("non-empty").in_dim()
    }

    /// Runs the stack; the activation sits between layers, not after the last.
    pub fn forward<F: Forward>(&self, t: &mut F, ps: &ParamStore, x: Var) -> Var {
        let mut h = x;
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(t, ps, h);
            if i != last {
                h = self.activation.apply(t, h);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Adam;
    use crate::tape::Tape;
    use crate::tensor::Tensor;
    use cf_rand::rngs::StdRng;
    use cf_rand::SeedableRng;

    #[test]
    fn mlp_learns_xor() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut ps = ParamStore::new();
        let mlp = Mlp::new(&mut ps, "xor", &[2, 8, 1], Activation::Tanh, &mut rng);
        let mut opt = Adam::new(0.05);
        let x = Tensor::matrix(&[&[0.0, 0.0], &[0.0, 1.0], &[1.0, 0.0], &[1.0, 1.0]]);
        let y = Tensor::new([4, 1], vec![0.0, 1.0, 1.0, 0.0]);
        let mut final_loss = f32::MAX;
        for _ in 0..800 {
            let mut t = Tape::new();
            let xv = t.leaf(x.clone());
            let pred = mlp.forward(&mut t, &ps, xv);
            let loss = t.mse_loss(pred, &y);
            final_loss = t.value(loss).item();
            let grads = t.backward(loss, ps.len());
            opt.step(&mut ps, &grads);
        }
        assert!(final_loss < 0.02, "xor loss stuck at {final_loss}");
    }

    #[test]
    fn identity_activation_makes_network_linear() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut ps = ParamStore::new();
        let mlp = Mlp::new(&mut ps, "lin", &[2, 3, 2], Activation::Identity, &mut rng);
        let mut t = Tape::new();
        let a = t.leaf(Tensor::matrix(&[&[1.0, 2.0]]));
        let b = t.leaf(Tensor::matrix(&[&[3.0, -1.0]]));
        let s = t.add(a, b);
        let f_sum = mlp.forward(&mut t, &ps, s);
        let fa = mlp.forward(&mut t, &ps, a);
        let fb = mlp.forward(&mut t, &ps, b);
        let fsum2 = t.add(fa, fb);
        // Affine, not linear: f(a+b) = f(a) + f(b) - f(0)
        let zero = t.leaf(Tensor::zeros([1, 2]));
        let f0 = mlp.forward(&mut t, &ps, zero);
        let rhs = t.sub(fsum2, f0);
        for (l, r) in t.value(f_sum).data().iter().zip(t.value(rhs).data()) {
            assert!((l - r).abs() < 1e-4, "affinity violated: {l} vs {r}");
        }
    }

    #[test]
    fn dims_recorded() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut ps = ParamStore::new();
        let mlp = Mlp::new(&mut ps, "m", &[5, 7, 3], Activation::Relu, &mut rng);
        assert_eq!(mlp.in_dim(), 5);
        assert_eq!(mlp.out_dim(), 3);
    }
}
