//! Encoder-only Transformer (post-LN, as in Vaswani et al. and the paper's
//! Chain Encoder / Treeformer).

use super::attention::{KeyMask, MultiHeadAttention};
use super::linear::{LayerNorm, Linear};
use crate::infer::Forward;
use crate::params::ParamStore;
use crate::tape::Var;
use cf_rand::Rng;

/// One encoder block: self-attention and feed-forward sublayers, each wrapped
/// in residual + layer norm (post-LN).
#[derive(Clone, Debug)]
pub struct TransformerEncoderLayer {
    attn: MultiHeadAttention,
    ff1: Linear,
    ff2: Linear,
    ln1: LayerNorm,
    ln2: LayerNorm,
}

impl TransformerEncoderLayer {
    /// One block of `dim` width with `heads` attention heads and a `ff_dim` feed-forward.
    pub fn new(
        ps: &mut ParamStore,
        name: &str,
        dim: usize,
        heads: usize,
        ff_dim: usize,
        rng: &mut impl Rng,
    ) -> Self {
        TransformerEncoderLayer {
            attn: MultiHeadAttention::new(ps, &format!("{name}.attn"), dim, heads, rng),
            ff1: Linear::new(ps, &format!("{name}.ff1"), dim, ff_dim, rng),
            ff2: Linear::new(ps, &format!("{name}.ff2"), ff_dim, dim, rng),
            ln1: LayerNorm::new(ps, &format!("{name}.ln1"), dim),
            ln2: LayerNorm::new(ps, &format!("{name}.ln2"), dim),
        }
    }

    /// Applies attention then feed-forward, each with residual + layer norm.
    pub fn forward<F: Forward>(
        &self,
        t: &mut F,
        ps: &ParamStore,
        x: Var,
        key_mask: Option<KeyMask<'_>>,
    ) -> Var {
        let attended = self.attn.forward(t, ps, x, key_mask);
        let res1 = t.add(x, attended);
        let h = self.ln1.forward(t, ps, res1);
        let ff = self.ff1.forward(t, ps, h);
        let ff = t.gelu(ff);
        let ff = self.ff2.forward(t, ps, ff);
        let res2 = t.add(h, ff);
        self.ln2.forward(t, ps, res2)
    }
}

/// A stack of [`TransformerEncoderLayer`]s sharing one padding mask.
#[derive(Clone, Debug)]
pub struct TransformerEncoder {
    layers: Vec<TransformerEncoderLayer>,
    dim: usize,
}

impl TransformerEncoder {
    /// `ff_dim` follows the usual `4 × dim` convention unless specified.
    pub fn new(
        ps: &mut ParamStore,
        name: &str,
        dim: usize,
        heads: usize,
        num_layers: usize,
        ff_dim: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let layers = (0..num_layers)
            .map(|i| {
                TransformerEncoderLayer::new(
                    ps,
                    &format!("{name}.layer{i}"),
                    dim,
                    heads,
                    ff_dim,
                    rng,
                )
            })
            .collect();
        TransformerEncoder { layers, dim }
    }

    /// Model dimension `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stacked encoder blocks.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Encodes `x: [B, T, d]`, optionally masking padded key positions.
    pub fn forward<F: Forward>(
        &self,
        t: &mut F,
        ps: &ParamStore,
        x: Var,
        key_mask: Option<KeyMask<'_>>,
    ) -> Var {
        let mut h = x;
        for layer in &self.layers {
            h = layer.forward(t, ps, h, key_mask);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Adam;
    use crate::tape::Tape;
    use crate::tensor::Tensor;
    use cf_rand::rngs::StdRng;
    use cf_rand::SeedableRng;

    #[test]
    fn encoder_preserves_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut ps = ParamStore::new();
        let enc = TransformerEncoder::new(&mut ps, "enc", 8, 2, 2, 16, &mut rng);
        let mut t = Tape::new();
        let x = t.leaf(Tensor::new([2, 4, 8], vec![0.3; 64]));
        let y = enc.forward(&mut t, &ps, x, None);
        assert_eq!(t.value(y).shape().as_batch_matrix(), (2, 4, 8));
        assert!(t.value(y).all_finite());
    }

    #[test]
    fn encoder_learns_sequence_sum_task() {
        // Regression: predict the sum of the first feature across tokens,
        // read out from token 0. Requires attention to move information.
        let mut rng = StdRng::seed_from_u64(1);
        let mut ps = ParamStore::new();
        let dim = 8;
        let enc = TransformerEncoder::new(&mut ps, "enc", dim, 2, 1, 16, &mut rng);
        let head = Linear::new(&mut ps, "head", dim, 1, &mut rng);
        let mut opt = Adam::new(3e-3);
        let batch = 8;
        let seq = 3;
        let mut last_loss = f32::MAX;
        for _ in 0..300 {
            let mut data = vec![0.0f32; batch * seq * dim];
            let mut targets = vec![0.0f32; batch];
            for b in 0..batch {
                let mut sum = 0.0;
                for s in 0..seq {
                    let v: f32 = rng.gen_range(-1.0..1.0);
                    data[(b * seq + s) * dim] = v;
                    sum += v;
                }
                targets[b] = sum;
            }
            let mut t = Tape::new();
            let x = t.leaf(Tensor::new([batch, seq, dim], data));
            let h = enc.forward(&mut t, &ps, x, None);
            // gather token 0 of each sequence: rows b*seq in the [B*T, d] view
            let idx: Vec<usize> = (0..batch).map(|b| b * seq).collect();
            let flat = t.reshape(h, [batch * seq, dim]);
            let tok0 = t.select_rows(flat, &idx);
            let pred = head.forward(&mut t, &ps, tok0);
            let pred = t.reshape(pred, [batch]);
            let loss = t.mse_loss(pred, &Tensor::new([batch], targets));
            last_loss = t.value(loss).item();
            let grads = t.backward(loss, ps.len());
            opt.step(&mut ps, &grads);
        }
        assert!(last_loss < 0.1, "sequence-sum loss stuck at {last_loss}");
    }

    #[test]
    fn deep_stack_stays_finite() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut ps = ParamStore::new();
        let enc = TransformerEncoder::new(&mut ps, "enc", 16, 4, 4, 32, &mut rng);
        let mut t = Tape::new();
        let x = t.leaf(Tensor::new(
            [1, 6, 16],
            (0..96).map(|i| (i as f32).sin()).collect(),
        ));
        let y = enc.forward(&mut t, &ps, x, None);
        let l = t.mean_all(y);
        let g = t.backward(l, ps.len());
        assert!(t.value(y).all_finite());
        assert!(g.all_finite());
    }
}
