//! Single-layer LSTM, used by the paper's "w LSTM as Chain Encoder" ablation.

use super::linear::Linear;
use crate::infer::Forward;
use crate::params::ParamStore;
use crate::tape::Var;
use crate::tensor::Tensor;
use cf_rand::Rng;

/// A unidirectional LSTM that consumes `[B, T, d_in]` and exposes the hidden
/// state at each sequence's final *valid* position.
#[derive(Clone, Debug)]
pub struct Lstm {
    /// Joint gate projection of `[x_t ‖ h_{t-1}]` to `[i f o g]`.
    gates: Linear,
    in_dim: usize,
    hidden: usize,
}

impl Lstm {
    /// An LSTM mapping `in_dim` inputs to a `hidden`-wide state.
    pub fn new(
        ps: &mut ParamStore,
        name: &str,
        in_dim: usize,
        hidden: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let gates = Linear::new(
            ps,
            &format!("{name}.gates"),
            in_dim + hidden,
            4 * hidden,
            rng,
        );
        Lstm {
            gates,
            in_dim,
            hidden,
        }
    }

    /// Hidden-state width.
    pub fn hidden_dim(&self) -> usize {
        self.hidden
    }

    /// Runs the recurrence and returns `[B, hidden]`: the hidden state at
    /// position `lens[b] - 1` for each sequence. `lens[b]` must be in
    /// `1..=T`.
    pub fn forward_last<F: Forward>(
        &self,
        t: &mut F,
        ps: &ParamStore,
        x: Var,
        lens: &[usize],
    ) -> Var {
        let (b, seq, d) = t.value(x).shape().as_batch_matrix();
        assert_eq!(d, self.in_dim, "lstm input dim {d} != {}", self.in_dim);
        assert_eq!(lens.len(), b, "lens length mismatch");
        for &l in lens {
            assert!(
                (1..=seq).contains(&l),
                "sequence length {l} outside 1..={seq}"
            );
        }
        let flat = t.reshape(x, [b * seq, d].into());
        let mut h = t.constant(Tensor::zeros([b, self.hidden]));
        let mut c = t.constant(Tensor::zeros([b, self.hidden]));
        let mut per_step_h: Vec<Var> = Vec::with_capacity(seq);
        for step in 0..seq {
            let idx: Vec<usize> = (0..b).map(|bi| bi * seq + step).collect();
            let xt = t.select_rows(flat, &idx);
            let joint = t.concat_last(&[xt, h]);
            let gates = self.gates.forward(t, ps, joint);
            let i = t.slice_last(gates, 0, self.hidden);
            let f = t.slice_last(gates, self.hidden, self.hidden);
            let o = t.slice_last(gates, 2 * self.hidden, self.hidden);
            let g = t.slice_last(gates, 3 * self.hidden, self.hidden);
            let i = t.sigmoid(i);
            let f = t.sigmoid(f);
            let o = t.sigmoid(o);
            let g = t.tanh(g);
            let fc = t.mul(f, c);
            let ig = t.mul(i, g);
            c = t.add(fc, ig);
            let ct = t.tanh(c);
            h = t.mul(o, ct);
            per_step_h.push(h);
        }
        // Gather each sequence's final hidden state.
        let rows: Vec<Var> = (0..b)
            .map(|bi| t.row(per_step_h[lens[bi] - 1], bi))
            .collect();
        t.stack_rows(&rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Adam;
    use crate::tape::Tape;
    use cf_rand::rngs::StdRng;
    use cf_rand::SeedableRng;

    #[test]
    fn output_shape_and_finiteness() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut ps = ParamStore::new();
        let lstm = Lstm::new(&mut ps, "l", 4, 6, &mut rng);
        let mut t = Tape::new();
        let x = t.leaf(Tensor::new([3, 5, 4], vec![0.2; 60]));
        let y = lstm.forward_last(&mut t, &ps, x, &[5, 3, 1]);
        assert_eq!(t.value(y).shape().as_matrix(), (3, 6));
        assert!(t.value(y).all_finite());
    }

    #[test]
    fn final_state_respects_lengths() {
        // With lens[b]=1 the output must equal the state after one step,
        // independent of later (padding) tokens.
        let mut rng = StdRng::seed_from_u64(1);
        let mut ps = ParamStore::new();
        let lstm = Lstm::new(&mut ps, "l", 2, 3, &mut rng);
        let xa = Tensor::new([1, 3, 2], vec![0.5, -0.5, 9.0, 9.0, -9.0, 9.0]);
        let xb = Tensor::new([1, 3, 2], vec![0.5, -0.5, 0.0, 0.0, 0.0, 0.0]);
        let mut ta = Tape::new();
        let a = ta.leaf(xa);
        let ya = lstm.forward_last(&mut ta, &ps, a, &[1]);
        let mut tb = Tape::new();
        let b = tb.leaf(xb);
        let yb = lstm.forward_last(&mut tb, &ps, b, &[1]);
        assert_eq!(ta.value(ya).data(), tb.value(yb).data());
    }

    #[test]
    fn learns_last_token_identity() {
        // Predict the last token's first feature: trivially solvable if the
        // recurrence carries information.
        let mut rng = StdRng::seed_from_u64(2);
        let mut ps = ParamStore::new();
        let lstm = Lstm::new(&mut ps, "l", 2, 8, &mut rng);
        let head = Linear::new(&mut ps, "head", 8, 1, &mut rng);
        let mut opt = Adam::new(0.01);
        let mut last_loss = f32::MAX;
        for _ in 0..300 {
            let b = 8;
            let seq = 4;
            let mut data = vec![0.0f32; b * seq * 2];
            let mut targets = vec![0.0f32; b];
            for bi in 0..b {
                for s in 0..seq {
                    let v: f32 = rng.gen_range(-1.0..1.0);
                    data[(bi * seq + s) * 2] = v;
                    if s == seq - 1 {
                        targets[bi] = v;
                    }
                }
            }
            let mut t = Tape::new();
            let x = t.leaf(Tensor::new([b, seq, 2], data));
            let hidden = lstm.forward_last(&mut t, &ps, x, &vec![seq; b]);
            let pred = head.forward(&mut t, &ps, hidden);
            let pred = t.reshape(pred, [b]);
            let loss = t.mse_loss(pred, &Tensor::new([b], targets));
            last_loss = t.value(loss).item();
            let grads = t.backward(loss, ps.len());
            opt.step(&mut ps, &grads);
        }
        assert!(last_loss < 0.05, "lstm loss stuck at {last_loss}");
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn rejects_zero_length() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut ps = ParamStore::new();
        let lstm = Lstm::new(&mut ps, "l", 2, 3, &mut rng);
        let mut t = Tape::new();
        let x = t.leaf(Tensor::zeros([1, 3, 2]));
        lstm.forward_last(&mut t, &ps, x, &[0]);
    }
}
