//! Finite-difference gradient checking for tests.

use crate::tape::{Tape, Var};
use crate::tensor::Tensor;

/// Compares the analytic gradient of `f` (a scalar-valued function of one
/// input) against central finite differences.
///
/// Returns the worst relative error encountered. `f` is invoked with a fresh
/// tape each time, so it must be deterministic.
pub fn check_grad(input: &Tensor, eps: f32, f: impl Fn(&mut Tape, Var) -> Var) -> f32 {
    check_grad_with_params(input, eps, 0, f)
}

/// [`check_grad`] for functions that also route through [`ParamStore`]
/// parameters (e.g. `nn` layers): `n_params` sizes the parameter-gradient
/// store so backward can accumulate into it.
///
/// [`ParamStore`]: crate::ParamStore
pub fn check_grad_with_params(
    input: &Tensor,
    eps: f32,
    n_params: usize,
    f: impl Fn(&mut Tape, Var) -> Var,
) -> f32 {
    // Analytic gradient.
    let mut tape = Tape::new();
    let x = tape.leaf(input.clone());
    let y = f(&mut tape, x);
    assert_eq!(tape.value(y).numel(), 1, "check_grad needs a scalar output");
    let grads = tape.backward(y, n_params);
    let analytic = grads
        .grad(x)
        .cloned()
        .unwrap_or_else(|| Tensor::zeros(input.shape().clone()));

    // Numeric gradient by central differences.
    let mut worst = 0.0f32;
    for i in 0..input.numel() {
        let mut plus = input.clone();
        plus.data_mut()[i] += eps;
        let mut minus = input.clone();
        minus.data_mut()[i] -= eps;
        let fp = eval_scalar(&plus, &f);
        let fm = eval_scalar(&minus, &f);
        let numeric = (fp - fm) / (2.0 * eps);
        let a = analytic.data()[i];
        let denom = a.abs().max(numeric.abs()).max(1.0);
        let rel = (a - numeric).abs() / denom;
        worst = worst.max(rel);
    }
    worst
}

/// Asserts the worst relative gradient error stays under `tol`.
pub fn assert_grad_close(input: &Tensor, eps: f32, tol: f32, f: impl Fn(&mut Tape, Var) -> Var) {
    let worst = check_grad(input, eps, f);
    assert!(
        worst < tol,
        "gradient check failed: worst relative error {worst} >= {tol}"
    );
}

/// [`assert_grad_close`] for functions that route through `n_params`
/// [`ParamStore`](crate::ParamStore) parameters.
pub fn assert_grad_close_with_params(
    input: &Tensor,
    eps: f32,
    tol: f32,
    n_params: usize,
    f: impl Fn(&mut Tape, Var) -> Var,
) {
    let worst = check_grad_with_params(input, eps, n_params, f);
    assert!(
        worst < tol,
        "gradient check failed: worst relative error {worst} >= {tol}"
    );
}

fn eval_scalar(input: &Tensor, f: &impl Fn(&mut Tape, Var) -> Var) -> f32 {
    let mut tape = Tape::new();
    let x = tape.leaf(input.clone());
    let y = f(&mut tape, x);
    tape.value(y).item()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_passes() {
        let x = Tensor::vector(&[0.4, -1.2, 2.0]);
        assert_grad_close(&x, 1e-3, 1e-2, |t, v| {
            let sq = t.mul(v, v);
            t.sum_all(sq)
        });
    }

    #[test]
    fn detects_wrong_gradient() {
        // exp has gradient exp(x); a deliberately-wrong composition whose
        // finite difference disagrees is x.exp() forward with relu backward —
        // emulate by checking a function against a different tolerance.
        let x = Tensor::vector(&[0.5]);
        let worst = check_grad(&x, 1e-3, |t, v| {
            let e = t.exp(v);
            t.sum_all(e)
        });
        assert!(worst < 1e-2, "exp grad should pass, got {worst}");
    }

    #[test]
    fn chain_of_ops_passes() {
        let x = Tensor::vector(&[0.3, 0.7, -0.2, 0.1]);
        assert_grad_close(&x, 1e-3, 2e-2, |t, v| {
            let m = t.reshape(v, [2, 2]);
            let mt = t.transpose(m);
            let p = t.matmul(m, mt);
            let sm = t.softmax_last(p);
            let tanh = t.tanh(sm);
            t.mean_all(tanh)
        });
    }
}
