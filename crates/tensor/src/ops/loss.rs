//! Regression losses against constant targets.

use crate::tape::{Tape, Var};
use crate::tensor::Tensor;

impl Tape {
    /// Mean squared error against a constant target (Eq. 24 of the paper).
    pub fn mse_loss(&mut self, pred: Var, target: &Tensor) -> Var {
        let pv = self.value(pred);
        assert_eq!(pv.shape(), target.shape(), "mse_loss shape mismatch");
        let n = pv.numel() as f32;
        let loss = pv.zip(target, |p, t| (p - t).powi(2)).sum() / n;
        let target = target.clone();
        self.push_bwd(Tensor::scalar(loss), move |g, t, grads| {
            let gi = g.item();
            let dp = t
                .value(pred)
                .zip(&target, |p, tv| gi * 2.0 * (p - tv) / target.numel() as f32);
            grads.accumulate(pred, dp);
        })
    }

    /// Mean absolute error against a constant target (L1 loss of §V-A).
    ///
    /// Uses the subgradient `sign(p - t)`, with 0 at the kink.
    pub fn l1_loss(&mut self, pred: Var, target: &Tensor) -> Var {
        let pv = self.value(pred);
        assert_eq!(pv.shape(), target.shape(), "l1_loss shape mismatch");
        let n = pv.numel() as f32;
        let loss = pv.zip(target, |p, t| (p - t).abs()).sum() / n;
        let target = target.clone();
        self.push_bwd(Tensor::scalar(loss), move |g, t, grads| {
            let gi = g.item();
            let n = target.numel() as f32;
            let dp = t.value(pred).zip(&target, |p, tv| {
                gi * (p - tv).signum() * if p == tv { 0.0 } else { 1.0 } / n
            });
            grads.accumulate(pred, dp);
        })
    }

    /// Huber (smooth-L1) loss with threshold `delta`; robust alternative used
    /// by some ablation configurations.
    pub fn huber_loss(&mut self, pred: Var, target: &Tensor, delta: f32) -> Var {
        let pv = self.value(pred);
        assert_eq!(pv.shape(), target.shape(), "huber_loss shape mismatch");
        let n = pv.numel() as f32;
        let loss = pv
            .zip(target, |p, t| {
                let e = (p - t).abs();
                if e <= delta {
                    0.5 * e * e
                } else {
                    delta * (e - 0.5 * delta)
                }
            })
            .sum()
            / n;
        let target = target.clone();
        self.push_bwd(Tensor::scalar(loss), move |g, t, grads| {
            let gi = g.item();
            let n = target.numel() as f32;
            let dp = t.value(pred).zip(&target, |p, tv| {
                let e = p - tv;
                let de = if e.abs() <= delta {
                    e
                } else {
                    delta * e.signum()
                };
                gi * de / n
            });
            grads.accumulate(pred, dp);
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_value_and_grad() {
        let mut t = Tape::new();
        let p = t.leaf(Tensor::vector(&[1.0, 3.0]));
        let target = Tensor::vector(&[0.0, 0.0]);
        let l = t.mse_loss(p, &target);
        assert!((t.value(l).item() - 5.0).abs() < 1e-6);
        let g = t.backward(l, 0);
        assert_eq!(g.grad(p).unwrap().data(), &[1.0, 3.0]); // 2*(p-t)/2
    }

    #[test]
    fn l1_value_and_grad_signs() {
        let mut t = Tape::new();
        let p = t.leaf(Tensor::vector(&[2.0, -2.0]));
        let target = Tensor::vector(&[0.0, 0.0]);
        let l = t.l1_loss(p, &target);
        assert!((t.value(l).item() - 2.0).abs() < 1e-6);
        let g = t.backward(l, 0);
        assert_eq!(g.grad(p).unwrap().data(), &[0.5, -0.5]);
    }

    #[test]
    fn l1_grad_zero_at_kink() {
        let mut t = Tape::new();
        let p = t.leaf(Tensor::vector(&[1.0]));
        let target = Tensor::vector(&[1.0]);
        let l = t.l1_loss(p, &target);
        let g = t.backward(l, 0);
        assert_eq!(g.grad(p).unwrap().data(), &[0.0]);
    }

    #[test]
    fn huber_matches_mse_inside_and_l1_outside() {
        let mut t = Tape::new();
        let p = t.leaf(Tensor::vector(&[0.5]));
        let target = Tensor::vector(&[0.0]);
        let l = t.huber_loss(p, &target, 1.0);
        assert!((t.value(l).item() - 0.125).abs() < 1e-6);

        let mut t2 = Tape::new();
        let p2 = t2.leaf(Tensor::vector(&[3.0]));
        let l2 = t2.huber_loss(p2, &target, 1.0);
        assert!((t2.value(l2).item() - 2.5).abs() < 1e-6);
        let g2 = t2.backward(l2, 0);
        assert_eq!(g2.grad(p2).unwrap().data(), &[1.0]);
    }

    #[test]
    fn zero_loss_has_zero_grad() {
        let mut t = Tape::new();
        let p = t.leaf(Tensor::vector(&[1.0, 2.0]));
        let target = Tensor::vector(&[1.0, 2.0]);
        let l = t.mse_loss(p, &target);
        assert_eq!(t.value(l).item(), 0.0);
        let g = t.backward(l, 0);
        assert!(g.grad(p).unwrap().data().iter().all(|&x| x == 0.0));
    }
}
