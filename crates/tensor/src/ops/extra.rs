//! Additional ops a downstream user of the library will reach for:
//! axis-0 concatenation, clamping, leaky ReLU / softplus, log-softmax, and
//! non-differentiable argmax/max utilities.

use crate::tape::{Tape, Var};
use crate::tensor::Tensor;

impl Tape {
    /// Concatenates tensors along the first axis. All inputs must share
    /// their trailing dims; a `[a, d]` and a `[b, d]` give `[a+b, d]`.
    pub fn concat_rows(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_rows of zero tensors");
        let first_shape = *self.value(parts[0]).shape();
        assert!(first_shape.rank() >= 1, "concat_rows needs rank >= 1");
        let trailing = &first_shape.dims()[1..];
        let mut total_rows = 0usize;
        for &p in parts {
            let s = self.value(p).shape();
            assert_eq!(
                &s.dims()[1..],
                trailing,
                "concat_rows trailing-dim mismatch"
            );
            total_rows += s.dim(0);
        }
        let mut data =
            crate::pool::take_f32(total_rows * trailing.iter().product::<usize>().max(1));
        for &p in parts {
            data.extend_from_slice(self.value(p).data());
        }
        let mut dims = [0usize; crate::shape::MAX_RANK];
        dims[..first_shape.rank()].copy_from_slice(first_shape.dims());
        dims[0] = total_rows;
        let shape = crate::shape::Shape::new(&dims[..first_shape.rank()]);
        let parts = crate::pool::ScratchUsize(parts.iter().fold(
            crate::pool::take_usize(parts.len()),
            |mut v, p| {
                v.push(p.0);
                v
            },
        ));
        self.push_bwd(Tensor::new(shape, data), move |g, t, grads| {
            let mut offset = 0usize;
            for &p in parts.iter() {
                let n = t.value(Var(p)).numel();
                let p_shape = *t.value(Var(p)).shape();
                grads.accumulate_with(Var(p), &p_shape, |dst| {
                    dst.copy_from_slice(&g.data()[offset..offset + n]);
                });
                offset += n;
            }
        })
    }

    /// Clamps every element into `[lo, hi]`; gradient is zero outside the
    /// active range (straight-through would be `identity`; this is the
    /// exact subgradient).
    pub fn clamp(&mut self, a: Var, lo: f32, hi: f32) -> Var {
        assert!(lo <= hi, "clamp bounds inverted: [{lo}, {hi}]");
        let value = self.value(a).map(|x| x.clamp(lo, hi));
        self.push_bwd(value, move |g, t, grads| {
            grads.accumulate(
                a,
                g.zip(
                    t.value(a),
                    |gi, x| if (lo..=hi).contains(&x) { gi } else { 0.0 },
                ),
            );
        })
    }

    /// Leaky ReLU with negative slope `alpha`.
    pub fn leaky_relu(&mut self, a: Var, alpha: f32) -> Var {
        let value = self.value(a).map(|x| if x > 0.0 { x } else { alpha * x });
        self.push_bwd(value, move |g, t, grads| {
            grads.accumulate(
                a,
                g.zip(t.value(a), |gi, x| if x > 0.0 { gi } else { alpha * gi }),
            );
        })
    }

    /// Numerically-stable softplus `ln(1 + e^x)`.
    pub fn softplus(&mut self, a: Var) -> Var {
        let value = self.value(a).map(|x| {
            if x > 20.0 {
                x
            } else if x < -20.0 {
                x.exp()
            } else {
                x.exp().ln_1p()
            }
        });
        self.push_bwd(value, move |g, t, grads| {
            // d softplus / dx = sigmoid(x)
            grads.accumulate(a, g.zip(t.value(a), |gi, x| gi / (1.0 + (-x).exp())));
        })
    }

    /// Row-wise log-softmax over the last dimension (stable log-sum-exp).
    pub fn log_softmax_last(&mut self, a: Var) -> Var {
        let av = self.value(a);
        let d = av.shape().last_dim();
        let rows = av.shape().leading();
        let mut out = av.clone();
        for r in 0..rows {
            let slice = &mut out.data_mut()[r * d..(r + 1) * d];
            let max = slice.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
            let lse = max + slice.iter().map(|&x| (x - max).exp()).sum::<f32>().ln();
            for x in slice.iter_mut() {
                *x -= lse;
            }
        }
        let node = self.push_value(out);
        self.set_bwd(node, move |g, t, grads| {
            // dx = g − softmax(x) · Σ g   (row-wise)
            let y = t.value(node); // log-probs
            let d = y.shape().last_dim();
            let rows = y.shape().leading();
            let y_shape = *y.shape();
            grads.accumulate_with(a, &y_shape, |dst| {
                for r in 0..rows {
                    let yr = &y.data()[r * d..(r + 1) * d];
                    let gr = &g.data()[r * d..(r + 1) * d];
                    let gsum: f32 = gr.iter().sum();
                    for j in 0..d {
                        dst[r * d + j] = gr[j] - yr[j].exp() * gsum;
                    }
                }
            });
        });
        node
    }

    /// Row-wise maximum over the last dimension; `[.., d] -> [..rows]`.
    /// Gradient flows only to the (first) arg-max element of each row.
    pub fn max_last(&mut self, a: Var) -> Var {
        let av = self.value(a);
        let d = av.shape().last_dim();
        let rows = av.shape().leading();
        let mut maxima = crate::pool::take_f32(rows);
        let mut arg = crate::pool::ScratchUsize::with_capacity(rows);
        for r in 0..rows {
            let slice = &av.data()[r * d..(r + 1) * d];
            let (i, &m) = slice
                .iter()
                .enumerate()
                .max_by(|x, y| x.1.partial_cmp(y.1).expect("finite"))
                .expect("non-empty row");
            maxima.push(m);
            arg.push(i);
        }
        self.push_bwd(Tensor::new([rows], maxima), move |g, t, grads| {
            let av = t.value(a);
            let d = av.shape().last_dim();
            let a_shape = *av.shape();
            grads.accumulate_with(a, &a_shape, |dst| {
                for (r, (&i, &gi)) in arg.iter().zip(g.data()).enumerate() {
                    dst[r * d + i] = gi;
                }
            });
        })
    }

    /// Row-wise arg-max over the last dimension (no gradient; returns plain
    /// indices for the caller).
    pub fn argmax_last(&self, a: Var) -> Vec<usize> {
        let av = self.value(a);
        let d = av.shape().last_dim();
        (0..av.shape().leading())
            .map(|r| {
                av.data()[r * d..(r + 1) * d]
                    .iter()
                    .enumerate()
                    .max_by(|x, y| x.1.partial_cmp(y.1).expect("finite"))
                    .map(|(i, _)| i)
                    .expect("non-empty row")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concat_rows_stacks_and_splits_grads() {
        let mut t = Tape::new();
        let a = t.leaf(Tensor::matrix(&[&[1.0, 2.0]]));
        let b = t.leaf(Tensor::matrix(&[&[3.0, 4.0], &[5.0, 6.0]]));
        let c = t.concat_rows(&[a, b]);
        assert_eq!(t.value(c).shape().as_matrix(), (3, 2));
        assert_eq!(t.value(c).data(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let r = t.row(c, 2);
        let s = t.sum_all(r);
        let g = t.backward(s, 0);
        assert!(g.grad(a).is_none() || g.grad(a).unwrap().data().iter().all(|&x| x == 0.0));
        assert_eq!(g.grad(b).unwrap().data(), &[0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn clamp_saturates_and_blocks_grad() {
        let mut t = Tape::new();
        let a = t.leaf(Tensor::vector(&[-2.0, 0.5, 3.0]));
        let c = t.clamp(a, -1.0, 1.0);
        assert_eq!(t.value(c).data(), &[-1.0, 0.5, 1.0]);
        let s = t.sum_all(c);
        let g = t.backward(s, 0);
        assert_eq!(g.grad(a).unwrap().data(), &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn leaky_relu_slope() {
        let mut t = Tape::new();
        let a = t.leaf(Tensor::vector(&[-2.0, 2.0]));
        let y = t.leaky_relu(a, 0.1);
        assert_eq!(t.value(y).data(), &[-0.2, 2.0]);
        let s = t.sum_all(y);
        let g = t.backward(s, 0);
        assert_eq!(g.grad(a).unwrap().data(), &[0.1, 1.0]);
    }

    #[test]
    fn softplus_limits() {
        let mut t = Tape::new();
        let a = t.leaf(Tensor::vector(&[-30.0, 0.0, 30.0]));
        let y = t.softplus(a);
        let v = t.value(y).data();
        assert!(v[0] > 0.0 && v[0] < 1e-8);
        assert!((v[1] - 2f32.ln()).abs() < 1e-6);
        assert!((v[2] - 30.0).abs() < 1e-4);
    }

    #[test]
    fn log_softmax_matches_softmax_log() {
        let mut t = Tape::new();
        let a = t.leaf(Tensor::vector(&[0.2, -1.0, 3.0]));
        let ls = t.log_softmax_last(a);
        let sm = t.softmax_last(a);
        for (l, s) in t.value(ls).data().iter().zip(t.value(sm).data()) {
            assert!((l - s.ln()).abs() < 1e-5);
        }
    }

    #[test]
    fn log_softmax_gradcheck() {
        use crate::tensor::Tensor as T;
        cf_gradcheck(&T::vector(&[0.3, -0.7, 1.1]));
    }

    fn cf_gradcheck(x: &Tensor) {
        crate::gradcheck::assert_grad_close(x, 1e-2, 3e-2, |t, v| {
            let ls = t.log_softmax_last(v);
            let w = t.constant(Tensor::vector(&[0.5, -1.0, 0.25]));
            let p = t.mul(ls, w);
            t.sum_all(p)
        });
    }

    #[test]
    fn max_last_and_argmax() {
        let mut t = Tape::new();
        let a = t.leaf(Tensor::matrix(&[&[1.0, 5.0, 3.0], &[9.0, 2.0, 4.0]]));
        let m = t.max_last(a);
        assert_eq!(t.value(m).data(), &[5.0, 9.0]);
        assert_eq!(t.argmax_last(a), vec![1, 0]);
        let s = t.sum_all(m);
        let g = t.backward(s, 0);
        assert_eq!(g.grad(a).unwrap().data(), &[0.0, 1.0, 0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "trailing-dim mismatch")]
    fn concat_rows_checks_trailing_dims() {
        let mut t = Tape::new();
        let a = t.leaf(Tensor::zeros([1, 2]));
        let b = t.leaf(Tensor::zeros([1, 3]));
        t.concat_rows(&[a, b]);
    }
}
