//! Matrix-product and transpose ops.

use crate::tape::{Tape, Var};

impl Tape {
    /// Rank-2 matrix product `[m,k] x [k,n] -> [m,n]`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).matmul(self.value(b));
        self.push(
            value,
            Some(Box::new(move |g, t, grads| {
                // dA = G Bᵀ ; dB = Aᵀ G
                let bt = t.value(b).transpose();
                grads.accumulate(a, g.matmul(&bt));
                let at = t.value(a).transpose();
                grads.accumulate(b, at.matmul(g));
            })),
        )
    }

    /// Batched matrix product `[B,m,k] x [B,k,n] -> [B,m,n]`.
    pub fn bmm(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).bmm(self.value(b));
        self.push(
            value,
            Some(Box::new(move |g, t, grads| {
                let bt = t.value(b).transpose_batch();
                grads.accumulate(a, g.bmm(&bt));
                let at = t.value(a).transpose_batch();
                grads.accumulate(b, at.bmm(g));
            })),
        )
    }

    /// Rank-2 transpose.
    pub fn transpose(&mut self, a: Var) -> Var {
        let value = self.value(a).transpose();
        self.push(
            value,
            Some(Box::new(move |g, _t, grads| {
                grads.accumulate(a, g.transpose());
            })),
        )
    }

    /// Batched transpose of the trailing two dims.
    pub fn transpose_batch(&mut self, a: Var) -> Var {
        let value = self.value(a).transpose_batch();
        self.push(
            value,
            Some(Box::new(move |g, _t, grads| {
                grads.accumulate(a, g.transpose_batch());
            })),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    #[test]
    fn matmul_grads_match_manual() {
        // f = sum(A B); dA = 1 Bᵀ, dB = Aᵀ 1
        let mut t = Tape::new();
        let a = t.leaf(Tensor::matrix(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let b = t.leaf(Tensor::matrix(&[&[5.0, 6.0], &[7.0, 8.0]]));
        let c = t.matmul(a, b);
        let s = t.sum_all(c);
        let g = t.backward(s, 0);
        // row sums of B give dA columns: dA[i][j] = sum_k B[j][k]
        assert_eq!(g.grad(a).unwrap().data(), &[11.0, 15.0, 11.0, 15.0]);
        // col sums of A give dB rows: dB[j][k] = sum_i A[i][j]
        assert_eq!(g.grad(b).unwrap().data(), &[4.0, 4.0, 6.0, 6.0]);
    }

    #[test]
    fn transpose_grad_round_trips() {
        let mut t = Tape::new();
        let a = t.leaf(Tensor::matrix(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]));
        let tr = t.transpose(a);
        assert_eq!(t.value(tr).shape().as_matrix(), (3, 2));
        let s = t.sum_all(tr);
        let g = t.backward(s, 0);
        assert_eq!(g.grad(a).unwrap().shape().as_matrix(), (2, 3));
        assert!(g.grad(a).unwrap().data().iter().all(|&x| x == 1.0));
    }

    #[test]
    fn bmm_grad_shapes() {
        let mut t = Tape::new();
        let a = t.leaf(Tensor::new(
            [2, 2, 3],
            (0..12).map(|x| x as f32 * 0.1).collect(),
        ));
        let b = t.leaf(Tensor::new(
            [2, 3, 4],
            (0..24).map(|x| x as f32 * 0.1).collect(),
        ));
        let c = t.bmm(a, b);
        assert_eq!(t.value(c).shape().as_batch_matrix(), (2, 2, 4));
        let s = t.sum_all(c);
        let g = t.backward(s, 0);
        assert_eq!(g.grad(a).unwrap().shape().as_batch_matrix(), (2, 2, 3));
        assert_eq!(g.grad(b).unwrap().shape().as_batch_matrix(), (2, 3, 4));
    }
}
