//! Matrix-product and transpose ops.
//!
//! All product backward rules are transpose-fused: `dA = G·Bᵀ` and
//! `dB = Aᵀ·G` go through [`matmul_into_bt`] / [`matmul_into_at`] straight
//! into the gradient slots ([`GradStore::accumulate_with`]), so backward
//! never materializes a transpose tensor nor a per-op gradient temporary.
//!
//! [`GradStore::accumulate_with`]: crate::tape::GradStore::accumulate_with

use crate::pool::SharedMut;
use crate::tape::{Tape, Var};
use crate::tensor::{matmul_into, matmul_into_at, matmul_into_bt, par_batches, Tensor};

impl Tape {
    /// Rank-2 matrix product `[m,k] x [k,n] -> [m,n]`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).matmul(self.value(b));
        self.push_bwd(value, move |g, t, grads| {
            let av = t.value(a);
            let bv = t.value(b);
            let (m, k) = av.shape().as_matrix();
            let n = bv.shape().as_matrix().1;
            // dA += G·Bᵀ (B kept in its stored layout)
            let a_shape = av.shape().clone();
            grads.accumulate_with(a, &a_shape, |dst| {
                matmul_into_bt(g.data(), bv.data(), dst, m, n, k)
            });
            // dB += Aᵀ·G (A kept in its stored layout)
            let b_shape = bv.shape().clone();
            grads.accumulate_with(b, &b_shape, |dst| {
                matmul_into_at(av.data(), g.data(), dst, k, m, n)
            });
        })
    }

    /// Transpose-fused product `AᵀB`: `a` stored `[k,m]`, `b` stored `[k,n]`,
    /// result `[m,n]` — no materialized transpose in forward or backward.
    pub fn matmul_at(&mut self, a: Var, b: Var) -> Var {
        let (k, m) = self.value(a).shape().as_matrix();
        let (k2, n) = self.value(b).shape().as_matrix();
        assert_eq!(
            k,
            k2,
            "matmul_at inner-dim mismatch {} vs {}",
            self.value(a).shape(),
            self.value(b).shape()
        );
        let mut out = crate::pool::take_f32_zeroed(m * n);
        matmul_into_at(
            self.value(a).data(),
            self.value(b).data(),
            &mut out,
            m,
            k,
            n,
        );
        self.push_bwd(Tensor::new([m, n], out), move |g, t, grads| {
            let av = t.value(a);
            let bv = t.value(b);
            let (k, m) = av.shape().as_matrix();
            let n = bv.shape().as_matrix().1;
            // C = AᵀB ⇒ dA = B·Gᵀ ([k,m]), dB = A·G ([k,n]).
            let a_shape = av.shape().clone();
            grads.accumulate_with(a, &a_shape, |dst| {
                matmul_into_bt(bv.data(), g.data(), dst, k, n, m)
            });
            let b_shape = bv.shape().clone();
            grads.accumulate_with(b, &b_shape, |dst| {
                matmul_into(av.data(), g.data(), dst, k, m, n)
            });
        })
    }

    /// Transpose-fused product `ABᵀ`: `a` stored `[m,k]`, `b` stored `[n,k]`,
    /// result `[m,n]` — no materialized transpose in forward or backward.
    pub fn matmul_bt(&mut self, a: Var, b: Var) -> Var {
        let (m, k) = self.value(a).shape().as_matrix();
        let (n, k2) = self.value(b).shape().as_matrix();
        assert_eq!(
            k,
            k2,
            "matmul_bt inner-dim mismatch {} vs {}",
            self.value(a).shape(),
            self.value(b).shape()
        );
        let mut out = crate::pool::take_f32_zeroed(m * n);
        matmul_into_bt(
            self.value(a).data(),
            self.value(b).data(),
            &mut out,
            m,
            k,
            n,
        );
        self.push_bwd(Tensor::new([m, n], out), move |g, t, grads| {
            let av = t.value(a);
            let bv = t.value(b);
            let (m, k) = av.shape().as_matrix();
            let n = bv.shape().as_matrix().0;
            // C = ABᵀ ⇒ dA = G·B ([m,k]), dB = Gᵀ·A ([n,k]).
            let a_shape = av.shape().clone();
            grads.accumulate_with(a, &a_shape, |dst| {
                matmul_into(g.data(), bv.data(), dst, m, n, k)
            });
            let b_shape = bv.shape().clone();
            grads.accumulate_with(b, &b_shape, |dst| {
                matmul_into_at(g.data(), av.data(), dst, n, m, k)
            });
        })
    }

    /// Batched matrix product `[B,m,k] x [B,k,n] -> [B,m,n]`.
    pub fn bmm(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).bmm(self.value(b));
        self.push_bwd(value, move |g, t, grads| {
            let av = t.value(a);
            let bv = t.value(b);
            let (bs, m, k) = av.shape().as_batch_matrix();
            let n = bv.shape().as_batch_matrix().2;
            let a_shape = av.shape().clone();
            grads.accumulate_with(a, &a_shape, |dst| {
                let sh = SharedMut::new(dst);
                par_batches(bs, bs * m * n * k, |i| {
                    // SAFETY: each batch writes its own contiguous block.
                    let d = unsafe { sh.get(i * m * k, m * k) };
                    matmul_into_bt(
                        &g.data()[i * m * n..(i + 1) * m * n],
                        &bv.data()[i * k * n..(i + 1) * k * n],
                        d,
                        m,
                        n,
                        k,
                    );
                });
            });
            let b_shape = bv.shape().clone();
            grads.accumulate_with(b, &b_shape, |dst| {
                let sh = SharedMut::new(dst);
                par_batches(bs, bs * m * n * k, |i| {
                    // SAFETY: each batch writes its own contiguous block.
                    let d = unsafe { sh.get(i * k * n, k * n) };
                    matmul_into_at(
                        &av.data()[i * m * k..(i + 1) * m * k],
                        &g.data()[i * m * n..(i + 1) * m * n],
                        d,
                        k,
                        m,
                        n,
                    );
                });
            });
        })
    }

    /// Batched transpose-fused product `A·Bᵀ`: `[B,m,k] x [B,n,k] -> [B,m,n]`
    /// (the attention `QKᵀ` shape) without materializing any transpose.
    pub fn bmm_bt(&mut self, a: Var, b: Var) -> Var {
        let (bs, m, k) = self.value(a).shape().as_batch_matrix();
        let (bs2, n, k2) = self.value(b).shape().as_batch_matrix();
        assert_eq!(
            bs,
            bs2,
            "bmm_bt batch mismatch {} vs {}",
            self.value(a).shape(),
            self.value(b).shape()
        );
        assert_eq!(
            k,
            k2,
            "bmm_bt inner-dim mismatch {} vs {}",
            self.value(a).shape(),
            self.value(b).shape()
        );
        let mut out = crate::pool::take_f32_zeroed(bs * m * n);
        {
            let sh = SharedMut::new(&mut out);
            let (ad, bd) = (self.value(a).data(), self.value(b).data());
            par_batches(bs, bs * m * k * n, |i| {
                // SAFETY: each batch writes its own contiguous block.
                let o = unsafe { sh.get(i * m * n, m * n) };
                matmul_into_bt(
                    &ad[i * m * k..(i + 1) * m * k],
                    &bd[i * n * k..(i + 1) * n * k],
                    o,
                    m,
                    k,
                    n,
                );
            });
        }
        self.push_bwd(Tensor::new([bs, m, n], out), move |g, t, grads| {
            let av = t.value(a);
            let bv = t.value(b);
            let (bs, m, k) = av.shape().as_batch_matrix();
            let n = bv.shape().as_batch_matrix().1;
            let a_shape = av.shape().clone();
            grads.accumulate_with(a, &a_shape, |dst| {
                let sh = SharedMut::new(dst);
                par_batches(bs, bs * m * n * k, |i| {
                    // SAFETY: each batch writes its own contiguous block.
                    let d = unsafe { sh.get(i * m * k, m * k) };
                    matmul_into(
                        &g.data()[i * m * n..(i + 1) * m * n],
                        &bv.data()[i * n * k..(i + 1) * n * k],
                        d,
                        m,
                        n,
                        k,
                    );
                });
            });
            let b_shape = bv.shape().clone();
            grads.accumulate_with(b, &b_shape, |dst| {
                let sh = SharedMut::new(dst);
                par_batches(bs, bs * m * n * k, |i| {
                    // SAFETY: each batch writes its own contiguous block.
                    let d = unsafe { sh.get(i * n * k, n * k) };
                    matmul_into_at(
                        &g.data()[i * m * n..(i + 1) * m * n],
                        &av.data()[i * m * k..(i + 1) * m * k],
                        d,
                        n,
                        m,
                        k,
                    );
                });
            });
        })
    }

    /// Rank-2 transpose.
    pub fn transpose(&mut self, a: Var) -> Var {
        let value = self.value(a).transpose();
        self.push_bwd(value, move |g, _t, grads| {
            grads.accumulate(a, g.transpose());
        })
    }

    /// Batched transpose of the trailing two dims.
    pub fn transpose_batch(&mut self, a: Var) -> Var {
        let value = self.value(a).transpose_batch();
        self.push_bwd(value, move |g, _t, grads| {
            grads.accumulate(a, g.transpose_batch());
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    #[test]
    fn matmul_grads_match_manual() {
        // f = sum(A B); dA = 1 Bᵀ, dB = Aᵀ 1
        let mut t = Tape::new();
        let a = t.leaf(Tensor::matrix(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let b = t.leaf(Tensor::matrix(&[&[5.0, 6.0], &[7.0, 8.0]]));
        let c = t.matmul(a, b);
        let s = t.sum_all(c);
        let g = t.backward(s, 0);
        // row sums of B give dA columns: dA[i][j] = sum_k B[j][k]
        assert_eq!(g.grad(a).unwrap().data(), &[11.0, 15.0, 11.0, 15.0]);
        // col sums of A give dB rows: dB[j][k] = sum_i A[i][j]
        assert_eq!(g.grad(b).unwrap().data(), &[4.0, 4.0, 6.0, 6.0]);
    }

    #[test]
    fn transpose_grad_round_trips() {
        let mut t = Tape::new();
        let a = t.leaf(Tensor::matrix(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]));
        let tr = t.transpose(a);
        assert_eq!(t.value(tr).shape().as_matrix(), (3, 2));
        let s = t.sum_all(tr);
        let g = t.backward(s, 0);
        assert_eq!(g.grad(a).unwrap().shape().as_matrix(), (2, 3));
        assert!(g.grad(a).unwrap().data().iter().all(|&x| x == 1.0));
    }

    #[test]
    fn bmm_grad_shapes() {
        let mut t = Tape::new();
        let a = t.leaf(Tensor::new(
            [2, 2, 3],
            (0..12).map(|x| x as f32 * 0.1).collect(),
        ));
        let b = t.leaf(Tensor::new(
            [2, 3, 4],
            (0..24).map(|x| x as f32 * 0.1).collect(),
        ));
        let c = t.bmm(a, b);
        assert_eq!(t.value(c).shape().as_batch_matrix(), (2, 2, 4));
        let s = t.sum_all(c);
        let g = t.backward(s, 0);
        assert_eq!(g.grad(a).unwrap().shape().as_batch_matrix(), (2, 2, 3));
        assert_eq!(g.grad(b).unwrap().shape().as_batch_matrix(), (2, 3, 4));
    }

    fn probe(n: usize, scale: f32) -> Vec<f32> {
        (0..n)
            .map(|i| (i as f32 * 0.23 - 0.9) * scale * if i % 2 == 0 { 1.0 } else { -0.7 })
            .collect()
    }

    #[test]
    fn matmul_at_equals_transpose_then_matmul_bitwise() {
        // Forward value and both gradients must match the compositional
        // transpose + matmul graph exactly, not just approximately.
        let run = |fused: bool| {
            let mut t = Tape::new();
            let a = t.leaf(Tensor::new([5, 3], probe(15, 0.8)));
            let b = t.leaf(Tensor::new([5, 4], probe(20, 1.1)));
            let c = if fused {
                t.matmul_at(a, b)
            } else {
                let at = t.transpose(a);
                t.matmul(at, b)
            };
            let w = t.constant(Tensor::new([3, 4], probe(12, 0.5)));
            let p = t.mul(c, w);
            let l = t.sum_all(p);
            let g = t.backward(l, 0);
            (
                t.value(c).data().to_vec(),
                g.grad(a).unwrap().data().to_vec(),
                g.grad(b).unwrap().data().to_vec(),
            )
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn matmul_bt_equals_matmul_then_transpose_bitwise() {
        let run = |fused: bool| {
            let mut t = Tape::new();
            let a = t.leaf(Tensor::new([4, 6], probe(24, 0.9)));
            let b = t.leaf(Tensor::new([3, 6], probe(18, 1.2)));
            let c = if fused {
                t.matmul_bt(a, b)
            } else {
                let bt = t.transpose(b);
                t.matmul(a, bt)
            };
            let w = t.constant(Tensor::new([4, 3], probe(12, 0.6)));
            let p = t.mul(c, w);
            let l = t.sum_all(p);
            let g = t.backward(l, 0);
            (
                t.value(c).data().to_vec(),
                g.grad(a).unwrap().data().to_vec(),
                g.grad(b).unwrap().data().to_vec(),
            )
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn bmm_bt_equals_bmm_of_transpose_batch_bitwise() {
        let run = |fused: bool| {
            let mut t = Tape::new();
            let a = t.leaf(Tensor::new([2, 3, 4], probe(24, 1.0)));
            let b = t.leaf(Tensor::new([2, 5, 4], probe(40, 0.7)));
            let c = if fused {
                t.bmm_bt(a, b)
            } else {
                let bt = t.transpose_batch(b);
                t.bmm(a, bt)
            };
            let w = t.constant(Tensor::new([2, 3, 5], probe(30, 0.4)));
            let p = t.mul(c, w);
            let l = t.sum_all(p);
            let g = t.backward(l, 0);
            (
                t.value(c).data().to_vec(),
                g.grad(a).unwrap().data().to_vec(),
                g.grad(b).unwrap().data().to_vec(),
            )
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn matmul_grad_accumulates_across_uses() {
        // The same leaf feeding two matmuls exercises the occupied-slot
        // (scratch buffer) path of accumulate_with.
        let mut t = Tape::new();
        let a = t.leaf(Tensor::matrix(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let b = t.leaf(Tensor::matrix(&[&[1.0, 0.0], &[0.0, 1.0]]));
        let c1 = t.matmul(a, b);
        let c2 = t.matmul(a, b);
        let s1 = t.sum_all(c1);
        let s2 = t.sum_all(c2);
        let s = t.add(s1, s2);
        let g = t.backward(s, 0);
        // Each use contributes 1·Bᵀ = all-ones against identity B.
        assert_eq!(g.grad(a).unwrap().data(), &[2.0, 2.0, 2.0, 2.0]);
    }
}
