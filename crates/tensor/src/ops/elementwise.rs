//! Elementwise and broadcasting ops.

use crate::tape::{Tape, Var};
use crate::tensor::Tensor;

impl Tape {
    /// `a + b`, same shape.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).zip(self.value(b), |x, y| x + y);
        self.push_bwd(value, move |g, _t, grads| {
            grads.accumulate_in_place(a, g);
            grads.accumulate_in_place(b, g);
        })
    }

    /// `a - b`, same shape.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).zip(self.value(b), |x, y| x - y);
        self.push_bwd(value, move |g, _t, grads| {
            grads.accumulate_in_place(a, g);
            grads.accumulate(b, g.map(|x| -x));
        })
    }

    /// Hadamard product `a ⊙ b`, same shape.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).zip(self.value(b), |x, y| x * y);
        self.push_bwd(value, move |g, t, grads| {
            grads.accumulate(a, g.zip(t.value(b), |gi, bi| gi * bi));
            grads.accumulate(b, g.zip(t.value(a), |gi, ai| gi * ai));
        })
    }

    /// Elementwise `a / b`, same shape.
    pub fn div(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).zip(self.value(b), |x, y| x / y);
        self.push_bwd(value, move |g, t, grads| {
            let bv = t.value(b);
            grads.accumulate(a, g.zip(bv, |gi, bi| gi / bi));
            let av = t.value(a);
            let mut db = g.zip(av, |gi, ai| gi * ai);
            let db2 = db.zip(bv, |x, bi| -x / (bi * bi));
            db = db2;
            grads.accumulate(b, db);
        })
    }

    /// `-a`.
    pub fn neg(&mut self, a: Var) -> Var {
        let value = self.value(a).map(|x| -x);
        self.push_bwd(value, move |g, _t, grads| {
            grads.accumulate(a, g.map(|x| -x));
        })
    }

    /// `a + c` for a scalar constant `c`.
    pub fn add_scalar(&mut self, a: Var, c: f32) -> Var {
        let value = self.value(a).map(|x| x + c);
        self.push_bwd(value, move |g, _t, grads| {
            grads.accumulate_in_place(a, g);
        })
    }

    /// `c * a` for a scalar constant `c`.
    pub fn mul_scalar(&mut self, a: Var, c: f32) -> Var {
        let value = self.value(a).map(|x| c * x);
        self.push_bwd(value, move |g, _t, grads| {
            grads.accumulate(a, g.map(|x| c * x));
        })
    }

    /// Adds a constant tensor with no gradient path into it (e.g. an additive
    /// attention mask). Shapes must match.
    pub fn add_const(&mut self, a: Var, c: &Tensor) -> Var {
        let value = self.value(a).zip(c, |x, y| x + y);
        self.push_bwd(value, move |g, _t, grads| {
            grads.accumulate_in_place(a, g);
        })
    }

    /// Row-broadcast add: `a[.., d] + b[d]`.
    pub fn add_bias(&mut self, a: Var, b: Var) -> Var {
        let av = self.value(a);
        let d = av.shape().last_dim();
        let bv = self.value(b);
        assert_eq!(
            bv.shape().numel(),
            d,
            "add_bias: bias length {} != last dim {d}",
            bv.numel()
        );
        let mut out = av.clone();
        let rows = out.shape().leading();
        add_bias_rows(out.data_mut(), bv.data(), rows, d);
        self.push_bwd(out, move |g, _t, grads| {
            grads.accumulate_in_place(a, g);
            let d = g.shape().last_dim();
            let mut db = crate::pool::take_f32_zeroed(d);
            colsum_rows(g.data(), &mut db, g.shape().leading(), d);
            grads.accumulate(b, Tensor::new([d], db));
        })
    }

    /// Row-broadcast multiply: `a[.., d] ⊙ b[d]`.
    pub fn mul_bcast_row(&mut self, a: Var, b: Var) -> Var {
        let av = self.value(a);
        let d = av.shape().last_dim();
        let bv = self.value(b);
        assert_eq!(
            bv.shape().numel(),
            d,
            "mul_bcast_row: length {} != last dim {d}",
            bv.numel()
        );
        let mut out = av.clone();
        let rows = out.shape().leading();
        mul_rows(out.data_mut(), bv.data(), rows, d);
        self.push_bwd(out, move |g, t, grads| {
            let d = g.shape().last_dim();
            let rows = g.shape().leading();
            let bv = t.value(b);
            let av = t.value(a);
            let mut da = g.clone();
            let mut db = crate::pool::take_f32_zeroed(d);
            mul_bcast_backward_rows(
                da.data_mut(),
                &mut db,
                g.data(),
                av.data(),
                bv.data(),
                rows,
                d,
            );
            grads.accumulate(a, da);
            grads.accumulate(b, Tensor::new([d], db));
        })
    }

    /// Scales each row of `a` (viewed as `[L, d]`) by the matching scalar of
    /// `w` (numel `L`): `out[r, :] = w[r] * a[r, :]`.
    ///
    /// This is the workhorse for masking, attention-weighted sums and
    /// per-chain weighting.
    pub fn scale_rows(&mut self, a: Var, w: Var) -> Var {
        let av = self.value(a);
        let d = av.shape().last_dim();
        let rows = av.shape().leading();
        let wv = self.value(w);
        assert_eq!(
            wv.numel(),
            rows,
            "scale_rows: weights {} != rows {rows}",
            wv.numel()
        );
        let mut out = av.clone();
        scale_rows_inplace(out.data_mut(), wv.data(), rows, d);
        self.push_bwd(out, move |g, t, grads| {
            let av = t.value(a);
            let wv = t.value(w);
            let d = av.shape().last_dim();
            let rows = av.shape().leading();
            let mut da = g.clone();
            let mut dw = crate::pool::take_f32_zeroed(rows);
            scale_rows_backward(
                da.data_mut(),
                &mut dw,
                g.data(),
                av.data(),
                wv.data(),
                rows,
                d,
            );
            grads.accumulate(a, da);
            grads.accumulate(w, Tensor::new(wv.shape().clone(), dw));
        })
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let value = self.value(a).map(|x| x.max(0.0));
        self.push_bwd(value, move |g, t, grads| {
            grads.accumulate(a, g.zip(t.value(a), |gi, x| if x > 0.0 { gi } else { 0.0 }));
        })
    }

    /// GELU with the tanh approximation (as used by most Transformer stacks).
    ///
    /// The forward pass caches its `tanh` evaluations in a pooled scratch so
    /// the backward rule reuses them instead of recomputing — `tanh` is by
    /// far the most expensive scalar in the FFN, and the cached value is the
    /// exact same bits the recomputation would produce.
    pub fn gelu(&mut self, a: Var) -> Var {
        let av = self.value(a);
        let n = av.numel();
        let mut value = av.clone();
        let mut th = crate::pool::take_f32(n);
        gelu_forward_cached(value.data_mut(), &mut th);
        let th = crate::pool::ScratchF32(th);
        self.push_bwd(value, move |g, t, grads| {
            let av = t.value(a);
            let a_shape = *av.shape();
            grads.accumulate_with(a, &a_shape, |dst| {
                gelu_backward_cached(g.data(), av.data(), &th, dst);
            });
        })
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let value = self.value(a).map(f32::tanh);
        let out = self.push_value(value);
        // tanh's gradient is cheapest in terms of the *output*; the closure
        // is attached after the push so it can capture the output var id.
        self.set_bwd(out, move |g, t, grads| {
            grads.accumulate(a, g.zip(t.value(out), |gi, y| gi * (1.0 - y * y)));
        });
        out
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let value = self.value(a).map(|x| 1.0 / (1.0 + (-x).exp()));
        let out = self.push_value(value);
        self.set_bwd(out, move |g, t, grads| {
            grads.accumulate(a, g.zip(t.value(out), |gi, y| gi * y * (1.0 - y)));
        });
        out
    }

    /// Elementwise exponential.
    pub fn exp(&mut self, a: Var) -> Var {
        let value = self.value(a).map(f32::exp);
        let out = self.push_value(value);
        self.set_bwd(out, move |g, t, grads| {
            grads.accumulate(a, g.zip(t.value(out), |gi, y| gi * y));
        });
        out
    }

    /// Elementwise natural log (inputs must be positive).
    pub fn ln(&mut self, a: Var) -> Var {
        let value = self.value(a).map(f32::ln);
        self.push_bwd(value, move |g, t, grads| {
            grads.accumulate(a, g.zip(t.value(a), |gi, x| gi / x));
        })
    }

    /// Inverted dropout: at train time zeroes each element with probability
    /// `p` and rescales survivors by `1/(1-p)`; identity when `p == 0`.
    pub fn dropout(&mut self, a: Var, p: f32, rng: &mut impl cf_rand::Rng) -> Var {
        assert!(
            (0.0..1.0).contains(&p),
            "dropout p must be in [0,1), got {p}"
        );
        if p == 0.0 {
            return a;
        }
        let keep = 1.0 - p;
        let av = self.value(a);
        let mut mask = crate::pool::take_f32(av.numel());
        mask.extend((0..av.numel()).map(|_| {
            if rng.gen::<f32>() < keep {
                1.0 / keep
            } else {
                0.0
            }
        }));
        let mask = Tensor::new(*av.shape(), mask);
        let value = av.zip(&mask, |x, m| x * m);
        self.push_bwd(value, move |g, _t, grads| {
            grads.accumulate(a, g.zip(&mask, |gi, m| gi * m));
        })
    }
}

crate::simd::simd_hot! {

/// Row-broadcast add in place: `data[r, :] += bias`.
pub(crate) fn add_bias_rows(data: &mut [f32], bias: &[f32], rows: usize, d: usize) {
    for row in 0..rows {
        let base = row * d;
        for j in 0..d {
            data[base + j] += bias[j];
        }
    }
}

/// Column sums (bias gradient): `db[j] += Σ_r g[r, j]`, rows ascending.
pub(crate) fn colsum_rows(gd: &[f32], db: &mut [f32], rows: usize, d: usize) {
    for row in 0..rows {
        for j in 0..d {
            db[j] += gd[row * d + j];
        }
    }
}

/// Row-broadcast multiply in place: `data[r, :] *= bias`.
pub(crate) fn mul_rows(data: &mut [f32], bias: &[f32], rows: usize, d: usize) {
    for row in 0..rows {
        let base = row * d;
        for j in 0..d {
            data[base + j] *= bias[j];
        }
    }
}

/// Fused backward of [`Tape::mul_bcast_row`]: `da[r,j] *= b[j]` and
/// `db[j] += g[r,j]·a[r,j]` in the original single-pass order.
pub(crate) fn mul_bcast_backward_rows(
    da: &mut [f32],
    db: &mut [f32],
    gd: &[f32],
    ad: &[f32],
    bv: &[f32],
    rows: usize,
    d: usize,
) {
    for row in 0..rows {
        let base = row * d;
        for j in 0..d {
            da[base + j] *= bv[j];
            db[j] += gd[base + j] * ad[base + j];
        }
    }
}

/// Per-row scaling in place: `data[r, :] *= w[r]`.
pub(crate) fn scale_rows_inplace(data: &mut [f32], w: &[f32], rows: usize, d: usize) {
    for r in 0..rows {
        let s = w[r];
        for x in &mut data[r * d..(r + 1) * d] {
            *x *= s;
        }
    }
}

/// Fused backward of [`Tape::scale_rows`]: `dw[r] += Σ_j g[r,j]·a[r,j]`
/// (j ascending) and `da[r, :] *= w[r]`, in the original single-pass order.
pub(crate) fn scale_rows_backward(
    da: &mut [f32],
    dw: &mut [f32],
    gd: &[f32],
    ad: &[f32],
    w: &[f32],
    rows: usize,
    d: usize,
) {
    for r in 0..rows {
        let s = w[r];
        let base = r * d;
        for j in 0..d {
            dw[r] += gd[base + j] * ad[base + j];
            da[base + j] *= s;
        }
    }
}

}

/// GELU forward (tanh approximation). Shared with the tape-free path
/// ([`crate::infer::InferCtx`]) so both stay bitwise identical.
pub(crate) fn gelu_fwd(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    0.5 * x * (1.0 + (C * (x + 0.044_715 * x * x * x)).tanh())
}

/// In-place [`gelu_fwd`] over `data` that also pushes each element's `tanh`
/// into `th` for the backward rule. Identical expression tree to
/// [`gelu_fwd`], so the outputs are the same bits.
fn gelu_forward_cached(data: &mut [f32], th: &mut Vec<f32>) {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    for x in data.iter_mut() {
        let xi = *x;
        let t = (C * (xi + 0.044_715 * xi * xi * xi)).tanh();
        th.push(t);
        *x = 0.5 * xi * (1.0 + t);
    }
}

/// GELU backward using the cached forward `tanh`: same arithmetic as the
/// recompute-from-`x` rule (`tanh` is a pure function of `x`), minus the
/// second `tanh` evaluation per element.
fn gelu_backward_cached(gd: &[f32], xd: &[f32], th: &[f32], dst: &mut [f32]) {
    const C: f32 = 0.797_884_6;
    for i in 0..gd.len() {
        let x = xd[i];
        let t = th[i];
        let sech2 = 1.0 - t * t;
        let grad = 0.5 * (1.0 + t) + 0.5 * x * sech2 * C * (1.0 + 3.0 * 0.044_715 * x * x);
        dst[i] = gd[i] * grad;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn single(v: f32) -> Tensor {
        Tensor::vector(&[v])
    }

    #[test]
    fn add_forward_and_grad() {
        let mut t = Tape::new();
        let a = t.leaf(Tensor::vector(&[1.0, 2.0]));
        let b = t.leaf(Tensor::vector(&[3.0, 4.0]));
        let c = t.add(a, b);
        assert_eq!(t.value(c).data(), &[4.0, 6.0]);
        let s = t.sum_all(c);
        let g = t.backward(s, 0);
        assert_eq!(g.grad(a).unwrap().data(), &[1.0, 1.0]);
        assert_eq!(g.grad(b).unwrap().data(), &[1.0, 1.0]);
    }

    #[test]
    fn mul_grad_swaps_operands() {
        let mut t = Tape::new();
        let a = t.leaf(single(3.0));
        let b = t.leaf(single(5.0));
        let c = t.mul(a, b);
        let g = t.backward(c, 0);
        assert_eq!(g.grad(a).unwrap().item(), 5.0);
        assert_eq!(g.grad(b).unwrap().item(), 3.0);
    }

    #[test]
    fn div_grads() {
        let mut t = Tape::new();
        let a = t.leaf(single(6.0));
        let b = t.leaf(single(2.0));
        let c = t.div(a, b);
        assert_eq!(t.value(c).item(), 3.0);
        let g = t.backward(c, 0);
        assert!((g.grad(a).unwrap().item() - 0.5).abs() < 1e-6);
        assert!((g.grad(b).unwrap().item() + 1.5).abs() < 1e-6);
    }

    #[test]
    fn add_bias_broadcasts_rows() {
        let mut t = Tape::new();
        let a = t.leaf(Tensor::matrix(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let b = t.leaf(Tensor::vector(&[10.0, 20.0]));
        let c = t.add_bias(a, b);
        assert_eq!(t.value(c).data(), &[11.0, 22.0, 13.0, 24.0]);
        let s = t.sum_all(c);
        let g = t.backward(s, 0);
        assert_eq!(g.grad(b).unwrap().data(), &[2.0, 2.0]);
    }

    #[test]
    fn scale_rows_forward_and_grads() {
        let mut t = Tape::new();
        let a = t.leaf(Tensor::matrix(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let w = t.leaf(Tensor::vector(&[2.0, 0.5]));
        let c = t.scale_rows(a, w);
        assert_eq!(t.value(c).data(), &[2.0, 4.0, 1.5, 2.0]);
        let s = t.sum_all(c);
        let g = t.backward(s, 0);
        assert_eq!(g.grad(w).unwrap().data(), &[3.0, 7.0]);
        assert_eq!(g.grad(a).unwrap().data(), &[2.0, 2.0, 0.5, 0.5]);
    }

    #[test]
    fn relu_kills_negative_grad() {
        let mut t = Tape::new();
        let a = t.leaf(Tensor::vector(&[-1.0, 2.0]));
        let r = t.relu(a);
        assert_eq!(t.value(r).data(), &[0.0, 2.0]);
        let s = t.sum_all(r);
        let g = t.backward(s, 0);
        assert_eq!(g.grad(a).unwrap().data(), &[0.0, 1.0]);
    }

    #[test]
    fn tanh_grad_uses_output() {
        let mut t = Tape::new();
        let a = t.leaf(single(0.5));
        let y = t.tanh(a);
        let g = t.backward(y, 0);
        let expect = 1.0 - 0.5f32.tanh().powi(2);
        assert!((g.grad(a).unwrap().item() - expect).abs() < 1e-6);
    }

    #[test]
    fn gelu_matches_reference_points() {
        // Reference values from the tanh approximation itself at x=0 and x→∞.
        assert_eq!(gelu_fwd(0.0), 0.0);
        assert!((gelu_fwd(10.0) - 10.0).abs() < 1e-4);
        assert!(gelu_fwd(-10.0).abs() < 1e-4);
    }

    #[test]
    fn dropout_zero_p_is_identity() {
        let mut t = Tape::new();
        let mut rng = cf_rand::rngs::mock::StepRng::new(0, 1);
        let a = t.leaf(Tensor::vector(&[1.0, 2.0]));
        let d = t.dropout(a, 0.0, &mut rng);
        assert_eq!(d, a);
    }

    #[test]
    fn dropout_preserves_expectation_roughly() {
        use cf_rand::SeedableRng;
        let mut rng = cf_rand::rngs::StdRng::seed_from_u64(9);
        let mut t = Tape::new();
        let a = t.leaf(Tensor::full([10_000], 1.0));
        let d = t.dropout(a, 0.3, &mut rng);
        let m = t.value(d).mean();
        assert!((m - 1.0).abs() < 0.05, "mean after dropout {m}");
    }
}
