//! Reductions, softmax and layer normalization.

use crate::tape::{Tape, Var};
use crate::tensor::Tensor;

impl Tape {
    /// Sum of all elements, producing a scalar.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let value = Tensor::scalar(self.value(a).sum());
        self.push_bwd(value, move |g, t, grads| {
            let gi = g.item();
            let a_shape = *t.value(a).shape();
            grads.accumulate_with(a, &a_shape, |dst| dst.fill(gi));
        })
    }

    /// Mean of all elements, producing a scalar.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let n = self.value(a).numel() as f32;
        let value = Tensor::scalar(self.value(a).mean());
        self.push_bwd(value, move |g, t, grads| {
            let gi = g.item() / n;
            let a_shape = *t.value(a).shape();
            grads.accumulate_with(a, &a_shape, |dst| dst.fill(gi));
        })
    }

    /// Sums a rank-3 tensor over its middle dimension: `[B,T,d] -> [B,d]`.
    pub fn sum_dim1(&mut self, a: Var) -> Var {
        let (b, tt, d) = self.value(a).shape().as_batch_matrix();
        let av = self.value(a);
        let mut out = crate::pool::take_f32_zeroed(b * d);
        for bi in 0..b {
            for ti in 0..tt {
                let base = (bi * tt + ti) * d;
                for j in 0..d {
                    out[bi * d + j] += av.data()[base + j];
                }
            }
        }
        self.push_bwd(Tensor::new([b, d], out), move |g, t, grads| {
            let (b, tt, d) = t.value(a).shape().as_batch_matrix();
            let a_shape = *t.value(a).shape();
            grads.accumulate_with(a, &a_shape, |dst| {
                for bi in 0..b {
                    for ti in 0..tt {
                        let base = (bi * tt + ti) * d;
                        dst[base..base + d].copy_from_slice(&g.data()[bi * d..(bi + 1) * d]);
                    }
                }
            });
        })
    }

    /// Row-wise softmax over the last dimension (numerically stabilized).
    pub fn softmax_last(&mut self, a: Var) -> Var {
        let av = self.value(a);
        let d = av.shape().last_dim();
        let rows = av.shape().leading();
        let mut out = av.clone();
        for r in 0..rows {
            softmax_row(&mut out.data_mut()[r * d..(r + 1) * d]);
        }
        let node = self.push_value(out);
        self.set_bwd(node, move |g, t, grads| {
            let y = t.value(node);
            let d = y.shape().last_dim();
            let rows = y.shape().leading();
            let y_shape = *y.shape();
            grads.accumulate_with(a, &y_shape, |dst| {
                softmax_backward_rows(y.data(), g.data(), dst, rows, d);
            });
        });
        node
    }

    /// Row-wise layer normalization over the last dimension, without affine
    /// parameters (compose with [`Tape::mul_bcast_row`]/[`Tape::add_bias`]).
    pub fn layer_norm_last(&mut self, a: Var, eps: f32) -> Var {
        let av = self.value(a);
        let d = av.shape().last_dim();
        let rows = av.shape().leading();
        let mut out = av.clone();
        // Cache per-row statistics for the backward rule. The pooled scratch
        // is recycled when the closure is dropped on tape reset.
        let inv_stds = crate::pool::ScratchF32(layer_norm_rows(out.data_mut(), rows, d, eps));
        let node = self.push_value(out);
        self.set_bwd(node, move |g, t, grads| {
            // With y = (x - μ)/σ: dx = (g - mean(g) - y·mean(g⊙y)) / σ
            let y = t.value(node);
            let d = y.shape().last_dim();
            let rows = y.shape().leading();
            let y_shape = *y.shape();
            grads.accumulate_with(a, &y_shape, |dst| {
                layer_norm_backward_rows(y.data(), g.data(), &inv_stds, dst, rows, d);
            });
        });
        node
    }
}

crate::simd::simd_hot! {

/// In-place row-wise layer normalization of `data` viewed as `[rows, d]`;
/// returns the per-row `1/σ` the backward rule needs. Shared with the
/// tape-free path ([`crate::infer::InferCtx`]) so both stay bitwise identical.
pub(crate) fn layer_norm_rows(data: &mut [f32], rows: usize, d: usize, eps: f32) -> Vec<f32> {
    let mut inv_stds = crate::pool::take_f32(rows);
    for r in 0..rows {
        let slice = &mut data[r * d..(r + 1) * d];
        let mean: f32 = slice.iter().sum::<f32>() / d as f32;
        let var: f32 = slice.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / d as f32;
        let inv = 1.0 / (var + eps).sqrt();
        for x in slice.iter_mut() {
            *x = (*x - mean) * inv;
        }
        inv_stds.push(inv);
    }
    inv_stds
}

/// Softmax backward: `dst[r] = y_r ⊙ (g_r − ⟨y_r, g_r⟩)` (dot ascending).
pub(crate) fn softmax_backward_rows(yd: &[f32], gd: &[f32], dst: &mut [f32], rows: usize, d: usize) {
    for r in 0..rows {
        let yr = &yd[r * d..(r + 1) * d];
        let gr = &gd[r * d..(r + 1) * d];
        let dot: f32 = yr.iter().zip(gr).map(|(&yi, &gi)| yi * gi).sum();
        for j in 0..d {
            dst[r * d + j] = yr[j] * (gr[j] - dot);
        }
    }
}

/// Layer-norm backward: `dst[r] = (g_r − mean(g_r) − y_r·mean(g_r ⊙ y_r))/σ_r`
/// (both row means ascending).
pub(crate) fn layer_norm_backward_rows(
    yd: &[f32],
    gd: &[f32],
    inv_stds: &[f32],
    dst: &mut [f32],
    rows: usize,
    d: usize,
) {
    for r in 0..rows {
        let yr = &yd[r * d..(r + 1) * d];
        let gr = &gd[r * d..(r + 1) * d];
        let mg: f32 = gr.iter().sum::<f32>() / d as f32;
        let mgy: f32 = gr.iter().zip(yr).map(|(&gi, &yi)| gi * yi).sum::<f32>() / d as f32;
        let inv = inv_stds[r];
        for j in 0..d {
            dst[r * d + j] = (gr[j] - mg - yr[j] * mgy) * inv;
        }
    }
}

}

/// In-place stabilized softmax of one row. Shared with the fused attention
/// kernel so both paths stay bitwise identical.
#[inline(always)]
pub(crate) fn softmax_row(row: &mut [f32]) {
    let max = row.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
    let mut sum = 0.0f32;
    for x in row.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    for x in row.iter_mut() {
        *x /= sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut t = Tape::new();
        let a = t.leaf(Tensor::matrix(&[&[1.0, 2.0, 3.0], &[-5.0, 0.0, 5.0]]));
        let y = t.softmax_last(a);
        for r in 0..2 {
            let s: f32 = t.value(y).row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let mut t = Tape::new();
        let a = t.leaf(Tensor::vector(&[1000.0, 1000.0]));
        let y = t.softmax_last(a);
        assert!((t.value(y).data()[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn softmax_grad_sums_to_zero_per_row() {
        // sum of softmax grad over a row is 0 because outputs sum to 1.
        let mut t = Tape::new();
        let a = t.leaf(Tensor::vector(&[0.3, -1.0, 2.0]));
        let y = t.softmax_last(a);
        let first = t.row(y, 0); // [3] -> picks row 0 of [1? ]  (rank-1 so leading=1)
        let s = t.sum_all(first);
        let _ = s;
        let pick = t.slice_last(y, 0, 1);
        let l = t.sum_all(pick);
        let g = t.backward(l, 0);
        let da = g.grad(a).unwrap();
        let sum: f32 = da.data().iter().sum();
        assert!(sum.abs() < 1e-6, "softmax grads should sum to 0, got {sum}");
    }

    #[test]
    fn layer_norm_normalizes_rows() {
        let mut t = Tape::new();
        let a = t.leaf(Tensor::matrix(&[
            &[1.0, 2.0, 3.0, 4.0],
            &[10.0, 10.0, 30.0, 30.0],
        ]));
        let y = t.layer_norm_last(a, 1e-5);
        for r in 0..2 {
            let row = t.value(y).row(r);
            let mean: f32 = row.iter().sum::<f32>() / 4.0;
            let var: f32 = row.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5);
            assert!((var - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn layer_norm_grad_orthogonal_to_ones() {
        // The LN output is mean-free, so the gradient wrt x of any loss is
        // orthogonal to the all-ones direction.
        let mut t = Tape::new();
        let a = t.leaf(Tensor::vector(&[0.5, -1.5, 2.0, 0.1]));
        let y = t.layer_norm_last(a, 1e-5);
        let w = t.leaf(Tensor::vector(&[1.0, -2.0, 0.3, 0.7]));
        let p = t.mul(y, w);
        let l = t.sum_all(p);
        let g = t.backward(l, 0);
        let sum: f32 = g.grad(a).unwrap().data().iter().sum();
        assert!(sum.abs() < 1e-4, "LN grad not mean-free: {sum}");
    }

    #[test]
    fn sum_dim1_collapses_tokens() {
        let mut t = Tape::new();
        let a = t.leaf(Tensor::new([2, 2, 2], (0..8).map(|x| x as f32).collect()));
        let s = t.sum_dim1(a);
        assert_eq!(t.value(s).data(), &[2.0, 4.0, 10.0, 12.0]);
        let l = t.sum_all(s);
        let g = t.backward(l, 0);
        assert!(g.grad(a).unwrap().data().iter().all(|&x| x == 1.0));
    }

    #[test]
    fn mean_all_grad_is_uniform() {
        let mut t = Tape::new();
        let a = t.leaf(Tensor::vector(&[2.0, 4.0, 6.0, 8.0]));
        let m = t.mean_all(a);
        assert_eq!(t.value(m).item(), 5.0);
        let g = t.backward(m, 0);
        assert!(g
            .grad(a)
            .unwrap()
            .data()
            .iter()
            .all(|&x| (x - 0.25).abs() < 1e-7));
    }
}
