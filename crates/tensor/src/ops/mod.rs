//! Differentiable operations, implemented as inherent methods on
//! [`crate::tape::Tape`].
//!
//! Each op evaluates its forward value eagerly and records a backward closure
//! that accumulates parent gradients. Ops that operate "row-wise" treat a
//! tensor of any rank as the matrix `[leading, last_dim]`, which lets the same
//! kernel serve 2-D activations and 3-D batched sequences.

pub(crate) mod attn;
pub(crate) mod elementwise;
mod extra;
mod linalg;
mod loss;
pub(crate) mod reduce;
mod shape_ops;
