//! Shape-manipulating ops: reshape, slicing/concatenation along the last dim,
//! row gathering and stacking.

use crate::shape::Shape;
use crate::tape::{Tape, Var};
use crate::tensor::Tensor;

impl Tape {
    /// Metadata-only reshape (element count preserved).
    pub fn reshape(&mut self, a: Var, shape: impl Into<Shape>) -> Var {
        let old = *self.value(a).shape();
        let value = self.value(a).reshape(shape);
        self.push_bwd(value, move |g, _t, grads| {
            grads.accumulate_with(a, &old, |dst| dst.copy_from_slice(g.data()));
        })
    }

    /// Slices `len` columns starting at `start` from the last dimension.
    pub fn slice_last(&mut self, a: Var, start: usize, len: usize) -> Var {
        let av = self.value(a);
        let d = av.shape().last_dim();
        assert!(
            start + len <= d,
            "slice_last [{start},{}) out of last dim {d}",
            start + len
        );
        let rows = av.shape().leading();
        let mut out = crate::pool::take_f32(rows * len);
        for r in 0..rows {
            out.extend_from_slice(&av.data()[r * d + start..r * d + start + len]);
        }
        let shape = av.shape().with_last(len);
        self.push_bwd(Tensor::new(shape, out), move |g, t, grads| {
            let av = t.value(a);
            let d = av.shape().last_dim();
            let rows = av.shape().leading();
            let a_shape = *av.shape();
            grads.accumulate_with(a, &a_shape, |dst| {
                for r in 0..rows {
                    dst[r * d + start..r * d + start + len]
                        .copy_from_slice(&g.data()[r * len..(r + 1) * len]);
                }
            });
        })
    }

    /// Concatenates tensors along the last dimension. All inputs must share
    /// their leading dims.
    pub fn concat_last(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_last of zero tensors");
        let rows = self.value(parts[0]).shape().leading();
        let mut widths = crate::pool::ScratchUsize::with_capacity(parts.len());
        for &p in parts {
            widths.push(self.value(p).shape().last_dim());
            assert_eq!(
                self.value(p).shape().leading(),
                rows,
                "concat_last leading-dim mismatch"
            );
        }
        let total: usize = widths.iter().sum();
        let mut out = crate::pool::take_f32(rows * total);
        for r in 0..rows {
            for (&p, &w) in parts.iter().zip(widths.iter()) {
                let v = self.value(p);
                out.extend_from_slice(&v.data()[r * w..(r + 1) * w]);
            }
        }
        let shape = self.value(parts[0]).shape().with_last(total);
        // `Var` is a plain index, so the capture is a pooled index buffer
        // (recycled when the closure is dropped on tape reset).
        let parts = crate::pool::ScratchUsize(parts.iter().fold(
            crate::pool::take_usize(parts.len()),
            |mut v, p| {
                v.push(p.0);
                v
            },
        ));
        self.push_bwd(Tensor::new(shape, out), move |g, t, grads| {
            let rows = t.value(Var(parts[0])).shape().leading();
            let mut widths = crate::pool::ScratchUsize::with_capacity(parts.len());
            for &p in parts.iter() {
                widths.push(t.value(Var(p)).shape().last_dim());
            }
            let total: usize = widths.iter().sum();
            for (pi, &p) in parts.iter().enumerate() {
                let w = widths[pi];
                let offset: usize = widths[..pi].iter().sum();
                let p_shape = *t.value(Var(p)).shape();
                grads.accumulate_with(Var(p), &p_shape, |dst| {
                    for r in 0..rows {
                        dst[r * w..(r + 1) * w]
                            .copy_from_slice(&g.data()[r * total + offset..r * total + offset + w]);
                    }
                });
            }
        })
    }

    /// Gathers rows of `a` (viewed as `[L, d]`) by index, producing
    /// `[indices.len(), d]`. Serves embedding lookup (`a` = table) and
    /// per-sequence token selection (`a` = `[B,T,d]` viewed as `[B*T, d]`).
    /// The backward pass scatter-adds, so repeated indices are safe.
    pub fn select_rows(&mut self, a: Var, indices: &[usize]) -> Var {
        let av = self.value(a);
        let d = av.shape().last_dim();
        let rows = av.shape().leading();
        let mut out = crate::pool::take_f32(indices.len() * d);
        for &i in indices {
            assert!(i < rows, "select_rows index {i} out of {rows} rows");
            out.extend_from_slice(&av.data()[i * d..(i + 1) * d]);
        }
        let n = indices.len();
        let indices = crate::pool::ScratchUsize::copy_of(indices);
        self.push_bwd(Tensor::new([n, d], out), move |g, t, grads| {
            let av = t.value(a);
            let d = av.shape().last_dim();
            let a_shape = *av.shape();
            grads.accumulate_with(a, &a_shape, |dst| {
                for (o, &i) in indices.iter().enumerate() {
                    for j in 0..d {
                        dst[i * d + j] += g.data()[o * d + j];
                    }
                }
            });
        })
    }

    /// Stacks rank-1 vectors of equal length into a `[k, d]` matrix.
    pub fn stack_rows(&mut self, rows: &[Var]) -> Var {
        assert!(!rows.is_empty(), "stack_rows of zero vectors");
        let d = self.value(rows[0]).numel();
        let mut out = crate::pool::take_f32(rows.len() * d);
        for &r in rows {
            let v = self.value(r);
            assert_eq!(v.numel(), d, "stack_rows length mismatch");
            out.extend_from_slice(v.data());
        }
        let k = rows.len();
        let rows = crate::pool::ScratchUsize(rows.iter().fold(
            crate::pool::take_usize(rows.len()),
            |mut v, r| {
                v.push(r.0);
                v
            },
        ));
        self.push_bwd(Tensor::new([k, d], out), move |g, t, grads| {
            for (i, &r) in rows.iter().enumerate() {
                let shape = *t.value(Var(r)).shape();
                grads.accumulate_with(Var(r), &shape, |dst| dst.copy_from_slice(g.row(i)));
            }
        })
    }

    /// Extracts row `i` of `a` (viewed as `[L, d]`) as a rank-1 vector.
    pub fn row(&mut self, a: Var, i: usize) -> Var {
        let av = self.value(a);
        let d = av.shape().last_dim();
        let mut data = crate::pool::take_f32(d);
        data.extend_from_slice(av.row(i));
        let value = Tensor::new([d], data);
        self.push_bwd(value, move |g, t, grads| {
            let av = t.value(a);
            let d = av.shape().last_dim();
            let a_shape = *av.shape();
            grads.accumulate_with(a, &a_shape, |dst| {
                dst[i * d..(i + 1) * d].copy_from_slice(g.data());
            });
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reshape_round_trips_grad() {
        let mut t = Tape::new();
        let a = t.leaf(Tensor::new([2, 3], (0..6).map(|x| x as f32).collect()));
        let r = t.reshape(a, [3, 2]);
        let s = t.sum_all(r);
        let g = t.backward(s, 0);
        assert_eq!(g.grad(a).unwrap().shape().as_matrix(), (2, 3));
    }

    #[test]
    fn slice_then_concat_is_identity() {
        let mut t = Tape::new();
        let a = t.leaf(Tensor::new([2, 4], (0..8).map(|x| x as f32).collect()));
        let left = t.slice_last(a, 0, 2);
        let right = t.slice_last(a, 2, 2);
        let back = t.concat_last(&[left, right]);
        assert_eq!(t.value(back).data(), t.value(a).data());
        let s = t.sum_all(back);
        let g = t.backward(s, 0);
        assert!(g.grad(a).unwrap().data().iter().all(|&x| x == 1.0));
    }

    #[test]
    fn select_rows_gathers_and_scatters() {
        let mut t = Tape::new();
        let a = t.leaf(Tensor::matrix(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]));
        let sel = t.select_rows(a, &[2, 0, 2]);
        assert_eq!(t.value(sel).data(), &[5.0, 6.0, 1.0, 2.0, 5.0, 6.0]);
        let s = t.sum_all(sel);
        let g = t.backward(s, 0);
        // row 2 selected twice -> grad 2, row 0 once -> 1, row 1 never -> 0.
        assert_eq!(g.grad(a).unwrap().data(), &[1.0, 1.0, 0.0, 0.0, 2.0, 2.0]);
    }

    #[test]
    fn select_rows_on_rank3_view() {
        let mut t = Tape::new();
        let a = t.leaf(Tensor::new([2, 2, 2], (0..8).map(|x| x as f32).collect()));
        // [B*T, d] view; pick token 1 of batch 0 and token 0 of batch 1.
        let sel = t.select_rows(a, &[1, 2]);
        assert_eq!(t.value(sel).data(), &[2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn stack_rows_builds_matrix_and_routes_grads() {
        let mut t = Tape::new();
        let a = t.leaf(Tensor::vector(&[1.0, 2.0]));
        let b = t.leaf(Tensor::vector(&[3.0, 4.0]));
        let m = t.stack_rows(&[a, b]);
        assert_eq!(t.value(m).shape().as_matrix(), (2, 2));
        let r1 = t.row(m, 1);
        let s = t.sum_all(r1);
        let g = t.backward(s, 0);
        assert!(g.grad(a).is_none() || g.grad(a).unwrap().data().iter().all(|&x| x == 0.0));
        assert_eq!(g.grad(b).unwrap().data(), &[1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "out of last dim")]
    fn slice_last_bounds_checked() {
        let mut t = Tape::new();
        let a = t.leaf(Tensor::zeros([2, 3]));
        t.slice_last(a, 2, 2);
    }
}
