//! Fused multi-head scaled dot-product attention.
//!
//! [`Tape::fused_attention`] runs every head of `softmax(scale·QKᵀ + M)·V`
//! through two tape nodes operating on head-strided `[B·H, T, d_h]` views of
//! the packed `[B, T, d]` projections, instead of the compositional graph of
//! `heads × (slice, transpose, bmm, scale, mask, softmax, bmm) + concat`
//! nodes. No per-head tensor, transpose, or concat buffer is materialized in
//! forward or backward.
//!
//! Bitwise contract: every reduction below consumes its terms in the same
//! order as the compositional path (dot products ascending in the reduction
//! index, one accumulator per output element), `scale` and mask are applied
//! with the same grouping (`scale·dot + m`), and the rows go through the very
//! same [`softmax_row`] — so outputs and gradients are bit-identical to the
//! reference graph, which `MultiHeadAttention::forward_reference` keeps
//! available for the equivalence test.

use super::reduce::softmax_row;
use crate::tape::{Tape, Var};
use crate::tensor::Tensor;

impl Tape {
    /// Multi-head attention core over packed projections: `q`, `k`, `v` are
    /// `[B, T, d]` with `heads` head bands of width `d_h = d / heads` laid out
    /// along the last axis. Computes `softmax(scale·QKᵀ + M)·V` per head and
    /// returns the heads re-packed as `[B, T, d]` (what the output projection
    /// consumes). `add_mask`, when given, is a `[B, T, T]` additive logit mask
    /// shared by all heads.
    ///
    /// Records two nodes: the `[B·H, T, T]` attention probabilities (softmax
    /// fused with the scaled masked scores) and the merged context. Backward
    /// accumulates `dQ`, `dK`, `dV` straight into the gradient slots through
    /// head-strided kernels.
    pub fn fused_attention(
        &mut self,
        q: Var,
        k: Var,
        v: Var,
        heads: usize,
        scale: f32,
        add_mask: Option<&Tensor>,
    ) -> Var {
        let (bsz, seq, d) = self.value(q).shape().as_batch_matrix();
        assert_eq!(
            self.value(k).shape(),
            self.value(q).shape(),
            "fused_attention q/k shape mismatch"
        );
        assert_eq!(
            self.value(v).shape(),
            self.value(q).shape(),
            "fused_attention q/v shape mismatch"
        );
        assert!(
            heads > 0 && d % heads == 0,
            "dim {d} not divisible by heads {heads}"
        );
        if let Some(m) = add_mask {
            assert_eq!(
                m.shape().as_batch_matrix(),
                (bsz, seq, seq),
                "fused_attention mask shape mismatch"
            );
        }
        // Node 1: probs[(bi·H + h), i, j] = softmax_j(scale·⟨q_i, k_j⟩ + m_ij)
        // over head band h of rows i, j.
        let probs = attn_probs_forward(
            self.value(q).data(),
            self.value(k).data(),
            add_mask,
            bsz,
            seq,
            d,
            heads,
            scale,
        );
        let pnode = self.push_value(Tensor::new([bsz * heads, seq, seq], probs));
        self.set_bwd(pnode, move |g, t, grads| {
            let qv = t.value(q);
            let kv = t.value(k);
            let (bsz, seq, d) = qv.shape().as_batch_matrix();
            let y = t.value(pnode);
            // Fold the softmax backward and the scale into the score
            // gradient: ds = scale·(y ⊙ (g − ⟨y, g⟩)) per row, the exact
            // composition of the softmax_last and mul_scalar rules.
            let rows = bsz * heads * seq;
            let mut ds = crate::pool::ScratchF32::zeroed(rows * seq);
            attn_dscore_rows(y.data(), g.data(), &mut ds, rows, seq, scale);
            let q_shape = *qv.shape();
            grads.accumulate_with(q, &q_shape, |dst| {
                attn_dq(&ds, kv.data(), dst, bsz, seq, d, heads);
            });
            let k_shape = *kv.shape();
            grads.accumulate_with(k, &k_shape, |dst| {
                attn_dk(&ds, qv.data(), dst, bsz, seq, d, heads);
            });
        });

        // Node 2: merged[bi, i, h·d_h + p] = Σ_t probs[(bi·H + h), i, t]·V[t]
        // — the per-head context vectors written straight into their packed
        // `[B, T, d]` bands (what concat_last assembled before).
        let merged = attn_merge_forward(
            self.value(pnode).data(),
            self.value(v).data(),
            bsz,
            seq,
            d,
            heads,
        );
        self.push_bwd(Tensor::new([bsz, seq, d], merged), move |g, t, grads| {
            let pv = t.value(pnode);
            let vv = t.value(v);
            let (bsz, seq, d) = vv.shape().as_batch_matrix();
            let p_shape = *pv.shape();
            grads.accumulate_with(pnode, &p_shape, |dst| {
                attn_dprobs(g.data(), vv.data(), dst, bsz, seq, d, heads);
            });
            let v_shape = *vv.shape();
            grads.accumulate_with(v, &v_shape, |dst| {
                attn_dv(pv.data(), g.data(), dst, bsz, seq, d, heads);
            });
        })
    }
}

// ---- parallel dispatch ---------------------------------------------------
//
// Every kernel below iterates `for bi { for h { … } }` over (batch, head)
// bands whose writes are element-disjoint. The dispatchers fan the *batch*
// dimension out across the thread pool: each batch owns one contiguous block
// of the output (`[H·T·T]` of probs, `[T·d]` of packed projections), so
// threads receive genuinely disjoint `&mut` slices — no aliasing, and every
// band's float-op sequence is unchanged, keeping results bitwise identical
// at any thread count (see `DESIGN.md` §12).

/// Work floor (multiply count) above which an attention kernel fans out.
/// Attention problems here are much smaller than GEMMs, so the floor sits
/// below `tensor::PAR_MIN_FLOPS`.
const PAR_MIN_FLOPS: usize = 64 * 1024;

/// Runs `f(lo, hi)` over `0..n` — one call on the caller when the work is
/// small, else one call per pool slice with a contiguous subrange.
fn par_ranges(n: usize, flops: usize, f: impl Fn(usize, usize) + Sync) {
    if flops >= PAR_MIN_FLOPS {
        crate::pool::parallel_for(n, |r| {
            if !r.is_empty() {
                f(r.start, r.end);
            }
        });
    } else {
        f(0, n);
    }
}

/// Forward half of the probability node: `softmax_j(scale·⟨q_i, k_j⟩ + m_ij)`
/// per head band, producing the flat `[B·H, T, T]` buffer. Shared with the
/// tape-free path ([`crate::infer::InferCtx`]) so both stay bitwise identical.
#[allow(clippy::too_many_arguments)]
pub(crate) fn attn_probs_forward(
    qd: &[f32],
    kd: &[f32],
    add_mask: Option<&Tensor>,
    bsz: usize,
    seq: usize,
    d: usize,
    heads: usize,
    scale: f32,
) -> Vec<f32> {
    let dh = d / heads;
    let block = heads * seq * seq;
    let mut probs = crate::pool::take_f32_zeroed(bsz * block);
    let shared = crate::pool::SharedMut::new(&mut probs);
    par_ranges(bsz, bsz * block * dh, |b0, b1| {
        // SAFETY: batch blocks are contiguous and disjoint across slices.
        let out = unsafe { shared.get(b0 * block, (b1 - b0) * block) };
        attn_probs_range(qd, kd, add_mask, out, b0, b1, seq, d, heads, scale);
    });
    probs
}

/// Forward half of the merge node: per-head context vectors written straight
/// into their packed `[B, T, d]` bands. Shared with the tape-free path.
pub(crate) fn attn_merge_forward(
    pd: &[f32],
    vd: &[f32],
    bsz: usize,
    seq: usize,
    d: usize,
    heads: usize,
) -> Vec<f32> {
    let block = seq * d;
    let mut merged = crate::pool::take_f32_zeroed(bsz * block);
    let shared = crate::pool::SharedMut::new(&mut merged);
    par_ranges(bsz, bsz * seq * seq * d, |b0, b1| {
        // SAFETY: batch blocks are contiguous and disjoint across slices.
        let out = unsafe { shared.get(b0 * block, (b1 - b0) * block) };
        attn_merge_range(pd, vd, out, b0, b1, seq, d, heads);
    });
    merged
}

/// Backward of the softmax-probability node folded with the `scale` factor:
/// `ds = scale·(y ⊙ (g − ⟨y, g⟩))` per row — the exact composition of the
/// softmax_last and mul_scalar rules (dot ascending in `j`). Rows are
/// independent, so they split across the pool by contiguous range.
pub(crate) fn attn_dscore_rows(
    yd: &[f32],
    gd: &[f32],
    ds: &mut [f32],
    rows: usize,
    seq: usize,
    scale: f32,
) {
    let shared = crate::pool::SharedMut::new(ds);
    par_ranges(rows, rows * seq * 2, |r0, r1| {
        // SAFETY: row ranges are contiguous and disjoint across slices.
        let out = unsafe { shared.get(r0 * seq, (r1 - r0) * seq) };
        attn_dscore_range(yd, gd, out, r0, r1, seq, scale);
    });
}

/// `dQ[i] += Σ_j ds[i][j]·K[j]` per head band (j ascending).
pub(crate) fn attn_dq(
    ds: &[f32],
    kd: &[f32],
    dst: &mut [f32],
    bsz: usize,
    seq: usize,
    d: usize,
    heads: usize,
) {
    let shared = crate::pool::SharedMut::new(dst);
    par_ranges(bsz, bsz * seq * seq * d, |b0, b1| {
        // SAFETY: batch blocks are contiguous and disjoint across slices.
        let out = unsafe { shared.get(b0 * seq * d, (b1 - b0) * seq * d) };
        attn_dq_range(ds, kd, out, b0, b1, seq, d, heads);
    });
}

/// `dK[j] += Σ_i Q[i]·ds[i][j]` per head band (i ascending).
pub(crate) fn attn_dk(
    ds: &[f32],
    qd: &[f32],
    dst: &mut [f32],
    bsz: usize,
    seq: usize,
    d: usize,
    heads: usize,
) {
    let shared = crate::pool::SharedMut::new(dst);
    par_ranges(bsz, bsz * seq * seq * d, |b0, b1| {
        // SAFETY: batch blocks are contiguous and disjoint across slices.
        let out = unsafe { shared.get(b0 * seq * d, (b1 - b0) * seq * d) };
        attn_dk_range(ds, qd, out, b0, b1, seq, d, heads);
    });
}

/// `dprobs[i][t] = ⟨g[i], V[t]⟩` per head band (p ascending).
pub(crate) fn attn_dprobs(
    gd: &[f32],
    vd: &[f32],
    dst: &mut [f32],
    bsz: usize,
    seq: usize,
    d: usize,
    heads: usize,
) {
    let block = heads * seq * seq;
    let shared = crate::pool::SharedMut::new(dst);
    par_ranges(bsz, bsz * seq * seq * d, |b0, b1| {
        // SAFETY: batch blocks are contiguous and disjoint across slices.
        let out = unsafe { shared.get(b0 * block, (b1 - b0) * block) };
        attn_dprobs_range(gd, vd, out, b0, b1, seq, d, heads);
    });
}

/// `dV[t] += Σ_i probs[i][t]·g[i]` per head band (i ascending).
pub(crate) fn attn_dv(
    pd: &[f32],
    gd: &[f32],
    dst: &mut [f32],
    bsz: usize,
    seq: usize,
    d: usize,
    heads: usize,
) {
    let shared = crate::pool::SharedMut::new(dst);
    par_ranges(bsz, bsz * seq * seq * d, |b0, b1| {
        // SAFETY: batch blocks are contiguous and disjoint across slices.
        let out = unsafe { shared.get(b0 * seq * d, (b1 - b0) * seq * d) };
        attn_dv_range(pd, gd, out, b0, b1, seq, d, heads);
    });
}

crate::simd::simd_hot! {

/// [`attn_probs_forward`] over batches `b0..b1`; `probs` is that batch
/// band's contiguous `[(b1-b0)·H, T, T]` block.
#[allow(clippy::too_many_arguments)]
fn attn_probs_range(
    qd: &[f32],
    kd: &[f32],
    add_mask: Option<&Tensor>,
    probs: &mut [f32],
    b0: usize,
    b1: usize,
    seq: usize,
    d: usize,
    heads: usize,
    scale: f32,
) {
    let dh = d / heads;
    for bi in b0..b1 {
        for h in 0..heads {
            let off = h * dh;
            for i in 0..seq {
                let qrow = &qd[(bi * seq + i) * d + off..][..dh];
                let row = &mut probs[(((bi - b0) * heads + h) * seq + i) * seq..][..seq];
                for (j, slot) in row.iter_mut().enumerate() {
                    let krow = &kd[(bi * seq + j) * d + off..][..dh];
                    let mut s = 0.0f32;
                    for p in 0..dh {
                        s += qrow[p] * krow[p];
                    }
                    let mut val = scale * s;
                    if let Some(m) = add_mask {
                        val += m.data()[(bi * seq + i) * seq + j];
                    }
                    *slot = val;
                }
                softmax_row(row);
            }
        }
    }
}

/// [`attn_merge_forward`] over batches `b0..b1`; `merged` is that band's
/// contiguous `[(b1-b0), T, d]` block.
fn attn_merge_range(
    pd: &[f32],
    vd: &[f32],
    merged: &mut [f32],
    b0: usize,
    b1: usize,
    seq: usize,
    d: usize,
    heads: usize,
) {
    let dh = d / heads;
    for bi in b0..b1 {
        for h in 0..heads {
            let off = h * dh;
            for i in 0..seq {
                let prow = &pd[((bi * heads + h) * seq + i) * seq..][..seq];
                let orow = &mut merged[((bi - b0) * seq + i) * d + off..][..dh];
                for (t_, &pv) in prow.iter().enumerate() {
                    let vrow = &vd[(bi * seq + t_) * d + off..][..dh];
                    for p in 0..dh {
                        orow[p] += pv * vrow[p];
                    }
                }
            }
        }
    }
}

/// [`attn_dscore_rows`] over rows `r0..r1`; `ds` is that contiguous band.
fn attn_dscore_range(
    yd: &[f32],
    gd: &[f32],
    ds: &mut [f32],
    r0: usize,
    r1: usize,
    seq: usize,
    scale: f32,
) {
    for r in r0..r1 {
        let yr = &yd[r * seq..(r + 1) * seq];
        let gr = &gd[r * seq..(r + 1) * seq];
        let mut dot = 0.0f32;
        for j in 0..seq {
            dot += yr[j] * gr[j];
        }
        let dsr = &mut ds[(r - r0) * seq..(r - r0 + 1) * seq];
        for j in 0..seq {
            dsr[j] = scale * (yr[j] * (gr[j] - dot));
        }
    }
}

/// [`attn_dq`] over batches `b0..b1`; `dst` is that band's `[.., T, d]`.
fn attn_dq_range(
    ds: &[f32],
    kd: &[f32],
    dst: &mut [f32],
    b0: usize,
    b1: usize,
    seq: usize,
    d: usize,
    heads: usize,
) {
    let dh = d / heads;
    for bi in b0..b1 {
        for h in 0..heads {
            let off = h * dh;
            for i in 0..seq {
                let dsr = &ds[((bi * heads + h) * seq + i) * seq..][..seq];
                let drow = &mut dst[((bi - b0) * seq + i) * d + off..][..dh];
                for (j, &s) in dsr.iter().enumerate() {
                    let krow = &kd[(bi * seq + j) * d + off..][..dh];
                    for p in 0..dh {
                        drow[p] += s * krow[p];
                    }
                }
            }
        }
    }
}

/// [`attn_dk`] over batches `b0..b1`; `dst` is that band's `[.., T, d]`.
fn attn_dk_range(
    ds: &[f32],
    qd: &[f32],
    dst: &mut [f32],
    b0: usize,
    b1: usize,
    seq: usize,
    d: usize,
    heads: usize,
) {
    let dh = d / heads;
    for bi in b0..b1 {
        for h in 0..heads {
            let off = h * dh;
            for i in 0..seq {
                let dsr = &ds[((bi * heads + h) * seq + i) * seq..][..seq];
                let qrow = &qd[(bi * seq + i) * d + off..][..dh];
                for (j, &s) in dsr.iter().enumerate() {
                    let drow = &mut dst[((bi - b0) * seq + j) * d + off..][..dh];
                    for p in 0..dh {
                        drow[p] += qrow[p] * s;
                    }
                }
            }
        }
    }
}

/// [`attn_dprobs`] over batches `b0..b1`; `dst` is that band's
/// `[(b1-b0)·H, T, T]` block.
fn attn_dprobs_range(
    gd: &[f32],
    vd: &[f32],
    dst: &mut [f32],
    b0: usize,
    b1: usize,
    seq: usize,
    d: usize,
    heads: usize,
) {
    let dh = d / heads;
    for bi in b0..b1 {
        for h in 0..heads {
            let off = h * dh;
            for i in 0..seq {
                let gr = &gd[(bi * seq + i) * d + off..][..dh];
                let drow = &mut dst[(((bi - b0) * heads + h) * seq + i) * seq..][..seq];
                for (t_, slot) in drow.iter_mut().enumerate() {
                    let vrow = &vd[(bi * seq + t_) * d + off..][..dh];
                    let mut s = 0.0f32;
                    for p in 0..dh {
                        s += gr[p] * vrow[p];
                    }
                    *slot += s;
                }
            }
        }
    }
}

/// [`attn_dv`] over batches `b0..b1`; `dst` is that band's `[.., T, d]`.
fn attn_dv_range(
    pd: &[f32],
    gd: &[f32],
    dst: &mut [f32],
    b0: usize,
    b1: usize,
    seq: usize,
    d: usize,
    heads: usize,
) {
    let dh = d / heads;
    for bi in b0..b1 {
        for h in 0..heads {
            let off = h * dh;
            for i in 0..seq {
                let gr = &gd[(bi * seq + i) * d + off..][..dh];
                let prow = &pd[((bi * heads + h) * seq + i) * seq..][..seq];
                for (t_, &s) in prow.iter().enumerate() {
                    let drow = &mut dst[((bi - b0) * seq + t_) * d + off..][..dh];
                    for p in 0..dh {
                        drow[p] += s * gr[p];
                    }
                }
            }
        }
    }
}

}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe(n: usize, scale: f32) -> Vec<f32> {
        (0..n)
            .map(|i| (i as f32 * 0.31 - 1.1) * scale * if i % 3 == 0 { -0.8 } else { 1.0 })
            .collect()
    }

    /// The compositional graph the fused op replaces, head by head.
    fn reference(
        t: &mut Tape,
        q: Var,
        k: Var,
        v: Var,
        heads: usize,
        scale: f32,
        add_mask: Option<&Tensor>,
    ) -> Var {
        let d = t.value(q).shape().last_dim();
        let dh = d / heads;
        let mut outs = Vec::with_capacity(heads);
        for h in 0..heads {
            let qh = t.slice_last(q, h * dh, dh);
            let kh = t.slice_last(k, h * dh, dh);
            let vh = t.slice_last(v, h * dh, dh);
            let scores = t.bmm_bt(qh, kh);
            let mut scores = t.mul_scalar(scores, scale);
            if let Some(m) = add_mask {
                scores = t.add_const(scores, m);
            }
            let probs = t.softmax_last(scores);
            outs.push(t.bmm(probs, vh));
        }
        t.concat_last(&outs)
    }

    fn run(fused: bool, masked: bool) -> (Vec<f32>, Vec<f32>, Vec<f32>, Vec<f32>) {
        let (b, seq, d, heads) = (2, 4, 6, 3);
        let mut t = Tape::new();
        let q = t.leaf(Tensor::new([b, seq, d], probe(b * seq * d, 0.9)));
        let k = t.leaf(Tensor::new([b, seq, d], probe(b * seq * d, 1.2)));
        let v = t.leaf(Tensor::new([b, seq, d], probe(b * seq * d, 0.6)));
        let mask = masked.then(|| {
            let mut m = vec![0.0f32; b * seq * seq];
            for i in 0..seq {
                m[(0 * seq + i) * seq + 3] = -1e9; // batch 0: key 3 padded
            }
            Tensor::new([b, seq, seq], m)
        });
        let scale = 1.0 / (2.0f32).sqrt();
        let y = if fused {
            t.fused_attention(q, k, v, heads, scale, mask.as_ref())
        } else {
            reference(&mut t, q, k, v, heads, scale, mask.as_ref())
        };
        let w = t.constant(Tensor::new([b, seq, d], probe(b * seq * d, 0.4)));
        let p = t.mul(y, w);
        let l = t.sum_all(p);
        let g = t.backward(l, 0);
        (
            t.value(y).data().to_vec(),
            g.grad(q).unwrap().data().to_vec(),
            g.grad(k).unwrap().data().to_vec(),
            g.grad(v).unwrap().data().to_vec(),
        )
    }

    #[test]
    fn fused_matches_compositional_path_bitwise() {
        assert_eq!(run(true, false), run(false, false));
    }

    #[test]
    fn fused_matches_compositional_path_bitwise_with_mask() {
        assert_eq!(run(true, true), run(false, true));
    }

    #[test]
    fn fused_attention_records_two_nodes() {
        let mut t = Tape::new();
        let q = t.leaf(Tensor::new([1, 3, 4], probe(12, 1.0)));
        let k = t.leaf(Tensor::new([1, 3, 4], probe(12, 0.7)));
        let v = t.leaf(Tensor::new([1, 3, 4], probe(12, 0.5)));
        let before = t.len();
        let _ = t.fused_attention(q, k, v, 2, 0.5, None);
        assert_eq!(t.len() - before, 2, "fused attention must add 2 nodes");
    }
}
