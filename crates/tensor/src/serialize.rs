//! Checkpointing: small self-describing binary formats for
//! [`crate::params::ParamStore`] and full training state (no external
//! serialization crates needed).
//!
//! Two on-disk formats exist (all integers little-endian):
//!
//! **CFT1** (legacy, params only) — still read, no longer written:
//! ```text
//! magic "CFT1" | u32 n_params
//! per param: u32 name_len | name bytes | u32 rank | u32 dims… | f32 data…
//! ```
//!
//! **CFT2** (current) — sectioned, CRC-checked, optionally carrying the
//! full training state for bitwise resume:
//! ```text
//! magic "CFT2"
//! section*: u8 tag | u64 body_len | body | u32 crc32(body)
//! end:      u8 0xFF | u32 crc32(concatenated section CRCs)
//! ```
//! Section tags: `0x01` params (CFT1 body), `0x02` Adam moments + step,
//! `0x03` RNG state words, `0x04` train cursor (epoch / best / patience),
//! `0x05` config fingerprint, `0x06` best-validation params (CFT1 body).
//! The params section is mandatory; the five state sections are all
//! present or all absent. Every section is integrity-checked before
//! anything is committed to the receiving store, so a corrupt checkpoint
//! is rejected with a typed error naming the failed section and the store
//! is left untouched.
//!
//! Durability: [`save_checkpoint_atomic`] writes `<path>.tmp`, fsyncs the
//! file, renames it over `path` and fsyncs the parent directory — a crash
//! at any byte offset leaves either the old or the new checkpoint on
//! disk, never a torn one.

use crate::optim::AdamSnapshot;
use crate::params::ParamStore;
use crate::tensor::Tensor;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC1: &[u8; 4] = b"CFT1";
const MAGIC2: &[u8; 4] = b"CFT2";

const TAG_PARAMS: u8 = 0x01;
const TAG_ADAM: u8 = 0x02;
const TAG_RNG: u8 = 0x03;
const TAG_TRAIN: u8 = 0x04;
const TAG_CONFIG: u8 = 0x05;
const TAG_BEST: u8 = 0x06;
const TAG_END: u8 = 0xFF;

/// No tensor in the model family comes close to this rank; anything larger
/// is a corrupt stream, not a checkpoint.
const MAX_RANK: usize = 16;

/// Sanity caps applied to every length field *before* it drives an
/// allocation: a corrupt or adversarial stream must produce a typed error,
/// never a multi-gigabyte `Vec` reservation or an abort.
const MAX_NAME_LEN: usize = 4096;
const MAX_PARAMS: usize = 1 << 20;
const MAX_DIM: usize = 1 << 28;
const MAX_NUMEL: usize = 1 << 31;
const MAX_SECTION_LEN: u64 = 1 << 31;

/// Errors raised while reading a checkpoint.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure (including unexpected end of stream).
    Io(io::Error),
    /// The stream does not start with a known checkpoint magic.
    BadMagic,
    /// Parameter count/name/shape disagrees with the receiving store.
    Mismatch(String),
    /// Structurally invalid data (bad lengths, non-UTF-8 names, truncated
    /// or malformed section bodies). The message names the section.
    Corrupt(String),
    /// A section's stored CRC32 does not match its bytes.
    BadCrc {
        /// Which section failed its integrity check.
        section: &'static str,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "io error: {e}"),
            CheckpointError::BadMagic => write!(f, "not a ChainsFormer checkpoint (bad magic)"),
            CheckpointError::Mismatch(m) => write!(f, "checkpoint mismatch: {m}"),
            CheckpointError::Corrupt(m) => write!(f, "corrupt checkpoint: {m}"),
            CheckpointError::BadCrc { section } => {
                write!(
                    f,
                    "corrupt checkpoint: section {section:?} failed its CRC check"
                )
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// CRC32 (IEEE, polynomial 0xEDB88320) — in-tree, table-driven.
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE 802.3) of a byte slice — the integrity check behind every
/// CFT2 section.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Training state carried by CFT2 checkpoints.
// ---------------------------------------------------------------------------

/// Everything beyond the parameters that a training run needs to resume
/// bit-for-bit: optimizer moments, the data-order RNG, and the
/// early-stopping cursor. The tape is deliberately absent — it is
/// re-derivable state, rebuilt by the next forward pass.
#[derive(Clone, Debug)]
pub struct TrainState {
    /// Adam step count and first/second moment estimates.
    pub adam: AdamSnapshot,
    /// The training RNG's xoshiro256++ state words at the epoch boundary.
    pub rng: [u64; 4],
    /// Index of the next epoch to run (epochs `0..next_epoch` completed).
    pub next_epoch: u64,
    /// Consecutive epochs without validation improvement (patience cursor).
    pub bad_epochs: u64,
    /// Epoch index of the best validation MAE so far, if any.
    pub best_epoch: Option<u64>,
    /// The best validation MAE so far (stored bit-exactly), if any.
    pub best_val: Option<f64>,
    /// Fingerprint of the model configuration the run was started with;
    /// resume refuses a checkpoint whose fingerprint disagrees.
    pub config_fingerprint: u64,
    /// Parameters at the best validation epoch (what early stopping ships),
    /// when validation has produced one.
    pub best_params: Option<ParamStore>,
}

// ---------------------------------------------------------------------------
// Body encoding helpers.
// ---------------------------------------------------------------------------

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Bounded cursor over a fully-read section body. Every overrun is a
/// typed `Corrupt` naming the section, never a panic.
struct Body<'a> {
    buf: &'a [u8],
    pos: usize,
    section: &'static str,
}

impl<'a> Body<'a> {
    fn new(buf: &'a [u8], section: &'static str) -> Self {
        Body {
            buf,
            pos: 0,
            section,
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let s = &self.buf[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(CheckpointError::Corrupt(format!(
                "section {:?}: truncated body",
                self.section
            ))),
        }
    }

    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn f32s(&mut self, n: usize) -> Result<Vec<f32>, CheckpointError> {
        let raw = self.take(n.checked_mul(4).ok_or_else(|| {
            CheckpointError::Corrupt(format!(
                "section {:?}: element count overflow",
                self.section
            ))
        })?)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4")))
            .collect())
    }

    fn finish(self) -> Result<(), CheckpointError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(CheckpointError::Corrupt(format!(
                "section {:?}: {} trailing bytes",
                self.section,
                self.buf.len() - self.pos
            )))
        }
    }

    fn corrupt(&self, msg: impl std::fmt::Display) -> CheckpointError {
        CheckpointError::Corrupt(format!("section {:?}: {msg}", self.section))
    }
}

/// Reads and validates a shape header (`u32 rank | u32 dims…`) against the
/// caps, returning the dims and their checked element count.
fn read_shape(b: &mut Body<'_>, what: &str) -> Result<(Vec<usize>, usize), CheckpointError> {
    let rank = b.u32()? as usize;
    if rank > MAX_RANK {
        return Err(b.corrupt(format!("{what}: absurd rank {rank} (max {MAX_RANK})")));
    }
    let mut dims = Vec::with_capacity(rank);
    let mut numel = 1usize;
    for _ in 0..rank {
        let d = b.u32()? as usize;
        if d > MAX_DIM {
            return Err(b.corrupt(format!("{what}: absurd dimension {d}")));
        }
        numel = numel
            .checked_mul(d)
            .filter(|&n| n <= MAX_NUMEL)
            .ok_or_else(|| b.corrupt(format!("{what}: element count overflow")))?;
        dims.push(d);
    }
    Ok((dims, numel.max(1)))
}

// ---------------------------------------------------------------------------
// Params body (shared by CFT1, the CFT2 params section and best-params).
// ---------------------------------------------------------------------------

fn write_params_body(store: &ParamStore, out: &mut Vec<u8>) {
    push_u32(out, store.len() as u32);
    for (_, name, tensor) in store.iter() {
        let name_bytes = name.as_bytes();
        push_u32(out, name_bytes.len() as u32);
        out.extend_from_slice(name_bytes);
        let dims = tensor.shape().dims();
        push_u32(out, dims.len() as u32);
        for &d in dims {
            push_u32(out, d as u32);
        }
        for &x in tensor.data() {
            out.extend_from_slice(&x.to_le_bytes());
        }
    }
}

/// Parses a params body into `store`, staging first so a mismatch never
/// leaves it half overwritten. Names and shapes must match the store.
fn read_params_body(store: &mut ParamStore, b: &mut Body<'_>) -> Result<(), CheckpointError> {
    let n = b.u32()? as usize;
    if n > MAX_PARAMS {
        return Err(b.corrupt(format!("absurd parameter count {n}")));
    }
    if n != store.len() {
        return Err(CheckpointError::Mismatch(format!(
            "checkpoint has {n} params, store has {}",
            store.len()
        )));
    }
    let mut staged: Vec<Tensor> = Vec::with_capacity(n);
    for (_, name, tensor) in store.iter() {
        let name_len = b.u32()? as usize;
        if name_len > MAX_NAME_LEN {
            return Err(b.corrupt(format!("absurd name length {name_len}")));
        }
        let name_buf = b.take(name_len)?;
        let ck_name =
            std::str::from_utf8(name_buf).map_err(|_| b.corrupt("non-utf8 parameter name"))?;
        if ck_name != name {
            return Err(CheckpointError::Mismatch(format!(
                "expected param {name:?}, found {ck_name:?}"
            )));
        }
        let (dims, numel) = read_shape(b, &format!("param {name:?}"))?;
        if dims.as_slice() != tensor.shape().dims() {
            return Err(CheckpointError::Mismatch(format!(
                "param {name:?}: checkpoint shape {dims:?} vs store {:?}",
                tensor.shape().dims()
            )));
        }
        let data = b.f32s(numel)?;
        staged.push(Tensor::new(dims, data));
    }
    for (i, t) in staged.into_iter().enumerate() {
        *store.get_mut(crate::params::ParamId(i)) = t;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// State section bodies.
// ---------------------------------------------------------------------------

fn write_adam_body(snap: &AdamSnapshot, n_params: usize, out: &mut Vec<u8>) {
    push_u64(out, snap.step);
    push_u32(out, n_params as u32);
    for i in 0..n_params {
        let slot = snap.m.get(i).and_then(|m| m.as_ref());
        match slot {
            Some(m) => {
                let v = snap.v[i].as_ref().expect("m and v are allocated together");
                out.push(1);
                let dims = m.shape().dims();
                push_u32(out, dims.len() as u32);
                for &d in dims {
                    push_u32(out, d as u32);
                }
                for &x in m.data() {
                    out.extend_from_slice(&x.to_le_bytes());
                }
                for &x in v.data() {
                    out.extend_from_slice(&x.to_le_bytes());
                }
            }
            None => out.push(0),
        }
    }
}

fn read_adam_body(store: &ParamStore, b: &mut Body<'_>) -> Result<AdamSnapshot, CheckpointError> {
    let step = b.u64()?;
    let n = b.u32()? as usize;
    if n != store.len() {
        return Err(CheckpointError::Mismatch(format!(
            "adam state covers {n} params, store has {}",
            store.len()
        )));
    }
    let mut m = Vec::with_capacity(n);
    let mut v = Vec::with_capacity(n);
    for idx in 0..n {
        let present = b.u8()?;
        if present > 1 {
            return Err(b.corrupt(format!("bad moment-present flag {present}")));
        }
        if present == 0 {
            m.push(None);
            v.push(None);
            continue;
        }
        let name = store.name(crate::params::ParamId(idx)).to_string();
        let (dims, numel) = read_shape(b, &format!("adam moments of {name:?}"))?;
        let expect = store.get(crate::params::ParamId(idx)).shape().dims();
        if dims.as_slice() != expect {
            return Err(CheckpointError::Mismatch(format!(
                "adam moments of {name:?}: checkpoint shape {dims:?} vs store {expect:?}"
            )));
        }
        let m_data = b.f32s(numel)?;
        let v_data = b.f32s(numel)?;
        m.push(Some(Tensor::new(dims.clone(), m_data)));
        v.push(Some(Tensor::new(dims, v_data)));
    }
    Ok(AdamSnapshot { step, m, v })
}

fn write_train_body(state: &TrainState, out: &mut Vec<u8>) {
    push_u64(out, state.next_epoch);
    push_u64(out, state.bad_epochs);
    match (state.best_epoch, state.best_val) {
        (Some(e), Some(v)) => {
            out.push(1);
            push_u64(out, e);
            push_u64(out, v.to_bits());
        }
        _ => {
            out.push(0);
            push_u64(out, 0);
            push_u64(out, 0);
        }
    }
}

// ---------------------------------------------------------------------------
// Public save/load entry points.
// ---------------------------------------------------------------------------

/// Writes a legacy CFT1 (params-only, no checksums) stream. Kept for
/// format-compatibility tests; new code should use [`save_checkpoint`] or
/// [`save_checkpoint_atomic`], which write CRC-protected CFT2.
pub fn save_params(store: &ParamStore, mut w: impl Write) -> io::Result<()> {
    w.write_all(MAGIC1)?;
    let mut body = Vec::new();
    write_params_body(store, &mut body);
    w.write_all(&body)
}

/// Loads a params-only view of a checkpoint (CFT1 or CFT2) into an
/// *identically structured* store: parameter count, names, and shapes must
/// match (the architecture is reconstructed from configuration, not from
/// the checkpoint). Any training state in a CFT2 stream is validated and
/// discarded.
pub fn load_params(store: &mut ParamStore, r: impl Read) -> Result<(), CheckpointError> {
    load_checkpoint(store, r).map(|_| ())
}

/// Writes a CFT2 checkpoint: parameters plus, when `state` is given, the
/// full training state needed for bitwise resume. Every section carries a
/// CRC32 and the stream ends with a footer checksum.
pub fn save_checkpoint(
    store: &ParamStore,
    state: Option<&TrainState>,
    mut w: impl Write,
) -> io::Result<()> {
    let mut sections: Vec<(u8, Vec<u8>)> = Vec::new();
    let mut body = Vec::new();
    write_params_body(store, &mut body);
    sections.push((TAG_PARAMS, body));
    if let Some(state) = state {
        let mut adam = Vec::new();
        write_adam_body(&state.adam, store.len(), &mut adam);
        sections.push((TAG_ADAM, adam));
        let mut rng = Vec::new();
        for w64 in state.rng {
            push_u64(&mut rng, w64);
        }
        sections.push((TAG_RNG, rng));
        let mut train = Vec::new();
        write_train_body(state, &mut train);
        sections.push((TAG_TRAIN, train));
        let mut config = Vec::new();
        push_u64(&mut config, state.config_fingerprint);
        sections.push((TAG_CONFIG, config));
        if let Some(best) = &state.best_params {
            let mut best_body = Vec::new();
            write_params_body(best, &mut best_body);
            sections.push((TAG_BEST, best_body));
        }
    }
    w.write_all(MAGIC2)?;
    let mut crc_trail = Vec::with_capacity(sections.len() * 4);
    for (tag, body) in &sections {
        w.write_all(&[*tag])?;
        w.write_all(&(body.len() as u64).to_le_bytes())?;
        w.write_all(body)?;
        let crc = crc32(body);
        w.write_all(&crc.to_le_bytes())?;
        crc_trail.extend_from_slice(&crc.to_le_bytes());
    }
    w.write_all(&[TAG_END])?;
    w.write_all(&crc32(&crc_trail).to_le_bytes())?;
    Ok(())
}

fn section_name(tag: u8) -> &'static str {
    match tag {
        TAG_PARAMS => "params",
        TAG_ADAM => "adam",
        TAG_RNG => "rng",
        TAG_TRAIN => "train",
        TAG_CONFIG => "config",
        TAG_BEST => "best_params",
        _ => "unknown",
    }
}

/// Reads `len` bytes in bounded chunks, so a corrupt length field cannot
/// reserve gigabytes up front — memory grows only as data actually arrives.
fn read_body(r: &mut impl Read, len: u64) -> Result<Vec<u8>, CheckpointError> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 65536];
    let mut remaining = len as usize;
    while remaining > 0 {
        let take = remaining.min(chunk.len());
        r.read_exact(&mut chunk[..take])?;
        buf.extend_from_slice(&chunk[..take]);
        remaining -= take;
    }
    Ok(buf)
}

/// Loads a checkpoint (CFT1 or CFT2) into an identically structured store
/// and returns its training state, if the stream carries one.
///
/// All-or-nothing: every section is read and validated (CRCs, footer,
/// names, shapes) before anything is committed, so a rejected checkpoint
/// leaves the store untouched.
pub fn load_checkpoint(
    store: &mut ParamStore,
    mut r: impl Read,
) -> Result<Option<TrainState>, CheckpointError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic == MAGIC1 {
        return load_cft1(store, r).map(|()| None);
    }
    if &magic != MAGIC2 {
        return Err(CheckpointError::BadMagic);
    }

    // Collect every section, CRC-checked, before parsing any of them.
    let mut bodies: Vec<(u8, Vec<u8>)> = Vec::new();
    let mut crc_trail = Vec::new();
    loop {
        let mut tag = [0u8; 1];
        r.read_exact(&mut tag)?;
        let tag = tag[0];
        if tag == TAG_END {
            let mut footer = [0u8; 4];
            r.read_exact(&mut footer)?;
            if u32::from_le_bytes(footer) != crc32(&crc_trail) {
                return Err(CheckpointError::BadCrc { section: "footer" });
            }
            break;
        }
        if section_name(tag) == "unknown" {
            return Err(CheckpointError::Corrupt(format!(
                "unknown section tag 0x{tag:02x}"
            )));
        }
        if bodies.iter().any(|(t, _)| *t == tag) {
            return Err(CheckpointError::Corrupt(format!(
                "duplicate section {:?}",
                section_name(tag)
            )));
        }
        let mut len = [0u8; 8];
        r.read_exact(&mut len)?;
        let len = u64::from_le_bytes(len);
        if len > MAX_SECTION_LEN {
            return Err(CheckpointError::Corrupt(format!(
                "section {:?}: absurd length {len}",
                section_name(tag)
            )));
        }
        let body = read_body(&mut r, len)?;
        let mut crc = [0u8; 4];
        r.read_exact(&mut crc)?;
        if u32::from_le_bytes(crc) != crc32(&body) {
            return Err(CheckpointError::BadCrc {
                section: section_name(tag),
            });
        }
        crc_trail.extend_from_slice(&crc);
        bodies.push((tag, body));
    }

    let get = |tag: u8| bodies.iter().find(|(t, _)| *t == tag).map(|(_, b)| b);
    let params_body =
        get(TAG_PARAMS).ok_or_else(|| CheckpointError::Corrupt("missing params section".into()))?;

    // Stage everything; commit only after every section parsed cleanly.
    let mut staged = store.clone();
    let mut b = Body::new(params_body, "params");
    read_params_body(&mut staged, &mut b)?;
    b.finish()?;

    let state_tags = [TAG_ADAM, TAG_RNG, TAG_TRAIN, TAG_CONFIG];
    let present = state_tags.iter().filter(|&&t| get(t).is_some()).count();
    let state = match present {
        0 => {
            if get(TAG_BEST).is_some() {
                return Err(CheckpointError::Corrupt(
                    "best_params section without training state".into(),
                ));
            }
            None
        }
        4 => {
            let mut b = Body::new(get(TAG_ADAM).expect("present"), "adam");
            let adam = read_adam_body(&staged, &mut b)?;
            b.finish()?;

            let mut b = Body::new(get(TAG_RNG).expect("present"), "rng");
            let rng = [b.u64()?, b.u64()?, b.u64()?, b.u64()?];
            b.finish()?;

            let mut b = Body::new(get(TAG_TRAIN).expect("present"), "train");
            let next_epoch = b.u64()?;
            let bad_epochs = b.u64()?;
            let has_best = b.u8()?;
            if has_best > 1 {
                return Err(b.corrupt(format!("bad best-present flag {has_best}")));
            }
            let best_epoch_raw = b.u64()?;
            let best_val_raw = b.u64()?;
            b.finish()?;
            let (best_epoch, best_val) = if has_best == 1 {
                (Some(best_epoch_raw), Some(f64::from_bits(best_val_raw)))
            } else {
                (None, None)
            };

            let mut b = Body::new(get(TAG_CONFIG).expect("present"), "config");
            let config_fingerprint = b.u64()?;
            b.finish()?;

            let best_params = match get(TAG_BEST) {
                Some(body) => {
                    let mut best = staged.clone();
                    let mut b = Body::new(body, "best_params");
                    read_params_body(&mut best, &mut b)?;
                    b.finish()?;
                    Some(best)
                }
                None => None,
            };

            Some(TrainState {
                adam,
                rng,
                next_epoch,
                bad_epochs,
                best_epoch,
                best_val,
                config_fingerprint,
                best_params,
            })
        }
        _ => {
            return Err(CheckpointError::Corrupt(
                "incomplete training state (adam/rng/train/config must all be present)".into(),
            ))
        }
    };

    *store = staged;
    Ok(state)
}

/// The legacy CFT1 streaming reader (magic already consumed).
fn load_cft1(store: &mut ParamStore, mut r: impl Read) -> Result<(), CheckpointError> {
    let n = read_u32(&mut r)? as usize;
    if n != store.len() {
        return Err(CheckpointError::Mismatch(format!(
            "checkpoint has {n} params, store has {}",
            store.len()
        )));
    }
    // Read into staging first so a mismatch never leaves the store half
    // overwritten.
    let mut staged: Vec<Tensor> = Vec::with_capacity(n);
    for (id, name, tensor) in store.iter() {
        let _ = id;
        let name_len = read_u32(&mut r)? as usize;
        if name_len > MAX_NAME_LEN {
            return Err(CheckpointError::Corrupt(format!(
                "absurd name length {name_len}"
            )));
        }
        let mut name_buf = vec![0u8; name_len];
        r.read_exact(&mut name_buf)?;
        let ck_name = String::from_utf8(name_buf)
            .map_err(|_| CheckpointError::Corrupt("non-utf8 parameter name".into()))?;
        if ck_name != name {
            return Err(CheckpointError::Mismatch(format!(
                "expected param {name:?}, found {ck_name:?}"
            )));
        }
        let rank = read_u32(&mut r)? as usize;
        // Guard before the allocation below: a corrupt rank would otherwise
        // drive `Vec::with_capacity` into a multi-GB request and abort the
        // process instead of surfacing a typed error.
        if rank > MAX_RANK {
            return Err(CheckpointError::Corrupt(format!(
                "param {name:?}: absurd rank {rank} (max {MAX_RANK})"
            )));
        }
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            let d = read_u32(&mut r)? as usize;
            if d > MAX_DIM {
                return Err(CheckpointError::Corrupt(format!(
                    "param {name:?}: absurd dimension {d}"
                )));
            }
            dims.push(d);
        }
        if dims.as_slice() != tensor.shape().dims() {
            return Err(CheckpointError::Mismatch(format!(
                "param {name:?}: checkpoint shape {dims:?} vs store {:?}",
                tensor.shape().dims()
            )));
        }
        let numel: usize = dims.iter().product::<usize>().max(1);
        let numel = if dims.is_empty() { 1 } else { numel };
        let mut data = Vec::with_capacity(numel);
        let mut buf = [0u8; 4];
        for _ in 0..numel {
            r.read_exact(&mut buf)?;
            data.push(f32::from_le_bytes(buf));
        }
        staged.push(Tensor::new(dims, data));
    }
    for (i, t) in staged.into_iter().enumerate() {
        *store.get_mut(crate::params::ParamId(i)) = t;
    }
    Ok(())
}

fn read_u32(r: &mut impl Read) -> Result<u32, CheckpointError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

// ---------------------------------------------------------------------------
// Atomic durable writes.
// ---------------------------------------------------------------------------

fn tmp_path(path: &Path) -> std::path::PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Writes a CFT2 checkpoint durably and atomically: the stream goes to
/// `<path>.tmp`, is fsynced, renamed over `path`, and the parent directory
/// is fsynced so the rename itself survives a power cut. A crash at any
/// byte offset leaves either the old checkpoint or the new one at `path`,
/// never a torn file; on error the temporary is removed and `path` is
/// untouched.
pub fn save_checkpoint_atomic(
    store: &ParamStore,
    state: Option<&TrainState>,
    path: impl AsRef<Path>,
) -> io::Result<()> {
    let path = path.as_ref();
    let tmp = tmp_path(path);
    let result = (|| {
        let f = std::fs::File::create(&tmp)?;
        let mut w = io::BufWriter::new(f);
        save_checkpoint(store, state, &mut w)?;
        w.flush()?;
        w.get_ref().sync_all()?;
        std::fs::rename(&tmp, path)?;
        let dir = match path.parent() {
            Some(d) if !d.as_os_str().is_empty() => d,
            _ => Path::new("."),
        };
        std::fs::File::open(dir)?.sync_all()?;
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Params-only [`save_checkpoint_atomic`] — the durable replacement for
/// writing a bare `save_params` stream straight to its final path.
pub fn save_params_atomic(store: &ParamStore, path: impl AsRef<Path>) -> io::Result<()> {
    save_checkpoint_atomic(store, None, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> ParamStore {
        let mut ps = ParamStore::new();
        ps.add(
            "a",
            Tensor::new([2, 3], (0..6).map(|x| x as f32 * 0.5).collect()),
        );
        ps.add("b", Tensor::vector(&[7.0, -1.5]));
        ps
    }

    fn assert_stores_equal(a: &ParamStore, b: &ParamStore) {
        for ((_, _, ta), (_, _, tb)) in a.iter().zip(b.iter()) {
            assert_eq!(ta, tb);
        }
    }

    fn train_state(base: &ParamStore) -> TrainState {
        let mut best = base.clone();
        best.get_mut(crate::params::ParamId(0)).data_mut()[0] = -3.25;
        TrainState {
            adam: AdamSnapshot {
                step: 42,
                m: vec![Some(Tensor::new([2, 3], vec![0.1; 6])), None],
                v: vec![Some(Tensor::new([2, 3], vec![0.2; 6])), None],
            },
            rng: [1, 2, 3, u64::MAX],
            next_epoch: 7,
            bad_epochs: 2,
            best_epoch: Some(4),
            best_val: Some(0.123456789f64),
            config_fingerprint: 0xDEAD_BEEF_CAFE_F00D,
            best_params: Some(best),
        }
    }

    #[test]
    fn crc32_matches_reference_vector() {
        // The canonical IEEE 802.3 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn round_trip_preserves_everything() {
        let src = store();
        let mut buf = Vec::new();
        save_params(&src, &mut buf).unwrap();
        let mut dst = store();
        // Perturb destination to prove data actually loads.
        dst.get_mut(crate::params::ParamId(0)).data_mut()[0] = 99.0;
        load_params(&mut dst, &buf[..]).unwrap();
        assert_stores_equal(&src, &dst);
    }

    #[test]
    fn cft2_params_only_round_trips() {
        let src = store();
        let mut buf = Vec::new();
        save_checkpoint(&src, None, &mut buf).unwrap();
        assert_eq!(&buf[..4], b"CFT2");
        let mut dst = store();
        dst.get_mut(crate::params::ParamId(0)).data_mut()[0] = 99.0;
        let state = load_checkpoint(&mut dst, &buf[..]).unwrap();
        assert!(state.is_none());
        assert_stores_equal(&src, &dst);
    }

    #[test]
    fn cft2_full_train_state_round_trips_bitwise() {
        let src = store();
        let state = train_state(&src);
        let mut buf = Vec::new();
        save_checkpoint(&src, Some(&state), &mut buf).unwrap();

        let mut dst = store();
        dst.get_mut(crate::params::ParamId(1)).data_mut()[0] = -100.0;
        let loaded = load_checkpoint(&mut dst, &buf[..]).unwrap().expect("state");
        assert_stores_equal(&src, &dst);
        assert_eq!(loaded.adam, state.adam);
        assert_eq!(loaded.rng, state.rng);
        assert_eq!(loaded.next_epoch, 7);
        assert_eq!(loaded.bad_epochs, 2);
        assert_eq!(loaded.best_epoch, Some(4));
        assert_eq!(
            loaded.best_val.unwrap().to_bits(),
            state.best_val.unwrap().to_bits()
        );
        assert_eq!(loaded.config_fingerprint, state.config_fingerprint);
        assert_stores_equal(
            loaded.best_params.as_ref().expect("best"),
            state.best_params.as_ref().expect("best"),
        );
    }

    #[test]
    fn rejects_bad_magic() {
        let mut dst = store();
        let err = load_params(&mut dst, &b"NOPE"[..]).unwrap_err();
        assert!(matches!(err, CheckpointError::BadMagic));
    }

    #[test]
    fn rejects_shape_mismatch_without_corrupting() {
        let src = store();
        let mut buf = Vec::new();
        save_params(&src, &mut buf).unwrap();
        let mut other = ParamStore::new();
        other.add("a", Tensor::zeros([2, 3]));
        other.add("b", Tensor::zeros([3])); // wrong shape
        let before = other.get(crate::params::ParamId(0)).clone();
        assert!(load_params(&mut other, &buf[..]).is_err());
        assert_eq!(
            other.get(crate::params::ParamId(0)),
            &before,
            "store was corrupted"
        );
    }

    #[test]
    fn cft2_rejects_mismatch_without_corrupting() {
        let src = store();
        let state = train_state(&src);
        let mut buf = Vec::new();
        save_checkpoint(&src, Some(&state), &mut buf).unwrap();
        let mut other = ParamStore::new();
        other.add("a", Tensor::ones([2, 3]));
        other.add("b", Tensor::zeros([3])); // wrong shape
        let before = other.get(crate::params::ParamId(0)).clone();
        let err = load_checkpoint(&mut other, &buf[..]).unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch(_)), "{err}");
        assert_eq!(other.get(crate::params::ParamId(0)), &before);
    }

    #[test]
    fn rejects_name_mismatch() {
        let src = store();
        let mut buf = Vec::new();
        save_params(&src, &mut buf).unwrap();
        let mut other = ParamStore::new();
        other.add("a", Tensor::zeros([2, 3]));
        other.add("c", Tensor::zeros([2]));
        let err = load_params(&mut other, &buf[..]).unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch(_)), "{err}");
    }

    #[test]
    fn rejects_truncated_stream() {
        let src = store();
        let mut buf = Vec::new();
        save_params(&src, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        let mut dst = store();
        assert!(load_params(&mut dst, &buf[..]).is_err());
    }

    /// Byte offset of param "a"'s rank field in a CFT1 checkpoint of
    /// `store()`: magic(4) + n(4) + name_len(4) + "a"(1).
    const RANK_OFFSET: usize = 13;

    #[test]
    fn rejects_absurd_rank_with_typed_error_not_oom() {
        let src = store();
        let mut buf = Vec::new();
        save_params(&src, &mut buf).unwrap();
        // Corrupt the rank field into a huge value; before the guard this
        // drove Vec::with_capacity into a multi-GB allocation.
        buf[RANK_OFFSET..RANK_OFFSET + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut dst = store();
        let err = load_params(&mut dst, &buf[..]).unwrap_err();
        assert!(matches!(err, CheckpointError::Corrupt(_)), "{err}");
    }

    #[test]
    fn rejects_absurd_name_len_and_dims_with_typed_errors() {
        let src = store();
        let mut buf = Vec::new();
        save_params(&src, &mut buf).unwrap();
        // name_len field of param "a" sits right after magic + n_params.
        let mut bad = buf.clone();
        bad[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = load_params(&mut store(), &bad[..]).unwrap_err();
        assert!(matches!(err, CheckpointError::Corrupt(_)), "{err}");
        // A single dimension beyond MAX_DIM is Corrupt, not an allocation.
        let mut bad = buf;
        bad[RANK_OFFSET + 4..RANK_OFFSET + 8].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = load_params(&mut store(), &bad[..]).unwrap_err();
        assert!(matches!(err, CheckpointError::Corrupt(_)), "{err}");
    }

    #[test]
    fn rejects_garbage_dims_as_mismatch() {
        let src = store();
        let mut buf = Vec::new();
        save_params(&src, &mut buf).unwrap();
        // Keep rank=2 but overwrite the first dim of "a" with garbage.
        buf[RANK_OFFSET + 4..RANK_OFFSET + 8].copy_from_slice(&0xDEAD_u32.to_le_bytes());
        let mut dst = store();
        let err = load_params(&mut dst, &buf[..]).unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch(_)), "{err}");
    }

    #[test]
    fn rejects_truncation_at_every_prefix() {
        // No prefix of a valid CFT1 checkpoint may panic; every one must
        // yield a typed error (truncations land on Io, the final full
        // length on Ok).
        let src = store();
        let mut buf = Vec::new();
        save_params(&src, &mut buf).unwrap();
        for cut in 0..buf.len() {
            let mut dst = store();
            let err = load_params(&mut dst, &buf[..cut]).unwrap_err();
            assert!(
                matches!(err, CheckpointError::Io(_)),
                "cut at {cut}: unexpected {err}"
            );
        }
    }

    #[test]
    fn cft2_rejects_truncation_at_every_prefix() {
        let src = store();
        let state = train_state(&src);
        let mut buf = Vec::new();
        save_checkpoint(&src, Some(&state), &mut buf).unwrap();
        for cut in 0..buf.len() {
            let mut dst = store();
            let err = load_checkpoint(&mut dst, &buf[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    CheckpointError::Io(_)
                        | CheckpointError::Corrupt(_)
                        | CheckpointError::BadCrc { .. }
                        | CheckpointError::BadMagic
                ),
                "cut at {cut}: unexpected {err}"
            );
            // A rejected load must leave the store untouched.
            assert_stores_equal(&dst, &store());
        }
    }

    #[test]
    fn cft2_bitflip_at_every_offset_never_misloads() {
        // Flip one byte at every position of a full CFT2 checkpoint: the
        // loader must reject it (CRC/footer/structure) or — only when the
        // flip lands in a field the format tolerates — load data identical
        // to what a clean load produces. A successful load of *different*
        // data would be a silent corruption.
        let src = store();
        let state = train_state(&src);
        let mut buf = Vec::new();
        save_checkpoint(&src, Some(&state), &mut buf).unwrap();
        for pos in 0..buf.len() {
            let mut bad = buf.clone();
            bad[pos] ^= 0xFF;
            let mut dst = store();
            match load_checkpoint(&mut dst, &bad[..]) {
                Err(_) => {}
                Ok(_) => {
                    assert_stores_equal(&dst, &src);
                    panic!("bitflip at {pos} was accepted — CRC failed to catch it");
                }
            }
        }
    }

    #[test]
    fn scalar_params_round_trip() {
        let mut src = ParamStore::new();
        src.add("s", Tensor::scalar(3.5));
        let mut buf = Vec::new();
        save_params(&src, &mut buf).unwrap();
        let mut dst = ParamStore::new();
        dst.add("s", Tensor::scalar(0.0));
        load_params(&mut dst, &buf[..]).unwrap();
        assert_eq!(dst.get(crate::params::ParamId(0)).item(), 3.5);
    }

    #[test]
    fn atomic_save_round_trips_and_cleans_tmp() {
        let dir = std::env::temp_dir().join(format!(
            "cf_ckpt_test_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.ckpt");
        let src = store();
        let state = train_state(&src);
        save_checkpoint_atomic(&src, Some(&state), &path).unwrap();
        assert!(!tmp_path(&path).exists(), "tmp file left behind");
        let mut dst = store();
        let f = std::fs::File::open(&path).unwrap();
        let loaded = load_checkpoint(&mut dst, io::BufReader::new(f))
            .unwrap()
            .expect("state");
        assert_stores_equal(&src, &dst);
        assert_eq!(loaded.next_epoch, state.next_epoch);
        // A stale tmp from a previous crash must not block the next save.
        std::fs::write(tmp_path(&path), b"torn garbage").unwrap();
        save_checkpoint_atomic(&src, None, &path).unwrap();
        assert!(!tmp_path(&path).exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
