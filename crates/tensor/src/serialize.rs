//! Checkpointing: a small self-describing binary format for
//! [`crate::params::ParamStore`] (no external serialization crates needed).
//!
//! Layout (all integers little-endian):
//! ```text
//! magic "CFT1" | u32 n_params
//! per param: u32 name_len | name bytes | u32 rank | u32 dims… | f32 data…
//! ```

use crate::params::ParamStore;
use crate::tensor::Tensor;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"CFT1";

/// No tensor in the model family comes close to this rank; anything larger
/// is a corrupt stream, not a checkpoint.
const MAX_RANK: usize = 16;

/// Errors raised while reading a checkpoint.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream does not start with the checkpoint magic.
    BadMagic,
    /// Parameter count/name/shape disagrees with the receiving store.
    Mismatch(String),
    /// Structurally invalid data (bad lengths, non-UTF-8 names).
    Corrupt(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "io error: {e}"),
            CheckpointError::BadMagic => write!(f, "not a ChainsFormer checkpoint (bad magic)"),
            CheckpointError::Mismatch(m) => write!(f, "checkpoint mismatch: {m}"),
            CheckpointError::Corrupt(m) => write!(f, "corrupt checkpoint: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Writes every parameter (name, shape, data) to `w`.
pub fn save_params(store: &ParamStore, mut w: impl Write) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&(store.len() as u32).to_le_bytes())?;
    for (_, name, tensor) in store.iter() {
        let name_bytes = name.as_bytes();
        w.write_all(&(name_bytes.len() as u32).to_le_bytes())?;
        w.write_all(name_bytes)?;
        let dims = tensor.shape().dims();
        w.write_all(&(dims.len() as u32).to_le_bytes())?;
        for &d in dims {
            w.write_all(&(d as u32).to_le_bytes())?;
        }
        for &x in tensor.data() {
            w.write_all(&x.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Loads a checkpoint into an *identically structured* store: parameter
/// count, names, and shapes must match (the architecture is reconstructed
/// from configuration, not from the checkpoint).
pub fn load_params(store: &mut ParamStore, mut r: impl Read) -> Result<(), CheckpointError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let n = read_u32(&mut r)? as usize;
    if n != store.len() {
        return Err(CheckpointError::Mismatch(format!(
            "checkpoint has {n} params, store has {}",
            store.len()
        )));
    }
    // Read into staging first so a mismatch never leaves the store half
    // overwritten.
    let mut staged: Vec<Tensor> = Vec::with_capacity(n);
    for (id, name, tensor) in store.iter() {
        let _ = id;
        let name_len = read_u32(&mut r)? as usize;
        if name_len > 1 << 20 {
            return Err(CheckpointError::Corrupt(format!(
                "absurd name length {name_len}"
            )));
        }
        let mut name_buf = vec![0u8; name_len];
        r.read_exact(&mut name_buf)?;
        let ck_name = String::from_utf8(name_buf)
            .map_err(|_| CheckpointError::Corrupt("non-utf8 parameter name".into()))?;
        if ck_name != name {
            return Err(CheckpointError::Mismatch(format!(
                "expected param {name:?}, found {ck_name:?}"
            )));
        }
        let rank = read_u32(&mut r)? as usize;
        // Guard before the allocation below: a corrupt rank would otherwise
        // drive `Vec::with_capacity` into a multi-GB request and abort the
        // process instead of surfacing a typed error.
        if rank > MAX_RANK {
            return Err(CheckpointError::Corrupt(format!(
                "param {name:?}: absurd rank {rank} (max {MAX_RANK})"
            )));
        }
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            dims.push(read_u32(&mut r)? as usize);
        }
        if dims.as_slice() != tensor.shape().dims() {
            return Err(CheckpointError::Mismatch(format!(
                "param {name:?}: checkpoint shape {dims:?} vs store {:?}",
                tensor.shape().dims()
            )));
        }
        let numel: usize = dims.iter().product::<usize>().max(1);
        let numel = if dims.is_empty() { 1 } else { numel };
        let mut data = Vec::with_capacity(numel);
        let mut buf = [0u8; 4];
        for _ in 0..numel {
            r.read_exact(&mut buf)?;
            data.push(f32::from_le_bytes(buf));
        }
        staged.push(Tensor::new(dims, data));
    }
    for (i, t) in staged.into_iter().enumerate() {
        *store.get_mut(crate::params::ParamId(i)) = t;
    }
    Ok(())
}

fn read_u32(r: &mut impl Read) -> Result<u32, CheckpointError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> ParamStore {
        let mut ps = ParamStore::new();
        ps.add(
            "a",
            Tensor::new([2, 3], (0..6).map(|x| x as f32 * 0.5).collect()),
        );
        ps.add("b", Tensor::vector(&[7.0, -1.5]));
        ps
    }

    #[test]
    fn round_trip_preserves_everything() {
        let src = store();
        let mut buf = Vec::new();
        save_params(&src, &mut buf).unwrap();
        let mut dst = store();
        // Perturb destination to prove data actually loads.
        dst.get_mut(crate::params::ParamId(0)).data_mut()[0] = 99.0;
        load_params(&mut dst, &buf[..]).unwrap();
        for ((_, _, a), (_, _, b)) in src.iter().zip(dst.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let mut dst = store();
        let err = load_params(&mut dst, &b"NOPE"[..]).unwrap_err();
        assert!(matches!(err, CheckpointError::BadMagic));
    }

    #[test]
    fn rejects_shape_mismatch_without_corrupting() {
        let src = store();
        let mut buf = Vec::new();
        save_params(&src, &mut buf).unwrap();
        let mut other = ParamStore::new();
        other.add("a", Tensor::zeros([2, 3]));
        other.add("b", Tensor::zeros([3])); // wrong shape
        let before = other.get(crate::params::ParamId(0)).clone();
        assert!(load_params(&mut other, &buf[..]).is_err());
        assert_eq!(
            other.get(crate::params::ParamId(0)),
            &before,
            "store was corrupted"
        );
    }

    #[test]
    fn rejects_name_mismatch() {
        let src = store();
        let mut buf = Vec::new();
        save_params(&src, &mut buf).unwrap();
        let mut other = ParamStore::new();
        other.add("a", Tensor::zeros([2, 3]));
        other.add("c", Tensor::zeros([2]));
        let err = load_params(&mut other, &buf[..]).unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch(_)), "{err}");
    }

    #[test]
    fn rejects_truncated_stream() {
        let src = store();
        let mut buf = Vec::new();
        save_params(&src, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        let mut dst = store();
        assert!(load_params(&mut dst, &buf[..]).is_err());
    }

    /// Byte offset of param "a"'s rank field in a checkpoint of `store()`:
    /// magic(4) + n(4) + name_len(4) + "a"(1).
    const RANK_OFFSET: usize = 13;

    #[test]
    fn rejects_absurd_rank_with_typed_error_not_oom() {
        let src = store();
        let mut buf = Vec::new();
        save_params(&src, &mut buf).unwrap();
        // Corrupt the rank field into a huge value; before the guard this
        // drove Vec::with_capacity into a multi-GB allocation.
        buf[RANK_OFFSET..RANK_OFFSET + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut dst = store();
        let err = load_params(&mut dst, &buf[..]).unwrap_err();
        assert!(matches!(err, CheckpointError::Corrupt(_)), "{err}");
    }

    #[test]
    fn rejects_garbage_dims_as_mismatch() {
        let src = store();
        let mut buf = Vec::new();
        save_params(&src, &mut buf).unwrap();
        // Keep rank=2 but overwrite the first dim of "a" with garbage.
        buf[RANK_OFFSET + 4..RANK_OFFSET + 8].copy_from_slice(&0xDEAD_u32.to_le_bytes());
        let mut dst = store();
        let err = load_params(&mut dst, &buf[..]).unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch(_)), "{err}");
    }

    #[test]
    fn rejects_truncation_at_every_prefix() {
        // No prefix of a valid checkpoint may panic; every one must yield a
        // typed error (truncations land on Io, the final full length on Ok).
        let src = store();
        let mut buf = Vec::new();
        save_params(&src, &mut buf).unwrap();
        for cut in 0..buf.len() {
            let mut dst = store();
            let err = load_params(&mut dst, &buf[..cut]).unwrap_err();
            assert!(
                matches!(err, CheckpointError::Io(_)),
                "cut at {cut}: unexpected {err}"
            );
        }
    }

    #[test]
    fn scalar_params_round_trip() {
        let mut src = ParamStore::new();
        src.add("s", Tensor::scalar(3.5));
        let mut buf = Vec::new();
        save_params(&src, &mut buf).unwrap();
        let mut dst = ParamStore::new();
        dst.add("s", Tensor::scalar(0.0));
        load_params(&mut dst, &buf[..]).unwrap();
        assert_eq!(dst.get(crate::params::ParamId(0)).item(), 3.5);
    }
}
