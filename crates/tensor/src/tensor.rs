//! The dense `f32` tensor container and its non-differentiable kernels.
//!
//! These kernels are shared by the autodiff layer (forward evaluation and the
//! hand-written backward rules in [`crate::ops`]) and by non-learned code such
//! as the baselines.
//!
//! All tensor data buffers come from the thread-local [`crate::pool`]; a
//! tensor's `Drop` returns its buffer to the pool, so arena-lifetime tensors
//! (tape nodes, gradient slots, `InferCtx` values) recycle instead of hitting
//! the global allocator every step.

use crate::pool;
use crate::shape::Shape;

/// A dense, row-major, contiguous `f32` tensor.
#[derive(Debug)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Clone for Tensor {
    fn clone(&self) -> Self {
        let mut data = pool::take_f32(self.data.len());
        data.extend_from_slice(&self.data);
        Tensor {
            shape: self.shape,
            data,
        }
    }
}

impl Drop for Tensor {
    fn drop(&mut self) {
        pool::recycle_f32(std::mem::take(&mut self.data));
    }
}

impl PartialEq for Tensor {
    fn eq(&self, other: &Self) -> bool {
        self.shape == other.shape && self.data == other.data
    }
}

impl Tensor {
    /// Creates a tensor from raw data; panics if `data.len()` disagrees with `shape`.
    pub fn new(shape: impl Into<Shape>, data: Vec<f32>) -> Self {
        let shape = shape.into();
        assert_eq!(
            shape.numel(),
            data.len(),
            "shape {shape} wants {} elements, got {}",
            shape.numel(),
            data.len()
        );
        Tensor { shape, data }
    }

    /// A tensor of zeros.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        Tensor {
            shape,
            data: pool::take_f32_zeroed(n),
        }
    }

    /// A tensor of ones.
    pub fn ones(shape: impl Into<Shape>) -> Self {
        Self::full(shape, 1.0)
    }

    /// A tensor filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        Tensor {
            shape,
            data: pool::take_f32_filled(n, value),
        }
    }

    /// A rank-0 scalar.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            shape: Shape::scalar(),
            data: pool::take_f32_filled(1, value),
        }
    }

    /// A rank-1 tensor from a slice.
    pub fn vector(values: &[f32]) -> Self {
        let mut data = pool::take_f32(values.len());
        data.extend_from_slice(values);
        Tensor::new([values.len()], data)
    }

    /// A rank-2 tensor from rows; panics on ragged input.
    pub fn matrix(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = pool::take_f32(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged matrix rows");
            data.extend_from_slice(row);
        }
        Tensor::new([r, c], data)
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Flat row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its flat data.
    ///
    /// The buffer leaves the pool's custody: dropping the returned `Vec`
    /// frees it to the allocator.
    pub fn into_data(mut self) -> Vec<f32> {
        std::mem::take(&mut self.data)
    }

    /// The single value of a rank-0/1-element tensor.
    pub fn item(&self) -> f32 {
        assert_eq!(
            self.data.len(),
            1,
            "item() on tensor with {} elements",
            self.data.len()
        );
        self.data[0]
    }

    /// Row `i` when viewed as `[leading, last_dim]`.
    pub fn row(&self, i: usize) -> &[f32] {
        let d = self.shape.last_dim();
        let rows = self.shape.leading();
        assert!(i < rows, "row {i} out of range ({rows} rows)");
        &self.data[i * d..(i + 1) * d]
    }

    /// Metadata-only reshape; panics if the element count changes.
    pub fn reshape(&self, shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        assert_eq!(
            shape.numel(),
            self.numel(),
            "reshape {} -> {shape} changes element count",
            self.shape
        );
        let mut data = pool::take_f32(self.data.len());
        data.extend_from_slice(&self.data);
        Tensor { shape, data }
    }

    /// Elementwise map.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        let mut data = pool::take_f32(self.data.len());
        data.extend(self.data.iter().map(|&x| f(x)));
        Tensor {
            shape: self.shape,
            data,
        }
    }

    /// Elementwise combination of two same-shape tensors.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(
            self.shape, other.shape,
            "zip shape mismatch {} vs {}",
            self.shape, other.shape
        );
        let mut data = pool::take_f32(self.data.len());
        data.extend(self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)));
        Tensor {
            shape: self.shape,
            data,
        }
    }

    /// In-place `self += other` (same shape).
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_assign shape mismatch");
        crate::simd::add_assign_slice(&mut self.data, &other.data);
    }

    /// In-place `self += alpha * other` (same shape).
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "axpy shape mismatch");
        crate::simd::axpy_slice(&mut self.data, alpha, &other.data);
    }

    /// Scales every element in place.
    pub fn scale_in_place(&mut self, alpha: f32) {
        crate::simd::scale_slice(&mut self.data, alpha);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// L2 norm of the flattened tensor.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Maximum element; `f32::NEG_INFINITY` if empty.
    pub fn max(&self) -> f32 {
        self.data.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x))
    }

    /// True when every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    // ---- matrix kernels -------------------------------------------------

    /// Rank-2 matrix product `[m,k] x [k,n] -> [m,n]`.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        let (m, k) = self.shape.as_matrix();
        let (k2, n) = rhs.shape.as_matrix();
        assert_eq!(
            k, k2,
            "matmul inner-dim mismatch {} vs {}",
            self.shape, rhs.shape
        );
        let mut out = pool::take_f32_zeroed(m * n);
        matmul_into(&self.data, &rhs.data, &mut out, m, k, n);
        Tensor::new([m, n], out)
    }

    /// Batched matrix product `[b,m,k] x [b,k,n] -> [b,m,n]`.
    pub fn bmm(&self, rhs: &Tensor) -> Tensor {
        let (b, m, k) = self.shape.as_batch_matrix();
        let (b2, k2, n) = rhs.shape.as_batch_matrix();
        assert_eq!(b, b2, "bmm batch mismatch {} vs {}", self.shape, rhs.shape);
        assert_eq!(
            k, k2,
            "bmm inner-dim mismatch {} vs {}",
            self.shape, rhs.shape
        );
        let mut out = pool::take_f32_zeroed(b * m * n);
        {
            let shared = pool::SharedMut::new(&mut out);
            par_batches(b, b * m * k * n, |i| {
                // SAFETY: each batch writes only its own contiguous block.
                let o = unsafe { shared.get(i * m * n, m * n) };
                matmul_into(
                    &self.data[i * m * k..(i + 1) * m * k],
                    &rhs.data[i * k * n..(i + 1) * k * n],
                    o,
                    m,
                    k,
                    n,
                );
            });
        }
        Tensor::new([b, m, n], out)
    }

    /// Rank-2 transpose (materialized).
    pub fn transpose(&self) -> Tensor {
        let (m, n) = self.shape.as_matrix();
        let mut out = pool::take_f32_zeroed(m * n);
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor::new([n, m], out)
    }

    /// Batched transpose of the last two dims `[b,m,n] -> [b,n,m]`.
    pub fn transpose_batch(&self) -> Tensor {
        let (b, m, n) = self.shape.as_batch_matrix();
        let mut out = pool::take_f32_zeroed(b * m * n);
        for i in 0..b {
            let src = &self.data[i * m * n..(i + 1) * m * n];
            let dst = &mut out[i * m * n..(i + 1) * m * n];
            for r in 0..m {
                for c in 0..n {
                    dst[c * m + r] = src[r * n + c];
                }
            }
        }
        Tensor::new([b, n, m], out)
    }
}

// ---- raw GEMM kernels ---------------------------------------------------
//
// Three transpose-fused variants (`A·B`, `Aᵀ·B`, `A·Bᵀ`) shared by the
// forward kernels above and the backward rules in `crate::ops::linalg` —
// together they close matmul under differentiation without ever
// materializing a transpose. All three obey one determinism contract:
// every output element is produced by a single accumulator chain that
// starts from the element's prior `out` value and consumes the k products
// in strictly increasing reduction-index order. Tiling and packing only
// ever split the *independent* dimensions (i, j), never the reduction, so
// results are bitwise-stable across kernel rewrites — the bitwise
// loss-trajectory test depends on it.
//
// Shapes above `BLOCKED_MIN_FLOPS` take the register-tiled path: A and B
// are packed into pooled MR-row / NR-column panels and a 4×8 micro-kernel
// keeps the output tile in registers for the entire reduction, so each
// loaded panel value feeds 8 (resp. 4) multiplies instead of 1. The
// reduction is deliberately *not* split into Kc chunks spilled through
// memory: with `+=`-into-out semantics that would re-associate the
// per-element chain (`(out + s1) + s2 ≠ out + (s1 + s2)` in f32). The
// panels are small enough at these problem sizes (k ≤ a few hundred) that
// an MR×k strip lives comfortably in L1 anyway; cache blocking falls out
// of the panel traversal order rather than an explicit Kc loop.

/// Register tile height: rows of `out` carried per micro-kernel.
const MR: usize = 4;
/// Register tile width: columns of `out` carried per micro-kernel.
const NR: usize = 8;
/// Problem-volume floor (`m·k·n`) below which the scalar kernels win
/// (packing overhead dominates tiny GEMMs like per-head attention bmm).
const BLOCKED_MIN_FLOPS: usize = 8 * 1024;
/// Problem-volume floor above which blocked GEMM fans its row panels out
/// across the global thread pool. Below it a pool round-trip (~µs of
/// park/unpark latency) rivals the kernel itself.
pub(crate) const PAR_MIN_FLOPS: usize = 512 * 1024;

/// Deterministic dispatcher shared by all three kernel variants.
fn use_blocked(m: usize, k: usize, n: usize) -> bool {
    m >= MR && n >= NR && k >= 2 && m * k * n >= BLOCKED_MIN_FLOPS
}

/// Packs `a` (either `[m,k]` or, when `AT`, `[k,m]`) into MR-row panels:
/// `ap[ip*MR*k + p*MR + r] = A[i0+r, p]`. Rows past `m` stay zero.
#[inline(always)]
fn pack_a<const AT: bool>(a: &[f32], ap: &mut [f32], m: usize, k: usize) {
    let mp = m.div_ceil(MR);
    for ip in 0..mp {
        let i0 = ip * MR;
        let rows = MR.min(m - i0);
        let panel = &mut ap[ip * MR * k..(ip + 1) * MR * k];
        for r in 0..rows {
            let i = i0 + r;
            if AT {
                for p in 0..k {
                    panel[p * MR + r] = a[p * m + i];
                }
            } else {
                let a_row = &a[i * k..(i + 1) * k];
                for (p, &v) in a_row.iter().enumerate() {
                    panel[p * MR + r] = v;
                }
            }
        }
    }
}

/// Packs `b` (either `[k,n]` or, when `BT`, `[n,k]`) into NR-column panels:
/// `bp[jp*NR*k + p*NR + c] = B[p, j0+c]`. Columns past `n` stay zero.
#[inline(always)]
fn pack_b<const BT: bool>(b: &[f32], bp: &mut [f32], k: usize, n: usize) {
    let np = n.div_ceil(NR);
    for jp in 0..np {
        let j0 = jp * NR;
        let cols = NR.min(n - j0);
        let panel = &mut bp[jp * NR * k..(jp + 1) * NR * k];
        if BT {
            for c in 0..cols {
                let b_row = &b[(j0 + c) * k..(j0 + c + 1) * k];
                for (p, &v) in b_row.iter().enumerate() {
                    panel[p * NR + c] = v;
                }
            }
        } else {
            for p in 0..k {
                let b_row = &b[p * n + j0..p * n + j0 + cols];
                for (c, &v) in b_row.iter().enumerate() {
                    panel[p * NR + c] = v;
                }
            }
        }
    }
}

/// MR×NR micro-kernel for a *full* output tile: constant-size loads and
/// stores only, so LLVM promotes the whole accumulator tile to vector
/// registers (SROA fails the moment `acc` is borrowed at a runtime-length
/// slice, which is why edge tiles take the generic kernel below).
#[inline(always)]
fn micro_full(a_panel: &[f32], b_panel: &[f32], out: &mut [f32], i0: usize, j0: usize, n: usize) {
    let mut acc = [[0.0f32; NR]; MR];
    for r in 0..MR {
        let o = (i0 + r) * n + j0;
        acc[r].copy_from_slice(&out[o..o + NR]);
    }
    for (av, bv) in a_panel.chunks_exact(MR).zip(b_panel.chunks_exact(NR)) {
        let bn: &[f32; NR] = bv.try_into().unwrap();
        for r in 0..MR {
            let ar = av[r];
            for c in 0..NR {
                acc[r][c] += ar * bn[c];
            }
        }
    }
    for r in 0..MR {
        let o = (i0 + r) * n + j0;
        out[o..o + NR].copy_from_slice(&acc[r]);
    }
}

/// Generic micro-kernel for edge tiles (`rows < MR` or `cols < NR`): same
/// accumulation chain, but load/store only the valid rectangle. `acc` spills
/// to the stack here, which is fine — edge tiles are at most one strip per
/// dimension.
#[inline(never)]
fn micro_edge(
    a_panel: &[f32],
    b_panel: &[f32],
    out: &mut [f32],
    i0: usize,
    j0: usize,
    n: usize,
    rows: usize,
    cols: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for (r, acc_row) in acc.iter_mut().enumerate().take(rows) {
        let o = (i0 + r) * n + j0;
        acc_row[..cols].copy_from_slice(&out[o..o + cols]);
    }
    for (av, bv) in a_panel.chunks_exact(MR).zip(b_panel.chunks_exact(NR)) {
        for (r, acc_row) in acc.iter_mut().enumerate() {
            let ar = av[r];
            for c in 0..NR {
                acc_row[c] += ar * bv[c];
            }
        }
    }
    for (r, acc_row) in acc.iter().enumerate().take(rows) {
        let o = (i0 + r) * n + j0;
        out[o..o + cols].copy_from_slice(&acc_row[..cols]);
    }
}

/// Register-tiled `out += A·B` over pooled packed panels.
///
/// Each MR×NR output tile is loaded once, accumulated in registers across
/// the **whole** reduction (increasing p, one add per product — bitwise
/// identical to the scalar kernels), and stored once. Panel entries beyond
/// the valid edge are zero-padded; their accumulator lanes are discarded,
/// never stored.
///
/// Packing runs once on the caller; large problems then split their *row
/// panels* across the thread pool. Every output element's accumulation chain
/// is confined to one tile computed by one thread, so the split cannot
/// change bits — the serial path runs the exact same tiles in a different
/// interleaving (see `DESIGN.md` §12).
fn gemm_blocked<const AT: bool, const BT: bool>(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    let mp = m.div_ceil(MR);
    let np = n.div_ceil(NR);
    let mut ap = pool::ScratchF32::zeroed(mp * MR * k);
    let mut bp = pool::ScratchF32::zeroed(np * NR * k);
    pack_a::<AT>(a, &mut ap, m, k);
    pack_b::<BT>(b, &mut bp, k, n);
    if m * k * n >= PAR_MIN_FLOPS {
        let shared = pool::SharedMut::new(out);
        pool::parallel_for(mp, |r| {
            if r.is_empty() {
                return;
            }
            let row0 = r.start * MR;
            let row1 = (r.end * MR).min(m);
            // SAFETY: panel ranges from the static partition map to disjoint
            // row bands of `out`, and the borrow outlives the scoped run.
            let band = unsafe { shared.get(row0 * n, (row1 - row0) * n) };
            gemm_tiles(&ap, &bp, band, m, k, n, r.start, r.end);
        });
    } else {
        gemm_tiles(&ap, &bp, out, m, k, n, 0, mp);
    }
}

/// Runs `f(i)` for every batch index `0..batches`, fanning the indices out
/// across the thread pool when the total problem volume is large enough to
/// amortize one pool round-trip. Batch items must be independent (disjoint
/// outputs), which also makes the fan-out bitwise invariant.
pub(crate) fn par_batches(batches: usize, flops: usize, f: impl Fn(usize) + Sync) {
    if flops >= PAR_MIN_FLOPS {
        pool::parallel_for(batches, |r| {
            for i in r {
                f(i);
            }
        });
    } else {
        for i in 0..batches {
            f(i);
        }
    }
}

crate::simd::simd_hot! {

/// Register-tiled micro-kernel sweep over row panels `ip0..ip1`, writing
/// output rows `ip0*MR .. min(ip1*MR, m)`. `out_rows` is exactly that row
/// band (callers slice it out of the full matrix, so concurrent bands never
/// alias); indices are band-relative while panel lookups stay absolute.
fn gemm_tiles(
    ap: &[f32],
    bp: &[f32],
    out_rows: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    ip0: usize,
    ip1: usize,
) {
    let np = n.div_ceil(NR);
    let row0 = ip0 * MR;
    for jp in 0..np {
        let j0 = jp * NR;
        let cols = NR.min(n - j0);
        let b_panel = &bp[jp * NR * k..(jp + 1) * NR * k];
        for ip in ip0..ip1 {
            let i0 = ip * MR;
            let rows = MR.min(m - i0);
            let a_panel = &ap[ip * MR * k..(ip + 1) * MR * k];
            if rows == MR && cols == NR {
                micro_full(a_panel, b_panel, out_rows, i0 - row0, j0, n);
            } else {
                micro_edge(a_panel, b_panel, out_rows, i0 - row0, j0, n, rows, cols);
            }
        }
    }
}

/// Small-shape `out += a[m,k] * b[k,n]`: an ikj loop that keeps the
/// innermost accesses sequential in both `b` and `out`, with the reduction
/// blocked by 4 so each pass touches four `b` rows per load/store sweep of
/// the `out` row. Bitwise identical to the blocked path (per-element
/// summation order is the same serial chain).
fn matmul_into_small(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        let mut p = 0;
        while p + 4 <= k {
            let (a0, a1, a2, a3) = (a_row[p], a_row[p + 1], a_row[p + 2], a_row[p + 3]);
            let b0 = &b[p * n..(p + 1) * n];
            let b1 = &b[(p + 1) * n..(p + 2) * n];
            let b2 = &b[(p + 2) * n..(p + 3) * n];
            let b3 = &b[(p + 3) * n..(p + 4) * n];
            for j in 0..n {
                // Separate adds, not a reassociated sum: keeps increasing-p
                // summation order per element.
                let mut acc = out_row[j];
                acc += a0 * b0[j];
                acc += a1 * b1[j];
                acc += a2 * b2[j];
                acc += a3 * b3[j];
                out_row[j] = acc;
            }
            p += 4;
        }
        for p in p..k {
            let a_ip = a_row[p];
            let b_row = &b[p * n..(p + 1) * n];
            for (o, &b_pj) in out_row.iter_mut().zip(b_row) {
                *o += a_ip * b_pj;
            }
        }
    }
}

/// Small-shape `out[m,n] += aᵀ * b` with `a` stored `[k,m]`: streams `b`
/// and `out` rows with the reduction blocked by 4.
fn matmul_into_at_small(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    let mut p = 0;
    while p + 4 <= k {
        let b0 = &b[p * n..(p + 1) * n];
        let b1 = &b[(p + 1) * n..(p + 2) * n];
        let b2 = &b[(p + 2) * n..(p + 3) * n];
        let b3 = &b[(p + 3) * n..(p + 4) * n];
        for i in 0..m {
            let (a0, a1, a2, a3) = (
                a[p * m + i],
                a[(p + 1) * m + i],
                a[(p + 2) * m + i],
                a[(p + 3) * m + i],
            );
            let out_row = &mut out[i * n..(i + 1) * n];
            for j in 0..n {
                let mut acc = out_row[j];
                acc += a0 * b0[j];
                acc += a1 * b1[j];
                acc += a2 * b2[j];
                acc += a3 * b3[j];
                out_row[j] = acc;
            }
        }
        p += 4;
    }
    for p in p..k {
        let b_row = &b[p * n..(p + 1) * n];
        for i in 0..m {
            let a_pi = a[p * m + i];
            let out_row = &mut out[i * n..(i + 1) * n];
            for (o, &b_pj) in out_row.iter_mut().zip(b_row) {
                *o += a_pi * b_pj;
            }
        }
    }
}

}

/// `out += a[m,k] * b[k,n]`.
///
/// Large shapes take the register-tiled packed path (row panels fan out
/// across the thread pool — see [`gemm_blocked`]); small shapes use the
/// scalar ikj loop. Both paths produce identical bits: every output
/// element is one serial accumulator chain in increasing reduction order,
/// regardless of tiling, SIMD tier, or thread count.
pub fn matmul_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    if use_blocked(m, k, n) {
        gemm_blocked::<false, false>(a, b, out, m, k, n);
    } else {
        matmul_into_small(a, b, out, m, k, n);
    }
}

/// `out[m,n] += aᵀ[m,k] * b[k,n]` with `a` stored untransposed as `[k,m]`.
///
/// The reduction index is the *leading* dimension of both inputs; the packed
/// path gathers `a` columns into row panels during packing, the small path
/// streams `b` and `out` rows with the reduction blocked by 4.
pub fn matmul_into_at(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    if use_blocked(m, k, n) {
        gemm_blocked::<true, false>(a, b, out, m, k, n);
    } else {
        matmul_into_at_small(a, b, out, m, k, n);
    }
}

/// `out[m,n] += a[m,k] * bᵀ[k,n]` with `b` stored untransposed as `[n,k]`.
///
/// The packed path reads `b` rows directly as column panels (the transpose
/// is free in the packing gather). The small path packs `b` into a pooled
/// transposed `[k,n]` scratch tile — bounded and reusable via the pool,
/// unlike the unbounded thread-local it replaces — and runs the blocked
/// small loop of [`matmul_into`]. Either way the pack is kernel-internal:
/// callers (in particular the backward closures) never see or allocate a
/// transposed tensor, and the per-element summation order is identical to
/// composing a materialized transpose with [`matmul_into`].
pub fn matmul_into_bt(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(out.len(), m * n);
    if use_blocked(m, k, n) {
        return gemm_blocked::<false, true>(a, b, out, m, k, n);
    }
    let mut bt = pool::ScratchF32::zeroed(k * n);
    for (j, b_row) in b.chunks_exact(k).enumerate() {
        for (p, &v) in b_row.iter().enumerate() {
            bt[p * n + j] = v;
        }
    }
    matmul_into_small(a, &bt, out, m, k, n);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let z = Tensor::zeros([2, 3]);
        assert_eq!(z.numel(), 6);
        assert!(z.data().iter().all(|&x| x == 0.0));
        assert_eq!(Tensor::scalar(4.0).item(), 4.0);
        assert_eq!(Tensor::vector(&[1.0, 2.0]).shape().rank(), 1);
    }

    #[test]
    #[should_panic(expected = "shape")]
    fn new_rejects_bad_length() {
        Tensor::new([2, 2], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::matrix(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Tensor::matrix(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::matrix(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let i = Tensor::matrix(&[&[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0], &[0.0, 0.0, 1.0]]);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn bmm_matches_per_batch_matmul() {
        let a = Tensor::new([2, 2, 3], (0..12).map(|x| x as f32).collect());
        let b = Tensor::new([2, 3, 2], (0..12).map(|x| (x as f32) * 0.5).collect());
        let c = a.bmm(&b);
        for i in 0..2 {
            let ai = Tensor::new([2, 3], a.data()[i * 6..(i + 1) * 6].to_vec());
            let bi = Tensor::new([3, 2], b.data()[i * 6..(i + 1) * 6].to_vec());
            let ci = ai.matmul(&bi);
            assert_eq!(&c.data()[i * 4..(i + 1) * 4], ci.data());
        }
    }

    /// Reference single-order GEMM: the determinism contract all tiled
    /// kernels must match bitwise.
    fn matmul_ref(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                for p in 0..k {
                    out[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        out
    }

    fn seq(n: usize, scale: f32) -> Vec<f32> {
        (0..n)
            .map(|x| (x as f32 * 0.37 - 1.3) * scale * if x % 3 == 0 { -1.0 } else { 1.0 })
            .collect()
    }

    #[test]
    fn tiled_matmul_matches_reference_bitwise() {
        // Cover remainder lanes: k and n both at, below and above multiples
        // of the 4-wide tiles.
        for &(m, k, n) in &[
            (1, 1, 1),
            (2, 3, 5),
            (3, 4, 4),
            (5, 7, 6),
            (4, 8, 9),
            (6, 5, 3),
        ] {
            let a = seq(m * k, 0.7);
            let b = seq(k * n, 0.9);
            let mut out = vec![0.0f32; m * n];
            matmul_into(&a, &b, &mut out, m, k, n);
            assert_eq!(out, matmul_ref(&a, &b, m, k, n), "shape {m}x{k}x{n}");
        }
    }

    #[test]
    fn blocked_gemm_matches_reference_bitwise_on_odd_sizes() {
        // Drive the register-tiled path directly (below the dispatch
        // threshold) on degenerate and odd shapes: 1×1×1, 3×5×7, and every
        // combination straddling the MR/NR tile boundaries by ±1.
        let mut shapes = vec![(1usize, 1usize, 1usize), (3, 5, 7)];
        for m in [MR - 1, MR, MR + 1, 2 * MR + 1] {
            for n in [NR - 1, NR, NR + 1, 2 * NR + 1] {
                for k in [1, 3, 4, 5] {
                    shapes.push((m, k, n));
                }
            }
        }
        for &(m, k, n) in &shapes {
            let a = seq(m * k, 0.7);
            let b = seq(k * n, 0.9);
            let mut out = vec![0.0f32; m * n];
            gemm_blocked::<false, false>(&a, &b, &mut out, m, k, n);
            assert_eq!(out, matmul_ref(&a, &b, m, k, n), "shape {m}x{k}x{n}");
        }
    }

    #[test]
    fn blocked_dispatch_matches_scalar_kernels_bitwise() {
        // Shapes above the dispatch threshold, including tile-boundary ±1
        // edges, must produce the same bits as the scalar small-path kernels
        // (and hence the pre-blocking kernels).
        for &(m, k, n) in &[
            (16, 32, 16),
            (15, 31, 23),
            (17, 33, 25),
            (32, 17, 24),
            (33, 16, 23),
            (48, 48, 48),
        ] {
            assert!(use_blocked(m, k, n), "shape {m}x{k}x{n} not blocked");
            let a = seq(m * k, 0.7);
            let b = seq(k * n, 0.9);
            let mut out = vec![0.1f32; m * n];
            matmul_into(&a, &b, &mut out, m, k, n);
            // Scalar reference seeded from the same nonzero out.
            let mut expect = vec![0.1f32; m * n];
            for i in 0..m {
                for j in 0..n {
                    for p in 0..k {
                        expect[i * n + j] += a[i * k + p] * b[p * n + j];
                    }
                }
            }
            assert_eq!(out, expect, "shape {m}x{k}x{n}");

            // Aᵀ·B variant on the same shape.
            let at = Tensor::new([m, k], a.clone()).transpose();
            let mut out_at = vec![0.1f32; m * n];
            matmul_into_at(at.data(), &b, &mut out_at, m, k, n);
            assert_eq!(out_at, expect, "at shape {m}x{k}x{n}");

            // A·Bᵀ variant on the same shape.
            let bt = Tensor::new([k, n], b.clone()).transpose();
            let mut out_bt = vec![0.1f32; m * n];
            matmul_into_bt(&a, bt.data(), &mut out_bt, m, k, n);
            assert_eq!(out_bt, expect, "bt shape {m}x{k}x{n}");
        }
    }

    #[test]
    fn matmul_at_matches_materialized_transpose_bitwise() {
        for &(m, k, n) in &[(1, 1, 2), (3, 5, 4), (4, 4, 4), (2, 7, 3), (5, 8, 6)] {
            // a stored as [k, m]; Aᵀ·B must equal transpose-then-matmul.
            let a = Tensor::new([k, m], seq(k * m, 0.6));
            let b = Tensor::new([k, n], seq(k * n, 1.1));
            let expect = a.transpose().matmul(&b);
            let mut out = vec![0.0f32; m * n];
            matmul_into_at(a.data(), b.data(), &mut out, m, k, n);
            assert_eq!(out, expect.data(), "shape {m}x{k}x{n}");
        }
    }

    #[test]
    fn matmul_bt_matches_materialized_transpose_bitwise() {
        for &(m, k, n) in &[(2, 1, 1), (3, 5, 4), (4, 4, 4), (2, 7, 3), (5, 8, 6)] {
            // b stored as [n, k]; A·Bᵀ must equal transpose-then-matmul.
            let a = Tensor::new([m, k], seq(m * k, 0.8));
            let b = Tensor::new([n, k], seq(n * k, 1.2));
            let expect = a.matmul(&b.transpose());
            let mut out = vec![0.0f32; m * n];
            matmul_into_bt(a.data(), b.data(), &mut out, m, k, n);
            assert_eq!(out, expect.data(), "shape {m}x{k}x{n}");
        }
    }

    #[test]
    fn fused_kernels_accumulate_into_nonzero_out() {
        // All three kernels have `+=` semantics so backward rules can
        // accumulate straight into an existing gradient buffer.
        let a = seq(6, 1.0);
        let b = seq(6, 0.5);
        let mut out = vec![1.0f32; 4];
        matmul_into(&a, &b, &mut out, 2, 3, 2);
        // Same accumulation order seeded from the same pre-existing values.
        let mut expect = vec![1.0f32; 4];
        for i in 0..2 {
            for p in 0..3 {
                for j in 0..2 {
                    expect[i * 2 + j] += a[i * 3 + p] * b[p * 2 + j];
                }
            }
        }
        assert_eq!(out, expect);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Tensor::new([2, 3], (0..6).map(|x| x as f32).collect());
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape().as_matrix(), (3, 2));
    }

    #[test]
    fn transpose_batch_matches_loop() {
        let a = Tensor::new([2, 2, 3], (0..12).map(|x| x as f32).collect());
        let t = a.transpose_batch();
        assert_eq!(t.shape().as_batch_matrix(), (2, 3, 2));
        for b in 0..2 {
            for r in 0..2 {
                for c in 0..3 {
                    assert_eq!(t.data()[b * 6 + c * 2 + r], a.data()[b * 6 + r * 3 + c]);
                }
            }
        }
    }

    #[test]
    fn reductions() {
        let a = Tensor::vector(&[1.0, 2.0, 3.0]);
        assert_eq!(a.sum(), 6.0);
        assert_eq!(a.mean(), 2.0);
        assert_eq!(a.max(), 3.0);
        assert!((a.norm() - 14.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn row_access() {
        let a = Tensor::new([2, 2, 2], (0..8).map(|x| x as f32).collect());
        assert_eq!(a.row(3), &[6.0, 7.0]);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Tensor::vector(&[1.0, 2.0]);
        let b = Tensor::vector(&[10.0, 20.0]);
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[6.0, 12.0]);
        a.scale_in_place(2.0);
        assert_eq!(a.data(), &[12.0, 24.0]);
    }
}
