//! The dense `f32` tensor container and its non-differentiable kernels.
//!
//! These kernels are shared by the autodiff layer (forward evaluation and the
//! hand-written backward rules in [`crate::ops`]) and by non-learned code such
//! as the baselines.

use crate::shape::Shape;

/// A dense, row-major, contiguous `f32` tensor.
#[derive(Clone, PartialEq, Debug)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from raw data; panics if `data.len()` disagrees with `shape`.
    pub fn new(shape: impl Into<Shape>, data: Vec<f32>) -> Self {
        let shape = shape.into();
        assert_eq!(
            shape.numel(),
            data.len(),
            "shape {shape} wants {} elements, got {}",
            shape.numel(),
            data.len()
        );
        Tensor { shape, data }
    }

    /// A tensor of zeros.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        Tensor {
            shape,
            data: vec![0.0; n],
        }
    }

    /// A tensor of ones.
    pub fn ones(shape: impl Into<Shape>) -> Self {
        Self::full(shape, 1.0)
    }

    /// A tensor filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        Tensor {
            shape,
            data: vec![value; n],
        }
    }

    /// A rank-0 scalar.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            shape: Shape::scalar(),
            data: vec![value],
        }
    }

    /// A rank-1 tensor from a slice.
    pub fn vector(values: &[f32]) -> Self {
        Tensor::new([values.len()], values.to_vec())
    }

    /// A rank-2 tensor from rows; panics on ragged input.
    pub fn matrix(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged matrix rows");
            data.extend_from_slice(row);
        }
        Tensor::new([r, c], data)
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Flat row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its flat data.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// The single value of a rank-0/1-element tensor.
    pub fn item(&self) -> f32 {
        assert_eq!(
            self.data.len(),
            1,
            "item() on tensor with {} elements",
            self.data.len()
        );
        self.data[0]
    }

    /// Row `i` when viewed as `[leading, last_dim]`.
    pub fn row(&self, i: usize) -> &[f32] {
        let d = self.shape.last_dim();
        let rows = self.shape.leading();
        assert!(i < rows, "row {i} out of range ({rows} rows)");
        &self.data[i * d..(i + 1) * d]
    }

    /// Metadata-only reshape; panics if the element count changes.
    pub fn reshape(&self, shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        assert_eq!(
            shape.numel(),
            self.numel(),
            "reshape {} -> {shape} changes element count",
            self.shape
        );
        Tensor {
            shape,
            data: self.data.clone(),
        }
    }

    /// Elementwise map.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Elementwise combination of two same-shape tensors.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(
            self.shape, other.shape,
            "zip shape mismatch {} vs {}",
            self.shape, other.shape
        );
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Tensor {
            shape: self.shape.clone(),
            data,
        }
    }

    /// In-place `self += other` (same shape).
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place `self += alpha * other` (same shape).
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "axpy shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Scales every element in place.
    pub fn scale_in_place(&mut self, alpha: f32) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// L2 norm of the flattened tensor.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Maximum element; `f32::NEG_INFINITY` if empty.
    pub fn max(&self) -> f32 {
        self.data.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x))
    }

    /// True when every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    // ---- matrix kernels -------------------------------------------------

    /// Rank-2 matrix product `[m,k] x [k,n] -> [m,n]`.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        let (m, k) = self.shape.as_matrix();
        let (k2, n) = rhs.shape.as_matrix();
        assert_eq!(
            k, k2,
            "matmul inner-dim mismatch {} vs {}",
            self.shape, rhs.shape
        );
        let mut out = vec![0.0f32; m * n];
        matmul_into(&self.data, &rhs.data, &mut out, m, k, n);
        Tensor::new([m, n], out)
    }

    /// Batched matrix product `[b,m,k] x [b,k,n] -> [b,m,n]`.
    pub fn bmm(&self, rhs: &Tensor) -> Tensor {
        let (b, m, k) = self.shape.as_batch_matrix();
        let (b2, k2, n) = rhs.shape.as_batch_matrix();
        assert_eq!(b, b2, "bmm batch mismatch {} vs {}", self.shape, rhs.shape);
        assert_eq!(
            k, k2,
            "bmm inner-dim mismatch {} vs {}",
            self.shape, rhs.shape
        );
        let mut out = vec![0.0f32; b * m * n];
        for i in 0..b {
            matmul_into(
                &self.data[i * m * k..(i + 1) * m * k],
                &rhs.data[i * k * n..(i + 1) * k * n],
                &mut out[i * m * n..(i + 1) * m * n],
                m,
                k,
                n,
            );
        }
        Tensor::new([b, m, n], out)
    }

    /// Rank-2 transpose (materialized).
    pub fn transpose(&self) -> Tensor {
        let (m, n) = self.shape.as_matrix();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor::new([n, m], out)
    }

    /// Batched transpose of the last two dims `[b,m,n] -> [b,n,m]`.
    pub fn transpose_batch(&self) -> Tensor {
        let (b, m, n) = self.shape.as_batch_matrix();
        let mut out = vec![0.0f32; b * m * n];
        for i in 0..b {
            let src = &self.data[i * m * n..(i + 1) * m * n];
            let dst = &mut out[i * m * n..(i + 1) * m * n];
            for r in 0..m {
                for c in 0..n {
                    dst[c * m + r] = src[r * n + c];
                }
            }
        }
        Tensor::new([b, n, m], out)
    }
}

// ---- raw GEMM kernels ---------------------------------------------------
//
// Three transpose-fused variants (`A·B`, `Aᵀ·B`, `A·Bᵀ`) shared by the
// forward kernels above and the backward rules in `crate::ops::linalg` —
// together they close matmul under differentiation without ever
// materializing a transpose. All three obey one determinism contract:
// every output element is produced by a single accumulator that consumes
// the k products in strictly increasing reduction-index order. Register
// tiling (4-wide unrolls, k-blocking) only ever splits the *independent*
// dimensions (i, j), never the reduction, so results are bitwise-stable
// across kernel rewrites — the bitwise loss-trajectory test depends on it.

/// `out += a[m,k] * b[k,n]`.
///
/// ikj loop order keeps the innermost accesses sequential in both `b` and
/// `out`; the reduction dimension is blocked by 4 so each pass touches four
/// `b` rows per load/store sweep of the `out` row (4× less `out` traffic),
/// with the per-element summation order unchanged.
pub fn matmul_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        let mut p = 0;
        while p + 4 <= k {
            let (a0, a1, a2, a3) = (a_row[p], a_row[p + 1], a_row[p + 2], a_row[p + 3]);
            let b0 = &b[p * n..(p + 1) * n];
            let b1 = &b[(p + 1) * n..(p + 2) * n];
            let b2 = &b[(p + 2) * n..(p + 3) * n];
            let b3 = &b[(p + 3) * n..(p + 4) * n];
            for j in 0..n {
                // Separate adds, not a reassociated sum: keeps increasing-p
                // summation order per element.
                let mut acc = out_row[j];
                acc += a0 * b0[j];
                acc += a1 * b1[j];
                acc += a2 * b2[j];
                acc += a3 * b3[j];
                out_row[j] = acc;
            }
            p += 4;
        }
        for p in p..k {
            let a_ip = a_row[p];
            let b_row = &b[p * n..(p + 1) * n];
            for (o, &b_pj) in out_row.iter_mut().zip(b_row) {
                *o += a_ip * b_pj;
            }
        }
    }
}

/// `out[m,n] += aᵀ[m,k] * b[k,n]` with `a` stored untransposed as `[k,m]`.
///
/// The reduction index is the *leading* dimension of both inputs, so the
/// inner loop still streams `b` and `out` rows contiguously; blocking the
/// reduction by 4 quarters the passes over `out`.
pub fn matmul_into_at(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    let mut p = 0;
    while p + 4 <= k {
        let b0 = &b[p * n..(p + 1) * n];
        let b1 = &b[(p + 1) * n..(p + 2) * n];
        let b2 = &b[(p + 2) * n..(p + 3) * n];
        let b3 = &b[(p + 3) * n..(p + 4) * n];
        for i in 0..m {
            let (a0, a1, a2, a3) = (
                a[p * m + i],
                a[(p + 1) * m + i],
                a[(p + 2) * m + i],
                a[(p + 3) * m + i],
            );
            let out_row = &mut out[i * n..(i + 1) * n];
            for j in 0..n {
                let mut acc = out_row[j];
                acc += a0 * b0[j];
                acc += a1 * b1[j];
                acc += a2 * b2[j];
                acc += a3 * b3[j];
                out_row[j] = acc;
            }
        }
        p += 4;
    }
    for p in p..k {
        let b_row = &b[p * n..(p + 1) * n];
        for i in 0..m {
            let a_pi = a[p * m + i];
            let out_row = &mut out[i * n..(i + 1) * n];
            for (o, &b_pj) in out_row.iter_mut().zip(b_row) {
                *o += a_pi * b_pj;
            }
        }
    }
}

/// `out[m,n] += a[m,k] * bᵀ[k,n]` with `b` stored untransposed as `[n,k]`.
///
/// Direct row-dot evaluation cannot vectorize here — the per-element
/// reduction must stay a single serial chain — so the kernel instead packs
/// `b` into a transposed `[k,n]` scratch tile (reused thread-locally, no
/// steady-state allocation) and runs the same j-contiguous blocked loop as
/// [`matmul_into`]. The pack is kernel-internal: callers (in particular the
/// backward closures) never see or allocate a transposed tensor, and the
/// per-element summation order is identical to composing a materialized
/// transpose with `matmul_into`.
pub fn matmul_into_bt(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    use std::cell::RefCell;
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(out.len(), m * n);
    thread_local! {
        static PACK: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
    }
    PACK.with(|cell| {
        let mut bt = cell.borrow_mut();
        bt.clear();
        bt.resize(k * n, 0.0);
        for (j, b_row) in b.chunks_exact(k).enumerate() {
            for (p, &v) in b_row.iter().enumerate() {
                bt[p * n + j] = v;
            }
        }
        matmul_into(a, &bt, out, m, k, n);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let z = Tensor::zeros([2, 3]);
        assert_eq!(z.numel(), 6);
        assert!(z.data().iter().all(|&x| x == 0.0));
        assert_eq!(Tensor::scalar(4.0).item(), 4.0);
        assert_eq!(Tensor::vector(&[1.0, 2.0]).shape().rank(), 1);
    }

    #[test]
    #[should_panic(expected = "shape")]
    fn new_rejects_bad_length() {
        Tensor::new([2, 2], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::matrix(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Tensor::matrix(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::matrix(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let i = Tensor::matrix(&[&[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0], &[0.0, 0.0, 1.0]]);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn bmm_matches_per_batch_matmul() {
        let a = Tensor::new([2, 2, 3], (0..12).map(|x| x as f32).collect());
        let b = Tensor::new([2, 3, 2], (0..12).map(|x| (x as f32) * 0.5).collect());
        let c = a.bmm(&b);
        for i in 0..2 {
            let ai = Tensor::new([2, 3], a.data()[i * 6..(i + 1) * 6].to_vec());
            let bi = Tensor::new([3, 2], b.data()[i * 6..(i + 1) * 6].to_vec());
            let ci = ai.matmul(&bi);
            assert_eq!(&c.data()[i * 4..(i + 1) * 4], ci.data());
        }
    }

    /// Reference single-order GEMM: the determinism contract all tiled
    /// kernels must match bitwise.
    fn matmul_ref(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                for p in 0..k {
                    out[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        out
    }

    fn seq(n: usize, scale: f32) -> Vec<f32> {
        (0..n)
            .map(|x| (x as f32 * 0.37 - 1.3) * scale * if x % 3 == 0 { -1.0 } else { 1.0 })
            .collect()
    }

    #[test]
    fn tiled_matmul_matches_reference_bitwise() {
        // Cover remainder lanes: k and n both at, below and above multiples
        // of the 4-wide tiles.
        for &(m, k, n) in &[
            (1, 1, 1),
            (2, 3, 5),
            (3, 4, 4),
            (5, 7, 6),
            (4, 8, 9),
            (6, 5, 3),
        ] {
            let a = seq(m * k, 0.7);
            let b = seq(k * n, 0.9);
            let mut out = vec![0.0f32; m * n];
            matmul_into(&a, &b, &mut out, m, k, n);
            assert_eq!(out, matmul_ref(&a, &b, m, k, n), "shape {m}x{k}x{n}");
        }
    }

    #[test]
    fn matmul_at_matches_materialized_transpose_bitwise() {
        for &(m, k, n) in &[(1, 1, 2), (3, 5, 4), (4, 4, 4), (2, 7, 3), (5, 8, 6)] {
            // a stored as [k, m]; Aᵀ·B must equal transpose-then-matmul.
            let a = Tensor::new([k, m], seq(k * m, 0.6));
            let b = Tensor::new([k, n], seq(k * n, 1.1));
            let expect = a.transpose().matmul(&b);
            let mut out = vec![0.0f32; m * n];
            matmul_into_at(a.data(), b.data(), &mut out, m, k, n);
            assert_eq!(out, expect.data(), "shape {m}x{k}x{n}");
        }
    }

    #[test]
    fn matmul_bt_matches_materialized_transpose_bitwise() {
        for &(m, k, n) in &[(2, 1, 1), (3, 5, 4), (4, 4, 4), (2, 7, 3), (5, 8, 6)] {
            // b stored as [n, k]; A·Bᵀ must equal transpose-then-matmul.
            let a = Tensor::new([m, k], seq(m * k, 0.8));
            let b = Tensor::new([n, k], seq(n * k, 1.2));
            let expect = a.matmul(&b.transpose());
            let mut out = vec![0.0f32; m * n];
            matmul_into_bt(a.data(), b.data(), &mut out, m, k, n);
            assert_eq!(out, expect.data(), "shape {m}x{k}x{n}");
        }
    }

    #[test]
    fn fused_kernels_accumulate_into_nonzero_out() {
        // All three kernels have `+=` semantics so backward rules can
        // accumulate straight into an existing gradient buffer.
        let a = seq(6, 1.0);
        let b = seq(6, 0.5);
        let mut out = vec![1.0f32; 4];
        matmul_into(&a, &b, &mut out, 2, 3, 2);
        // Same accumulation order seeded from the same pre-existing values.
        let mut expect = vec![1.0f32; 4];
        for i in 0..2 {
            for p in 0..3 {
                for j in 0..2 {
                    expect[i * 2 + j] += a[i * 3 + p] * b[p * 2 + j];
                }
            }
        }
        assert_eq!(out, expect);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Tensor::new([2, 3], (0..6).map(|x| x as f32).collect());
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape().as_matrix(), (3, 2));
    }

    #[test]
    fn transpose_batch_matches_loop() {
        let a = Tensor::new([2, 2, 3], (0..12).map(|x| x as f32).collect());
        let t = a.transpose_batch();
        assert_eq!(t.shape().as_batch_matrix(), (2, 3, 2));
        for b in 0..2 {
            for r in 0..2 {
                for c in 0..3 {
                    assert_eq!(t.data()[b * 6 + c * 2 + r], a.data()[b * 6 + r * 3 + c]);
                }
            }
        }
    }

    #[test]
    fn reductions() {
        let a = Tensor::vector(&[1.0, 2.0, 3.0]);
        assert_eq!(a.sum(), 6.0);
        assert_eq!(a.mean(), 2.0);
        assert_eq!(a.max(), 3.0);
        assert!((a.norm() - 14.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn row_access() {
        let a = Tensor::new([2, 2, 2], (0..8).map(|x| x as f32).collect());
        assert_eq!(a.row(3), &[6.0, 7.0]);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Tensor::vector(&[1.0, 2.0]);
        let b = Tensor::vector(&[10.0, 20.0]);
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[6.0, 12.0]);
        a.scale_in_place(2.0);
        assert_eq!(a.data(), &[12.0, 24.0]);
    }
}
