//! Tape-free forward evaluation for inference/serving.
//!
//! Training builds every activation as a [`Tape`] node carrying a boxed
//! backward closure; a serving process never calls `backward`, so those
//! closures (and the `GradStore` plumbing behind them) are pure overhead.
//! This module splits the *forward* op set out into the [`Forward`] trait,
//! implemented twice:
//!
//! - by [`Tape`], delegating to the existing differentiable ops (training and
//!   any code that might still want gradients keeps working unchanged);
//! - by [`InferCtx`], a value-only arena: each op computes the identical
//!   forward tensor and stores it, recording nothing else.
//!
//! ## Bitwise contract
//!
//! `InferCtx` does not approximate the taped forward — it *is* the taped
//! forward. Every op either calls the very same kernel ([`Tensor::matmul`],
//! [`Tensor::bmm`], `softmax_row`, `layer_norm_rows`, `gelu_fwd`,
//! `attn_probs_forward`/`attn_merge_forward`) or repeats the same elementwise
//! expression in the same evaluation order, so a model evaluated through
//! `InferCtx` produces bit-identical outputs to the taped graph. The
//! equivalence tests below and the model-shape test in `chainsformer` pin
//! this.

use crate::ops::attn::{attn_merge_forward, attn_probs_forward};
use crate::ops::elementwise::gelu_fwd;
use crate::ops::reduce::{layer_norm_rows, softmax_row};
use crate::params::{ParamId, ParamStore};
use crate::shape::Shape;
use crate::tape::{Tape, Var};
use crate::tensor::Tensor;

/// The forward-only op set shared by [`Tape`] (training) and [`InferCtx`]
/// (serving). Layer `forward` methods are generic over this trait, so one
/// definition of a model serves both paths with bit-identical results.
///
/// The methods mirror the inherent `Tape` ops exactly — see `crate::ops` for
/// semantics. Only the subset reachable from inference forwards is included;
/// loss, dropout and the transpose-fused training variants stay `Tape`-only.
pub trait Forward {
    /// Reads the tensor behind a handle.
    fn value(&self, v: Var) -> &Tensor;
    /// Registers an input tensor (a differentiable leaf on the tape).
    fn leaf(&mut self, value: Tensor) -> Var;
    /// Registers a non-differentiable constant tensor.
    fn constant(&mut self, value: Tensor) -> Var;
    /// Brings a parameter from the store into the graph.
    fn param(&mut self, store: &ParamStore, id: ParamId) -> Var;
    /// `a + b`, same shape.
    fn add(&mut self, a: Var, b: Var) -> Var;
    /// Hadamard product `a ⊙ b`, same shape.
    fn mul(&mut self, a: Var, b: Var) -> Var;
    /// `a + c` for a scalar constant `c`.
    fn add_scalar(&mut self, a: Var, c: f32) -> Var;
    /// `c * a` for a scalar constant `c`.
    fn mul_scalar(&mut self, a: Var, c: f32) -> Var;
    /// Row-broadcast add: `a[.., d] + b[d]`.
    fn add_bias(&mut self, a: Var, b: Var) -> Var;
    /// Row-broadcast multiply: `a[.., d] ⊙ b[d]`.
    fn mul_bcast_row(&mut self, a: Var, b: Var) -> Var;
    /// Scales each row of `a` (viewed as `[L, d]`) by the matching scalar of
    /// `w`.
    fn scale_rows(&mut self, a: Var, w: Var) -> Var;
    /// Rectified linear unit.
    fn relu(&mut self, a: Var) -> Var;
    /// GELU with the tanh approximation.
    fn gelu(&mut self, a: Var) -> Var;
    /// Hyperbolic tangent.
    fn tanh(&mut self, a: Var) -> Var;
    /// Logistic sigmoid.
    fn sigmoid(&mut self, a: Var) -> Var;
    /// Rank-2 matrix product.
    fn matmul(&mut self, a: Var, b: Var) -> Var;
    /// Batched matrix product `[b,m,k] x [b,k,n]`.
    fn bmm(&mut self, a: Var, b: Var) -> Var;
    /// Metadata-only reshape.
    fn reshape(&mut self, a: Var, shape: Shape) -> Var;
    /// Slices `len` columns starting at `start` from the last dimension.
    fn slice_last(&mut self, a: Var, start: usize, len: usize) -> Var;
    /// Concatenates tensors along the last dimension.
    fn concat_last(&mut self, parts: &[Var]) -> Var;
    /// Gathers rows of `a` (viewed as `[L, d]`) by index.
    fn select_rows(&mut self, a: Var, indices: &[usize]) -> Var;
    /// Stacks rank-1 vectors of equal length into a `[k, d]` matrix.
    fn stack_rows(&mut self, rows: &[Var]) -> Var;
    /// Extracts row `i` of `a` (viewed as `[L, d]`) as a rank-1 vector.
    fn row(&mut self, a: Var, i: usize) -> Var;
    /// Sum of all elements, producing a scalar.
    fn sum_all(&mut self, a: Var) -> Var;
    /// Sums a rank-3 tensor over its middle dimension: `[B,T,d] -> [B,d]`.
    fn sum_dim1(&mut self, a: Var) -> Var;
    /// Row-wise softmax over the last dimension.
    fn softmax_last(&mut self, a: Var) -> Var;
    /// Row-wise layer normalization over the last dimension (no affine).
    fn layer_norm_last(&mut self, a: Var, eps: f32) -> Var;
    /// Fused multi-head attention over packed `[B, T, d]` projections.
    fn fused_attention(
        &mut self,
        q: Var,
        k: Var,
        v: Var,
        heads: usize,
        scale: f32,
        add_mask: Option<&Tensor>,
    ) -> Var;
}

/// A reusable forward arena: a [`Forward`] context that can be cleared and
/// driven again for the next request without reallocating. Implemented by
/// [`InferCtx`] and [`crate::quant::QuantInferCtx`]; batch-serving entry
/// points are generic over this trait so one definition serves the f32 and
/// quantized paths.
pub trait ForwardArena: Forward {
    /// Drops all recorded values (invalidating outstanding handles) so the
    /// context can be reused.
    fn clear(&mut self);
}

impl ForwardArena for InferCtx {
    fn clear(&mut self) {
        InferCtx::clear(self);
    }
}

impl Forward for Tape {
    fn value(&self, v: Var) -> &Tensor {
        Tape::value(self, v)
    }
    fn leaf(&mut self, value: Tensor) -> Var {
        Tape::leaf(self, value)
    }
    fn constant(&mut self, value: Tensor) -> Var {
        Tape::constant(self, value)
    }
    fn param(&mut self, store: &ParamStore, id: ParamId) -> Var {
        Tape::param(self, store, id)
    }
    fn add(&mut self, a: Var, b: Var) -> Var {
        Tape::add(self, a, b)
    }
    fn mul(&mut self, a: Var, b: Var) -> Var {
        Tape::mul(self, a, b)
    }
    fn add_scalar(&mut self, a: Var, c: f32) -> Var {
        Tape::add_scalar(self, a, c)
    }
    fn mul_scalar(&mut self, a: Var, c: f32) -> Var {
        Tape::mul_scalar(self, a, c)
    }
    fn add_bias(&mut self, a: Var, b: Var) -> Var {
        Tape::add_bias(self, a, b)
    }
    fn mul_bcast_row(&mut self, a: Var, b: Var) -> Var {
        Tape::mul_bcast_row(self, a, b)
    }
    fn scale_rows(&mut self, a: Var, w: Var) -> Var {
        Tape::scale_rows(self, a, w)
    }
    fn relu(&mut self, a: Var) -> Var {
        Tape::relu(self, a)
    }
    fn gelu(&mut self, a: Var) -> Var {
        Tape::gelu(self, a)
    }
    fn tanh(&mut self, a: Var) -> Var {
        Tape::tanh(self, a)
    }
    fn sigmoid(&mut self, a: Var) -> Var {
        Tape::sigmoid(self, a)
    }
    fn matmul(&mut self, a: Var, b: Var) -> Var {
        Tape::matmul(self, a, b)
    }
    fn bmm(&mut self, a: Var, b: Var) -> Var {
        Tape::bmm(self, a, b)
    }
    fn reshape(&mut self, a: Var, shape: Shape) -> Var {
        Tape::reshape(self, a, shape)
    }
    fn slice_last(&mut self, a: Var, start: usize, len: usize) -> Var {
        Tape::slice_last(self, a, start, len)
    }
    fn concat_last(&mut self, parts: &[Var]) -> Var {
        Tape::concat_last(self, parts)
    }
    fn select_rows(&mut self, a: Var, indices: &[usize]) -> Var {
        Tape::select_rows(self, a, indices)
    }
    fn stack_rows(&mut self, rows: &[Var]) -> Var {
        Tape::stack_rows(self, rows)
    }
    fn row(&mut self, a: Var, i: usize) -> Var {
        Tape::row(self, a, i)
    }
    fn sum_all(&mut self, a: Var) -> Var {
        Tape::sum_all(self, a)
    }
    fn sum_dim1(&mut self, a: Var) -> Var {
        Tape::sum_dim1(self, a)
    }
    fn softmax_last(&mut self, a: Var) -> Var {
        Tape::softmax_last(self, a)
    }
    fn layer_norm_last(&mut self, a: Var, eps: f32) -> Var {
        Tape::layer_norm_last(self, a, eps)
    }
    fn fused_attention(
        &mut self,
        q: Var,
        k: Var,
        v: Var,
        heads: usize,
        scale: f32,
        add_mask: Option<&Tensor>,
    ) -> Var {
        Tape::fused_attention(self, q, k, v, heads, scale, add_mask)
    }
}

/// A value-only evaluation arena: the tape-free forward pass.
///
/// Holds one [`Tensor`] per op output and nothing else — no backward
/// closures, no parent bookkeeping, no `GradStore`. `Var` handles index into
/// this arena exactly as they index into a `Tape`, so layer code is oblivious
/// to which one it is running on.
#[derive(Default)]
pub struct InferCtx {
    vals: Vec<Tensor>,
}

impl InferCtx {
    /// Creates an empty context.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded values.
    pub fn len(&self) -> usize {
        self.vals.len()
    }

    /// True when nothing has been evaluated yet.
    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }

    /// Drops all recorded values (invalidating outstanding handles) so the
    /// context can be reused for the next request without reallocating the
    /// arena itself.
    pub fn clear(&mut self) {
        self.vals.clear();
    }

    fn push(&mut self, value: Tensor) -> Var {
        self.vals.push(value);
        Var(self.vals.len() - 1)
    }
}

impl Forward for InferCtx {
    fn value(&self, v: Var) -> &Tensor {
        &self.vals[v.0]
    }

    fn leaf(&mut self, value: Tensor) -> Var {
        self.push(value)
    }

    fn constant(&mut self, value: Tensor) -> Var {
        self.push(value)
    }

    fn param(&mut self, store: &ParamStore, id: ParamId) -> Var {
        self.push(store.get(id).clone())
    }

    fn add(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).zip(self.value(b), |x, y| x + y);
        self.push(value)
    }

    fn mul(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).zip(self.value(b), |x, y| x * y);
        self.push(value)
    }

    fn add_scalar(&mut self, a: Var, c: f32) -> Var {
        let value = self.value(a).map(|x| x + c);
        self.push(value)
    }

    fn mul_scalar(&mut self, a: Var, c: f32) -> Var {
        let value = self.value(a).map(|x| c * x);
        self.push(value)
    }

    fn add_bias(&mut self, a: Var, b: Var) -> Var {
        let av = self.value(a);
        let d = av.shape().last_dim();
        let bv = self.value(b);
        assert_eq!(
            bv.shape().numel(),
            d,
            "add_bias: bias length {} != last dim {d}",
            bv.numel()
        );
        let mut out = av.clone();
        let rows = out.shape().leading();
        crate::ops::elementwise::add_bias_rows(out.data_mut(), bv.data(), rows, d);
        self.push(out)
    }

    fn mul_bcast_row(&mut self, a: Var, b: Var) -> Var {
        let av = self.value(a);
        let d = av.shape().last_dim();
        let bv = self.value(b);
        assert_eq!(
            bv.shape().numel(),
            d,
            "mul_bcast_row: length {} != last dim {d}",
            bv.numel()
        );
        let mut out = av.clone();
        let rows = out.shape().leading();
        crate::ops::elementwise::mul_rows(out.data_mut(), bv.data(), rows, d);
        self.push(out)
    }

    fn scale_rows(&mut self, a: Var, w: Var) -> Var {
        let av = self.value(a);
        let d = av.shape().last_dim();
        let rows = av.shape().leading();
        let wv = self.value(w);
        assert_eq!(
            wv.numel(),
            rows,
            "scale_rows: weights {} != rows {rows}",
            wv.numel()
        );
        let mut out = av.clone();
        crate::ops::elementwise::scale_rows_inplace(out.data_mut(), wv.data(), rows, d);
        self.push(out)
    }

    fn relu(&mut self, a: Var) -> Var {
        let value = self.value(a).map(|x| x.max(0.0));
        self.push(value)
    }

    fn gelu(&mut self, a: Var) -> Var {
        let value = self.value(a).map(gelu_fwd);
        self.push(value)
    }

    fn tanh(&mut self, a: Var) -> Var {
        let value = self.value(a).map(f32::tanh);
        self.push(value)
    }

    fn sigmoid(&mut self, a: Var) -> Var {
        let value = self.value(a).map(|x| 1.0 / (1.0 + (-x).exp()));
        self.push(value)
    }

    fn matmul(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).matmul(self.value(b));
        self.push(value)
    }

    fn bmm(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).bmm(self.value(b));
        self.push(value)
    }

    fn reshape(&mut self, a: Var, shape: Shape) -> Var {
        let value = self.value(a).reshape(shape);
        self.push(value)
    }

    fn slice_last(&mut self, a: Var, start: usize, len: usize) -> Var {
        let av = self.value(a);
        let d = av.shape().last_dim();
        assert!(
            start + len <= d,
            "slice_last [{start},{}) out of last dim {d}",
            start + len
        );
        let rows = av.shape().leading();
        let mut out = crate::pool::take_f32(rows * len);
        for r in 0..rows {
            out.extend_from_slice(&av.data()[r * d + start..r * d + start + len]);
        }
        let shape = av.shape().with_last(len);
        self.push(Tensor::new(shape, out))
    }

    fn concat_last(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_last of zero tensors");
        let rows = self.value(parts[0]).shape().leading();
        let mut widths = crate::pool::ScratchUsize::with_capacity(parts.len());
        for &p in parts {
            widths.push(self.value(p).shape().last_dim());
            assert_eq!(
                self.value(p).shape().leading(),
                rows,
                "concat_last leading-dim mismatch"
            );
        }
        let total: usize = widths.iter().sum();
        let mut out = crate::pool::take_f32(rows * total);
        for r in 0..rows {
            for (&p, &w) in parts.iter().zip(widths.iter()) {
                let v = self.value(p);
                out.extend_from_slice(&v.data()[r * w..(r + 1) * w]);
            }
        }
        let shape = self.value(parts[0]).shape().with_last(total);
        self.push(Tensor::new(shape, out))
    }

    fn select_rows(&mut self, a: Var, indices: &[usize]) -> Var {
        let av = self.value(a);
        let d = av.shape().last_dim();
        let rows = av.shape().leading();
        let mut out = crate::pool::take_f32(indices.len() * d);
        for &i in indices {
            assert!(i < rows, "select_rows index {i} out of {rows} rows");
            out.extend_from_slice(&av.data()[i * d..(i + 1) * d]);
        }
        self.push(Tensor::new([indices.len(), d], out))
    }

    fn stack_rows(&mut self, rows: &[Var]) -> Var {
        assert!(!rows.is_empty(), "stack_rows of zero vectors");
        let d = self.value(rows[0]).numel();
        let mut out = crate::pool::take_f32(rows.len() * d);
        for &r in rows {
            let v = self.value(r);
            assert_eq!(v.numel(), d, "stack_rows length mismatch");
            out.extend_from_slice(v.data());
        }
        self.push(Tensor::new([rows.len(), d], out))
    }

    fn row(&mut self, a: Var, i: usize) -> Var {
        let av = self.value(a);
        let d = av.shape().last_dim();
        let mut data = crate::pool::take_f32(d);
        data.extend_from_slice(av.row(i));
        let value = Tensor::new([d], data);
        self.push(value)
    }

    fn sum_all(&mut self, a: Var) -> Var {
        let value = Tensor::scalar(self.value(a).sum());
        self.push(value)
    }

    fn sum_dim1(&mut self, a: Var) -> Var {
        let (b, tt, d) = self.value(a).shape().as_batch_matrix();
        let av = self.value(a);
        let mut out = crate::pool::take_f32_zeroed(b * d);
        for bi in 0..b {
            for ti in 0..tt {
                let base = (bi * tt + ti) * d;
                for j in 0..d {
                    out[bi * d + j] += av.data()[base + j];
                }
            }
        }
        self.push(Tensor::new([b, d], out))
    }

    fn softmax_last(&mut self, a: Var) -> Var {
        let av = self.value(a);
        let d = av.shape().last_dim();
        let rows = av.shape().leading();
        let mut out = av.clone();
        for r in 0..rows {
            softmax_row(&mut out.data_mut()[r * d..(r + 1) * d]);
        }
        self.push(out)
    }

    fn layer_norm_last(&mut self, a: Var, eps: f32) -> Var {
        let av = self.value(a);
        let d = av.shape().last_dim();
        let rows = av.shape().leading();
        let mut out = av.clone();
        // The per-row 1/σ is backward-only state; recycle it immediately so
        // the serve path doesn't bleed one pooled buffer per layer-norm.
        crate::pool::recycle_f32(layer_norm_rows(out.data_mut(), rows, d, eps));
        self.push(out)
    }

    fn fused_attention(
        &mut self,
        q: Var,
        k: Var,
        v: Var,
        heads: usize,
        scale: f32,
        add_mask: Option<&Tensor>,
    ) -> Var {
        let (bsz, seq, d) = self.value(q).shape().as_batch_matrix();
        assert_eq!(
            self.value(k).shape(),
            self.value(q).shape(),
            "fused_attention q/k shape mismatch"
        );
        assert_eq!(
            self.value(v).shape(),
            self.value(q).shape(),
            "fused_attention q/v shape mismatch"
        );
        assert!(
            heads > 0 && d % heads == 0,
            "dim {d} not divisible by heads {heads}"
        );
        if let Some(m) = add_mask {
            assert_eq!(
                m.shape().as_batch_matrix(),
                (bsz, seq, seq),
                "fused_attention mask shape mismatch"
            );
        }
        // Pooled scratch: the probabilities are only an intermediate here
        // (no backward pass), so they recycle as soon as the merge is done.
        let probs = crate::pool::ScratchF32(attn_probs_forward(
            self.value(q).data(),
            self.value(k).data(),
            add_mask,
            bsz,
            seq,
            d,
            heads,
            scale,
        ));
        let merged = attn_merge_forward(&probs, self.value(v).data(), bsz, seq, d, heads);
        self.push(Tensor::new([bsz, seq, d], merged))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn::{Activation, KeyMask, Mlp, MultiHeadAttention, TransformerEncoder};
    use cf_rand::rngs::StdRng;
    use cf_rand::{Rng, SeedableRng};

    fn rand_tensor(shape: &[usize], rng: &mut StdRng) -> Tensor {
        let n: usize = shape.iter().product();
        Tensor::new(
            shape.to_vec(),
            (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect(),
        )
    }

    struct Inputs {
        a3: Tensor,
        b3: Tensor,
        bias: Tensor,
        w: Tensor,
        m1: Tensor,
        m2: Tensor,
        mask: Tensor,
    }

    /// Runs every trait op once and collects each output's raw data.
    fn drive(f: &mut dyn Forward, inp: &Inputs) -> Vec<Vec<f32>> {
        let a = f.leaf(inp.a3.clone());
        let b = f.constant(inp.b3.clone());
        let bi = f.leaf(inp.bias.clone());
        let wv = f.leaf(inp.w.clone());
        let x1 = f.leaf(inp.m1.clone());
        let x2 = f.leaf(inp.m2.clone());
        let mut vars = vec![
            f.add(a, b),
            f.mul(a, b),
            f.add_scalar(a, 0.37),
            f.mul_scalar(a, -1.21),
            f.add_bias(a, bi),
            f.mul_bcast_row(a, bi),
            f.scale_rows(a, wv),
            f.relu(a),
            f.gelu(a),
            f.tanh(a),
            f.sigmoid(a),
            f.matmul(x1, x2),
            f.slice_last(a, 1, 2),
            f.concat_last(&[a, b]),
            f.select_rows(x1, &[4, 0, 4, 2]),
            f.sum_all(a),
            f.sum_dim1(a),
            f.softmax_last(a),
            f.layer_norm_last(a, 1e-5),
            f.fused_attention(a, b, a, 2, 0.5, Some(&inp.mask)),
        ];
        let r = f.reshape(a, Shape::from([2, 4, 3]));
        vars.push(f.bmm(a, r));
        let r0 = f.row(x1, 0);
        let r3 = f.row(x1, 3);
        vars.push(f.stack_rows(&[r0, r3]));
        vars.iter().map(|&v| f.value(v).data().to_vec()).collect()
    }

    /// Every op available on both contexts, driven with the same inputs,
    /// must produce bit-identical values.
    #[test]
    fn op_by_op_bitwise_equivalence() {
        let mut rng = StdRng::seed_from_u64(17);
        let inputs = Inputs {
            a3: rand_tensor(&[2, 3, 4], &mut rng),
            b3: rand_tensor(&[2, 3, 4], &mut rng),
            bias: rand_tensor(&[4], &mut rng),
            w: rand_tensor(&[6], &mut rng),
            m1: rand_tensor(&[6, 4], &mut rng),
            m2: rand_tensor(&[4, 5], &mut rng),
            mask: rand_tensor(&[2, 3, 3], &mut rng),
        };
        let taped = drive(&mut Tape::new(), &inputs);
        let tape_free = drive(&mut InferCtx::new(), &inputs);
        assert_eq!(taped.len(), tape_free.len());
        for (i, (t, n)) in taped.iter().zip(&tape_free).enumerate() {
            assert_eq!(t, n, "op #{i} differs between Tape and InferCtx");
        }
    }

    /// A 2-layer Transformer encoder + MLP head — the ChainsFormer encoder
    /// composition — evaluated on both contexts, compared bitwise.
    #[test]
    fn transformer_stack_bitwise_equivalence() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut ps = ParamStore::new();
        let enc = TransformerEncoder::new(&mut ps, "enc", 16, 4, 2, 32, &mut rng);
        let head = Mlp::new(&mut ps, "head", &[16, 16, 1], Activation::Gelu, &mut rng);
        let x = rand_tensor(&[3, 5, 16], &mut rng);
        let key_mask = vec![
            vec![true, true, true, true, true],
            vec![true, true, false, false, false],
            vec![true, true, true, false, false],
        ];

        let mut tape = Tape::new();
        let xv = Forward::leaf(&mut tape, x.clone());
        let h = enc.forward(&mut tape, &ps, xv, Some(KeyMask::Rows(&key_mask)));
        let flat = Forward::reshape(&mut tape, h, Shape::from([15, 16]));
        let y = head.forward(&mut tape, &ps, flat);
        let taped = Forward::value(&tape, y).data().to_vec();

        let mut ctx = InferCtx::new();
        let xv = ctx.leaf(x);
        let h = enc.forward(&mut ctx, &ps, xv, Some(KeyMask::Rows(&key_mask)));
        let flat = ctx.reshape(h, Shape::from([15, 16]));
        let y = head.forward(&mut ctx, &ps, flat);
        assert_eq!(ctx.value(y).data(), taped.as_slice());
    }

    /// Padding keys out via the additive mask must not change the unpadded
    /// rows at all — the property the batched serving path relies on.
    #[test]
    fn attention_padding_is_bitwise_inert() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut ps = ParamStore::new();
        let mha = MultiHeadAttention::new(&mut ps, "a", 8, 2, &mut rng);
        let x = rand_tensor(&[1, 3, 8], &mut rng);
        // Same rows padded out to T=5 with junk tokens.
        let mut padded = x.data().to_vec();
        padded.extend((0..16).map(|i| (i as f32) * 0.3 - 1.0));
        let padded = Tensor::new([1, 5, 8], padded);

        let mut c1 = InferCtx::new();
        let xv = c1.leaf(x);
        let mask3 = vec![vec![true; 3]];
        let y3 = mha.forward(&mut c1, &ps, xv, Some(KeyMask::Rows(&mask3)));

        let mut c2 = InferCtx::new();
        let xv = c2.leaf(padded);
        let mask5 = vec![vec![true, true, true, false, false]];
        let y5 = mha.forward(&mut c2, &ps, xv, Some(KeyMask::Rows(&mask5)));

        let short = c1.value(y3).data();
        let long = &c2.value(y5).data()[..3 * 8];
        assert_eq!(short, long, "padded keys leaked into real rows");
    }
}
