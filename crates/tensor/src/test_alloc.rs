//! A `#[cfg(test)]` counting global allocator for this crate's unit tests.
//!
//! The bench crate carries the release-mode twin (`chainsformer-bench`'s
//! `alloc` module) used by the CI zero-allocation gate; this variant is
//! compiled only into `cf-tensor`'s unit-test binary so the pool's
//! steady-state contract is enforced close to the code it constrains.
//!
//! Counters are **thread-local** (a `Cell` bump, no locking, no allocation),
//! so a measurement is exact for the test's own thread even while the
//! harness runs other tests concurrently.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
    static FREES: Cell<u64> = const { Cell::new(0) };
}

/// [`System`] plus thread-local alloc/free counters.
pub(crate) struct CountingTestAlloc;

// SAFETY: defers every allocation verbatim to `System`; counter updates are
// allocation-free `Cell` bumps (`try_with` so allocator use during TLS
// setup/teardown degrades to not counting instead of recursing).
unsafe impl GlobalAlloc for CountingTestAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        let _ = FREES.try_with(|c| c.set(c.get() + 1));
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // Book a grow as free-of-old + alloc-of-new: it is allocator traffic
        // the pool should have absorbed.
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        let _ = FREES.try_with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static TEST_ALLOC: CountingTestAlloc = CountingTestAlloc;

/// Runs `f` and returns `(allocs, frees)` it caused **on this thread**.
pub(crate) fn measure_thread<T>(f: impl FnOnce() -> T) -> (T, u64, u64) {
    let (a0, f0) = (ALLOCS.with(Cell::get), FREES.with(Cell::get));
    let out = f();
    let (a1, f1) = (ALLOCS.with(Cell::get), FREES.with(Cell::get));
    (out, a1 - a0, f1 - f0)
}

#[cfg(test)]
mod tests {
    use super::measure_thread;
    use crate::nn::{Linear, TransformerEncoder};
    use crate::optim::Adam;
    use crate::{ParamStore, Tape, Tensor};
    use cf_rand::rngs::StdRng;
    use cf_rand::{Rng, SeedableRng};

    /// The pool's headline contract, enforced in-crate: after warm-up, a
    /// full taped train step (forward, loss, backward, Adam) performs zero
    /// heap allocations on this thread.
    #[test]
    fn steady_state_train_step_allocates_nothing() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut ps = ParamStore::new();
        let enc = TransformerEncoder::new(&mut ps, "enc", 16, 2, 1, 32, &mut rng);
        let head = Linear::new(&mut ps, "head", 16, 1, &mut rng);
        let x = Tensor::new(
            [4, 3, 16],
            (0..4 * 3 * 16)
                .map(|_| rng.gen_range(-1.0..1.0))
                .collect::<Vec<f32>>(),
        );
        let target = Tensor::new(
            [12, 1],
            (0..12)
                .map(|_| rng.gen_range(-1.0..1.0))
                .collect::<Vec<f32>>(),
        );
        let mut opt = Adam::new(1e-3);
        let step = |ps: &mut ParamStore, opt: &mut Adam| {
            let mut t = Tape::new();
            let xv = t.leaf(x.clone());
            let h = enc.forward(&mut t, ps, xv, None);
            let flat = t.reshape(h, [12, 16]);
            let pred = head.forward(&mut t, ps, flat);
            let loss = t.mse_loss(pred, &target);
            let grads = t.backward(loss, ps.len());
            opt.step(ps, &grads);
            std::hint::black_box(t.value(loss).item())
        };
        for _ in 0..3 {
            step(&mut ps, &mut opt); // warm-up: pool classes + Adam state
        }
        let (_, allocs, frees) = measure_thread(|| {
            for _ in 0..5 {
                step(&mut ps, &mut opt);
            }
        });
        assert_eq!(allocs, 0, "taped train step allocated at steady state");
        assert_eq!(frees, 0, "taped train step freed at steady state");
    }
}
