//! Runtime-dispatched wide-vector compilation of the hot numeric kernels.
//!
//! The workspace builds for baseline `x86-64` (SSE2, 4 f32 lanes) so the
//! binaries stay portable. The hot loops, however, are memory-bandwidth and
//! port-width bound: on an AVX2 (8-lane) or AVX-512 (16-lane) machine the
//! baseline codegen leaves most of the vector unit idle. [`simd_hot!`]
//! closes that gap without a second build: it compiles the *same* function
//! body once per feature tier behind `#[target_feature]`, and a cached
//! one-time CPUID probe picks the widest tier the host supports.
//!
//! # Why this cannot change results
//!
//! The repo's determinism contract is bitwise: every reduction consumes its
//! terms in a fixed order, one exactly-rounded IEEE op at a time. Widening
//! the vector unit cannot break that, for two structural reasons:
//!
//! 1. rustc emits no fast-math flags, so LLVM is not *allowed* to
//!    reassociate floating-point reductions or contract `a*b + c` into an
//!    FMA — the only transforms that could alter rounding. Loops that
//!    auto-vectorize are exactly the element-independent ones, where each
//!    lane is the same serial chain of exactly-rounded ops it was in scalar
//!    code (IEEE-754 `mulps`/`addps`/`divps`/`sqrtps` are exact per lane).
//! 2. Serial dependence (dot products, running sums, `softmax` row sums)
//!    therefore stays scalar in every tier — slower, but bit-stable.
//!
//! Consequently baseline, AVX2 and AVX-512 tiers return identical bits and
//! the dispatch never needs to be pinned for reproducibility. The
//! `fused_attention` / pooled-vs-fresh equivalence suites run the same
//! kernels on whatever host executes them, so any codegen deviation would
//! trip the bitwise asserts immediately.

/// Baseline tier: whatever the crate was compiled for (SSE2 on x86-64).
pub(crate) const BASELINE: u8 = 0;
/// AVX2 tier: 8-lane f32 vectors.
pub(crate) const AVX2: u8 = 1;
/// AVX-512 tier: 16-lane f32 vectors (F/VL/DQ/BW, the f32-relevant subset).
pub(crate) const AVX512: u8 = 2;

/// The widest tier this CPU supports; probed once, then cached.
#[cfg(target_arch = "x86_64")]
pub(crate) fn level() -> u8 {
    use std::sync::atomic::{AtomicU8, Ordering};
    const UNPROBED: u8 = u8::MAX;
    static LEVEL: AtomicU8 = AtomicU8::new(UNPROBED);
    let cached = LEVEL.load(Ordering::Relaxed);
    if cached != UNPROBED {
        return cached;
    }
    let detected = if std::arch::is_x86_feature_detected!("avx512f")
        && std::arch::is_x86_feature_detected!("avx512vl")
        && std::arch::is_x86_feature_detected!("avx512dq")
        && std::arch::is_x86_feature_detected!("avx512bw")
    {
        AVX512
    } else if std::arch::is_x86_feature_detected!("avx2") {
        AVX2
    } else {
        BASELINE
    };
    LEVEL.store(detected, Ordering::Relaxed);
    detected
}

/// Non-x86 hosts always run the baseline tier.
#[cfg(not(target_arch = "x86_64"))]
pub(crate) fn level() -> u8 {
    BASELINE
}

/// Compiles each function body three times — baseline, AVX2, AVX-512 — and
/// dispatches on [`level()`]. The body is emitted as an `#[inline(always)]`
/// inner function, so helpers it calls must themselves be `#[inline]`-able
/// for the wide tiers to reach them; anything that stays out-of-line simply
/// runs baseline code, which is bit-identical (see module docs).
macro_rules! simd_hot {
    ($( $(#[$meta:meta])* $vis:vis fn $name:ident( $($arg:ident : $ty:ty),* $(,)? ) $(-> $ret:ty)? $body:block )*) => {$(
        $(#[$meta])*
        $vis fn $name($($arg: $ty),*) $(-> $ret)? {
            #[inline(always)]
            fn baseline($($arg: $ty),*) $(-> $ret)? $body
            #[cfg(target_arch = "x86_64")]
            {
                #[target_feature(enable = "avx2")]
                unsafe fn avx2($($arg: $ty),*) $(-> $ret)? {
                    baseline($($arg),*)
                }
                #[target_feature(enable = "avx512f,avx512vl,avx512dq,avx512bw")]
                unsafe fn avx512($($arg: $ty),*) $(-> $ret)? {
                    baseline($($arg),*)
                }
                // SAFETY: `level()` only reports a tier after probing that
                // this CPU supports every feature the tier enables.
                match $crate::simd::level() {
                    $crate::simd::AVX512 => return unsafe { avx512($($arg),*) },
                    $crate::simd::AVX2 => return unsafe { avx2($($arg),*) },
                    _ => {}
                }
            }
            baseline($($arg),*)
        }
    )*};
}
pub(crate) use simd_hot;

/// Element count above which the element-wise helpers fan contiguous chunks
/// out across the thread pool. Every lane is an independent one-op chain, so
/// the split is bitwise invariant; below this the pool round-trip costs more
/// than the memory-bound loop it would hide.
const PAR_MIN_ELEMS: usize = 32 * 1024;

simd_hot! {
    /// `dst[i] += src[i]` over one contiguous chunk.
    fn add_assign_chunk(dst: &mut [f32], src: &[f32]) {
        for (o, s) in dst.iter_mut().zip(src) {
            *o += *s;
        }
    }

    /// `dst[i] *= alpha` over one contiguous chunk.
    fn scale_chunk(dst: &mut [f32], alpha: f32) {
        for x in dst.iter_mut() {
            *x *= alpha;
        }
    }

    /// `dst[i] += alpha * src[i]` over one contiguous chunk.
    fn axpy_chunk(dst: &mut [f32], alpha: f32, src: &[f32]) {
        for (o, s) in dst.iter_mut().zip(src) {
            *o += alpha * *s;
        }
    }
}

/// `dst[i] += src[i]` — the gradient-accumulation workhorse. Large slices
/// split into per-thread chunks (independent lanes, so bitwise invariant).
pub(crate) fn add_assign_slice(dst: &mut [f32], src: &[f32]) {
    assert_eq!(dst.len(), src.len(), "add_assign length mismatch");
    if dst.len() >= PAR_MIN_ELEMS {
        let d = crate::pool::SharedMut::new(dst);
        crate::pool::parallel_for(src.len(), |r| {
            // SAFETY: partition ranges are disjoint.
            let dr = unsafe { d.get(r.start, r.len()) };
            add_assign_chunk(dr, &src[r]);
        });
    } else {
        add_assign_chunk(dst, src);
    }
}

/// `dst[i] *= alpha` — gradient clipping / scaling.
pub(crate) fn scale_slice(dst: &mut [f32], alpha: f32) {
    let n = dst.len();
    if n >= PAR_MIN_ELEMS {
        let d = crate::pool::SharedMut::new(dst);
        crate::pool::parallel_for(n, |r| {
            // SAFETY: partition ranges are disjoint.
            let dr = unsafe { d.get(r.start, r.len()) };
            scale_chunk(dr, alpha);
        });
    } else {
        scale_chunk(dst, alpha);
    }
}

/// `dst[i] += alpha * src[i]`.
pub(crate) fn axpy_slice(dst: &mut [f32], alpha: f32, src: &[f32]) {
    assert_eq!(dst.len(), src.len(), "axpy length mismatch");
    if dst.len() >= PAR_MIN_ELEMS {
        let d = crate::pool::SharedMut::new(dst);
        crate::pool::parallel_for(src.len(), |r| {
            // SAFETY: partition ranges are disjoint.
            let dr = unsafe { d.get(r.start, r.len()) };
            axpy_chunk(dr, alpha, &src[r]);
        });
    } else {
        axpy_chunk(dst, alpha, src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probed_level_is_a_known_tier() {
        let l = level();
        assert!(l == BASELINE || l == AVX2 || l == AVX512);
        assert_eq!(l, level(), "probe must be stable");
    }

    #[test]
    fn slice_helpers_match_scalar_reference() {
        let n = 1037; // odd length: exercises the vector tail
        let a: Vec<f32> = (0..n).map(|i| (i as f32) * 0.37 - 11.0).collect();
        let b: Vec<f32> = (0..n).map(|i| (i as f32) * -0.11 + 3.0).collect();

        let mut got = a.clone();
        add_assign_slice(&mut got, &b);
        for i in 0..n {
            assert_eq!(got[i].to_bits(), (a[i] + b[i]).to_bits());
        }

        let mut got = a.clone();
        scale_slice(&mut got, 0.731);
        for i in 0..n {
            assert_eq!(got[i].to_bits(), (a[i] * 0.731f32).to_bits());
        }

        let mut got = a.clone();
        axpy_slice(&mut got, -1.93, &b);
        for i in 0..n {
            assert_eq!(got[i].to_bits(), (a[i] + (-1.93f32) * b[i]).to_bits());
        }
    }
}
