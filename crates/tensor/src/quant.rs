//! Int8 inference path: per-tensor symmetric quantization, an int8×int8→i32
//! GEMM sharing the pack/register-tile machinery of [`crate::tensor`], and a
//! [`QuantInferCtx`] that runs linear layers quantized while everything else
//! (softmax, layer norm, attention, the numeric heads) stays in f32.
//!
//! ## Scale scheme
//!
//! Quantization is symmetric: `scale = max|x| / 127`, `q = round(x / scale)`
//! clamped to `[-127, 127]`. Weights are quantized once at checkpoint-load
//! time with one *per-tensor* scale ([`QuantizedParamStore::from_store`],
//! which also pre-packs the NR-column panels); activations are quantized
//! dynamically per GEMM with one scale *per row*. Per-row matters for more
//! than accuracy: serving concatenates the chains of every query in a
//! micro-batch into one activation matrix, so a per-tensor activation scale
//! would couple a query's bits to its batch-mates — and batch composition
//! varies with shard count and traffic. With per-row scales each output row
//! is a pure function of its own input row, exactly like the (row-linear)
//! f32 GEMM. Row `i` dequantizes with the combined factor
//! `scale_a[i] · scale_b` applied to the exact i32 accumulator, so the only
//! rounding beyond f32 GEMM is the two quantization roundings — bias add and
//! every nonlinearity run on f32 values as usual.
//!
//! ## Determinism
//!
//! The i32 accumulation is exact integer math, so — unlike the f32 kernels,
//! which must pin one serial reduction order — *any* summation order yields
//! identical bits. Scale computation (`max|x|` per row) and the
//! quantize/dequantize maps are order-independent too, making the whole path
//! trivially bitwise invariant across thread counts, SIMD tiers, shard
//! assignments and (via the per-row scales) batch composition.
//!
//! ## Kernel layout
//!
//! Values are stored as `i16` (holding the i8 range) so the AVX2 tier can use
//! `_mm256_madd_epi16`: one instruction multiplies 16 i16 pairs and adds
//! adjacent products into 8 i32 lanes. Panels therefore interleave *pairs* of
//! reduction indices: with `kp = ceil(k/2)`,
//!
//! - A panel: `ap[ip·MR·2·kp + pp·MR·2 + r·2 + s] = A[i0+r, 2·pp+s]`
//! - B panel: `bp[jp·NR·2·kp + pp·NR·2 + c·2 + s] = B[2·pp+s, j0+c]`
//!
//! zero-padded past every edge (a zero quantized term contributes zero, so
//! padding is exact). The micro-kernel broadcasts each A pair across a
//! B-panel vector of 8 column pairs, accumulating an MR×NR i32 tile in
//! registers. Row panels fan out across the thread pool exactly like the f32
//! path. |q| ≤ 127 bounds each pair product by 2·127², so `k` up to
//! [`MAX_K`] cannot overflow the i32 accumulator.

use crate::infer::{Forward, ForwardArena, InferCtx};
use crate::params::{ParamId, ParamStore};
use crate::pool;
use crate::shape::Shape;
use crate::tape::Var;
use crate::tensor::Tensor;
use std::sync::Arc;

/// Register tile height (matches the f32 GEMM).
const MR: usize = 4;
/// Register tile width (matches the f32 GEMM).
const NR: usize = 8;

/// Largest supported reduction depth: `127² · 2·ceil(k/2) ≤ i32::MAX` holds
/// for every `k ≤ 131072`, with headroom (the true bound is 133152).
pub const MAX_K: usize = 131_072;

/// Per-tensor symmetric scale: `max|x| / 127`, or `1.0` for an all-zero (or
/// non-finite-max) tensor so the reciprocal stays usable.
pub fn quantize_scale(data: &[f32]) -> f32 {
    let mut max_abs = 0.0f32;
    for &x in data {
        max_abs = max_abs.max(x.abs());
    }
    if max_abs == 0.0 || !max_abs.is_finite() {
        1.0
    } else {
        max_abs / 127.0
    }
}

/// `round(x / scale)` clamped to the symmetric i8 range, via a precomputed
/// reciprocal (`recip = 1/scale`) so weight-load and per-batch activation
/// quantization apply the exact same float op sequence.
///
/// Rounding is nearest-ties-even via the magic-number trick: adding 1.5·2²³
/// lands `v = x·recip` in the binade where the float ulp is exactly 1, so
/// the hardware's round-to-nearest-even of the *addition* performs the
/// integer rounding, and the low mantissa bits are `2²² + round(v)`. Exact
/// for `|v| ≤ 2²²` — far above the ±127 these values are scaled into. Unlike
/// `f32::round`/`round_ties_even` (libm calls on baseline x86-64), this is
/// pure mul/add/bit ops: it autovectorizes on every tier and produces the
/// same bits on every tier, and activation quantization runs once per linear
/// layer per batch — it must not eat the int8 GEMM's win.
#[inline]
fn quantize_value(x: f32, recip: f32) -> i16 {
    const MAGIC: f32 = 12_582_912.0; // 1.5 * 2^23
    let y = x * recip + MAGIC;
    let i = (y.to_bits() & 0x7F_FFFF) as i32 - 0x40_0000;
    i.clamp(-127, 127) as i16
}

/// Appends the quantization of `data` (with `recip = 1/scale`) to `out`.
/// Written as resize + in-place stores (not `extend`) so the loop carries no
/// capacity checks and vectorizes.
pub fn quantize_slice_into(data: &[f32], recip: f32, out: &mut Vec<i16>) {
    let start = out.len();
    out.resize(start + data.len(), 0);
    for (o, &x) in out[start..].iter_mut().zip(data) {
        *o = quantize_value(x, recip);
    }
}

/// Packs quantized `A[m,k]` (row-major) into MR-row pair-interleaved panels.
fn pack_a_q8(aq: &[i16], ap: &mut [i16], m: usize, k: usize) {
    let kp = k.div_ceil(2);
    let mp = m.div_ceil(MR);
    for ip in 0..mp {
        let i0 = ip * MR;
        let rows = MR.min(m - i0);
        let panel = &mut ap[ip * MR * 2 * kp..(ip + 1) * MR * 2 * kp];
        for r in 0..rows {
            let row = &aq[(i0 + r) * k..(i0 + r + 1) * k];
            for (p, &v) in row.iter().enumerate() {
                panel[(p / 2) * MR * 2 + r * 2 + (p % 2)] = v;
            }
        }
    }
}

/// Packs quantized `B[k,n]` (row-major) into NR-column pair-interleaved
/// panels.
fn pack_b_q8(bq: &[i16], bp: &mut [i16], k: usize, n: usize) {
    let kp = k.div_ceil(2);
    let np = n.div_ceil(NR);
    for jp in 0..np {
        let j0 = jp * NR;
        let cols = NR.min(n - j0);
        let panel = &mut bp[jp * NR * 2 * kp..(jp + 1) * NR * 2 * kp];
        for p in 0..k {
            let row = &bq[p * n + j0..p * n + j0 + cols];
            for (c, &v) in row.iter().enumerate() {
                panel[(p / 2) * NR * 2 + c * 2 + (p % 2)] = v;
            }
        }
    }
}

/// Scalar tile sweep over row panels `ip0..ip1` (band-relative output rows,
/// like the f32 `gemm_tiles`). Writes each output element exactly once
/// (overwrite, not `+=` — the accumulator starts at zero inside the tile).
fn q8_tiles_scalar(
    ap: &[i16],
    bp: &[i16],
    out_rows: &mut [i32],
    m: usize,
    kp: usize,
    n: usize,
    ip0: usize,
    ip1: usize,
) {
    let np = n.div_ceil(NR);
    let row0 = ip0 * MR;
    for jp in 0..np {
        let j0 = jp * NR;
        let cols = NR.min(n - j0);
        let b_panel = &bp[jp * NR * 2 * kp..(jp + 1) * NR * 2 * kp];
        for ip in ip0..ip1 {
            let i0 = ip * MR;
            let rows = MR.min(m - i0);
            let a_panel = &ap[ip * MR * 2 * kp..(ip + 1) * MR * 2 * kp];
            let mut acc = [[0i32; NR]; MR];
            for pp in 0..kp {
                let ab = pp * MR * 2;
                let bb = pp * NR * 2;
                for (r, acc_row) in acc.iter_mut().enumerate() {
                    let a0 = a_panel[ab + r * 2] as i32;
                    let a1 = a_panel[ab + r * 2 + 1] as i32;
                    for (c, slot) in acc_row.iter_mut().enumerate() {
                        *slot +=
                            a0 * b_panel[bb + c * 2] as i32 + a1 * b_panel[bb + c * 2 + 1] as i32;
                    }
                }
            }
            for (r, acc_row) in acc.iter().enumerate().take(rows) {
                let o = (i0 - row0 + r) * n + j0;
                for (c, &v) in acc_row.iter().enumerate().take(cols) {
                    out_rows[o + c] = v;
                }
            }
        }
    }
}

/// AVX2 tile sweep: `_mm256_madd_epi16` widens and pair-sums 16 i16 products
/// into 8 i32 lanes — one full NR-wide accumulator update per instruction.
/// Bit-identical to the scalar sweep because integer addition is exact.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn q8_tiles_avx2(
    ap: &[i16],
    bp: &[i16],
    out_rows: &mut [i32],
    m: usize,
    kp: usize,
    n: usize,
    ip0: usize,
    ip1: usize,
) {
    use std::arch::x86_64::*;
    let np = n.div_ceil(NR);
    let row0 = ip0 * MR;
    for jp in 0..np {
        let j0 = jp * NR;
        let cols = NR.min(n - j0);
        let b_panel = &bp[jp * NR * 2 * kp..(jp + 1) * NR * 2 * kp];
        for ip in ip0..ip1 {
            let i0 = ip * MR;
            let rows = MR.min(m - i0);
            let a_panel = &ap[ip * MR * 2 * kp..(ip + 1) * MR * 2 * kp];
            let mut acc = [_mm256_setzero_si256(); MR];
            for pp in 0..kp {
                let bv = _mm256_loadu_si256(b_panel.as_ptr().add(pp * NR * 2) as *const __m256i);
                let ab = pp * MR * 2;
                for (r, slot) in acc.iter_mut().enumerate() {
                    // Lane layout: each i32 lane holds the (s=0, s=1) pair of
                    // one A row, multiplied against the matching B column pair.
                    let lo = a_panel[ab + r * 2] as u16 as u32;
                    let hi = a_panel[ab + r * 2 + 1] as u16 as u32;
                    let av = _mm256_set1_epi32(((hi << 16) | lo) as i32);
                    *slot = _mm256_add_epi32(*slot, _mm256_madd_epi16(av, bv));
                }
            }
            if rows == MR && cols == NR {
                for (r, &slot) in acc.iter().enumerate() {
                    let o = (i0 - row0 + r) * n + j0;
                    _mm256_storeu_si256(out_rows.as_mut_ptr().add(o) as *mut __m256i, slot);
                }
            } else {
                let mut tmp = [0i32; NR];
                for (r, &slot) in acc.iter().enumerate().take(rows) {
                    _mm256_storeu_si256(tmp.as_mut_ptr() as *mut __m256i, slot);
                    let o = (i0 - row0 + r) * n + j0;
                    out_rows[o..o + cols].copy_from_slice(&tmp[..cols]);
                }
            }
        }
    }
}

/// Runtime-dispatched tile sweep. `simd_hot!` cannot host explicit
/// intrinsics (it recompiles one portable body per tier), so this kernel
/// dispatches by hand on the same cached [`crate::simd::level`] probe.
fn q8_tiles(
    ap: &[i16],
    bp: &[i16],
    out_rows: &mut [i32],
    m: usize,
    kp: usize,
    n: usize,
    ip0: usize,
    ip1: usize,
) {
    #[cfg(target_arch = "x86_64")]
    if crate::simd::level() >= crate::simd::AVX2 {
        // SAFETY: `level()` only reports AVX2 after probing CPU support.
        unsafe { q8_tiles_avx2(ap, bp, out_rows, m, kp, n, ip0, ip1) };
        return;
    }
    q8_tiles_scalar(ap, bp, out_rows, m, kp, n, ip0, ip1);
}

/// Tile sweep over pre-packed panels, fanning row panels across the thread
/// pool above the same flop floor as the f32 GEMM. Integer accumulation is
/// exact, so the split is bitwise invariant by construction.
fn gemm_q8_packed(ap: &[i16], bp: &[i16], out: &mut [i32], m: usize, kp: usize, n: usize) {
    let mp = m.div_ceil(MR);
    if m * kp * 2 * n >= crate::tensor::PAR_MIN_FLOPS {
        let shared = pool::SharedMut::new(out);
        pool::parallel_for(mp, |r| {
            if r.is_empty() {
                return;
            }
            let row0 = r.start * MR;
            let row1 = (r.end * MR).min(m);
            // SAFETY: panel ranges from the static partition map to disjoint
            // row bands of `out`, and the borrow outlives the scoped run.
            let band = unsafe { shared.get(row0 * n, (row1 - row0) * n) };
            q8_tiles(ap, bp, band, m, kp, n, r.start, r.end);
        });
    } else {
        q8_tiles(ap, bp, out, m, kp, n, 0, mp);
    }
}

/// `out[i,j] = Σ_p aq[i,p] · bq[p,j]` over quantized values in exact i32.
///
/// `aq` is row-major `[m,k]`, `bq` row-major `[k,n]`, both holding values in
/// the i8 range (the i16 storage exists for the widening kernel). Overwrites
/// `out`. This is the raw kernel the exactness tests target; the inference
/// path goes through [`QuantizedTensor::matmul_quantized`], which adds the
/// quantize/dequantize envelope.
pub fn matmul_q8_into(aq: &[i16], bq: &[i16], out: &mut [i32], m: usize, k: usize, n: usize) {
    assert!(k <= MAX_K, "quantized GEMM k={k} exceeds MAX_K={MAX_K}");
    assert_eq!(aq.len(), m * k, "A size mismatch");
    assert_eq!(bq.len(), k * n, "B size mismatch");
    assert_eq!(out.len(), m * n, "out size mismatch");
    if m == 0 || n == 0 {
        return;
    }
    let kp = k.div_ceil(2);
    let mp = m.div_ceil(MR);
    let np = n.div_ceil(NR);
    let mut ap = pool::ScratchI16::zeroed(mp * MR * 2 * kp);
    let mut bp = pool::ScratchI16::zeroed(np * NR * 2 * kp);
    pack_a_q8(aq, &mut ap, m, k);
    pack_b_q8(bq, &mut bp, k, n);
    gemm_q8_packed(&ap, &bp, out, m, kp, n);
}

/// One weight matrix quantized and pre-packed for the int8 GEMM.
pub struct QuantizedTensor {
    /// NR-column pair-interleaved panels of the quantized `[k, n]` weight.
    packed: Vec<i16>,
    k: usize,
    n: usize,
    /// Dequantization scale of the weight (`max|w| / 127`).
    scale: f32,
}

impl QuantizedTensor {
    /// Quantizes and packs a rank-2 `[k, n]` weight. Returns `None` for
    /// tensors the quantized path skips: non-matrices, matrices narrower
    /// than one register tile (`n < NR` — e.g. the `[d, 1]` numeric-head
    /// weights, which stay f32 by design), and reductions past [`MAX_K`].
    pub fn from_tensor(t: &Tensor) -> Option<QuantizedTensor> {
        if t.shape().rank() != 2 {
            return None;
        }
        let (k, n) = t.shape().as_matrix();
        if n < NR || k == 0 || k > MAX_K {
            return None;
        }
        let scale = quantize_scale(t.data());
        let recip = 1.0 / scale;
        let mut bq = pool::ScratchI16::with_capacity(k * n);
        quantize_slice_into(t.data(), recip, &mut bq);
        let kp = k.div_ceil(2);
        let np = n.div_ceil(NR);
        // Owned (not pooled): lives as long as the model, not one request.
        let mut packed = vec![0i16; np * NR * 2 * kp];
        pack_b_q8(&bq, &mut packed, k, n);
        Some(QuantizedTensor {
            packed,
            k,
            n,
            scale,
        })
    }

    /// Input dimension (`k`) of the packed weight.
    pub fn in_dim(&self) -> usize {
        self.k
    }

    /// Output dimension (`n`) of the packed weight.
    pub fn out_dim(&self) -> usize {
        self.n
    }

    /// The weight's dequantization scale.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// `a[m,k] · W[k,n]` through the quantized kernel: dynamically quantizes
    /// the activation with one scale per row, runs the exact i32 GEMM
    /// against the pre-packed weight, and dequantizes the accumulator to
    /// f32. Per-row scales keep every output row a pure function of its own
    /// input row (see the module docs — batched serving depends on it). All
    /// scratch is pooled — zero heap traffic in the steady state.
    pub fn matmul_quantized(&self, a: &Tensor) -> Tensor {
        let (m, k) = a.shape().as_matrix();
        assert_eq!(k, self.k, "quantized matmul: inner dims {k} vs {}", self.k);
        let mut scales = pool::ScratchF32::with_capacity(m);
        let mut aq = pool::ScratchI16::with_capacity(m * k);
        for row in a.data().chunks_exact(k) {
            let s = quantize_scale(row);
            scales.push(s);
            quantize_slice_into(row, 1.0 / s, &mut aq);
        }
        let kp = k.div_ceil(2);
        let mp = m.div_ceil(MR);
        let mut ap = pool::ScratchI16::zeroed(mp * MR * 2 * kp);
        pack_a_q8(&aq, &mut ap, m, k);
        let mut acc = pool::ScratchI32::zeroed(m * self.n);
        gemm_q8_packed(&ap, &self.packed, &mut acc, m, kp, self.n);
        let mut out = pool::take_f32(m * self.n);
        out.resize(m * self.n, 0.0);
        for ((orow, arow), &s) in out
            .chunks_exact_mut(self.n)
            .zip(acc.chunks_exact(self.n))
            .zip(scales.iter())
        {
            let combined = s * self.scale;
            for (o, &v) in orow.iter_mut().zip(arow) {
                *o = v as f32 * combined;
            }
        }
        Tensor::new([m, self.n], out)
    }
}

/// A [`ParamStore`] companion holding the quantized, pre-packed form of
/// every eligible weight matrix, indexed by [`ParamId`]. Built once per
/// checkpoint load / hot reload; immutable afterwards (shards share it via
/// `Arc`).
pub struct QuantizedParamStore {
    entries: Vec<Option<QuantizedTensor>>,
}

impl QuantizedParamStore {
    /// Quantizes every eligible parameter of `store` (see
    /// [`QuantizedTensor::from_tensor`] for the eligibility rule).
    pub fn from_store(store: &ParamStore) -> QuantizedParamStore {
        let entries = store
            .iter()
            .map(|(_, _, t)| QuantizedTensor::from_tensor(t))
            .collect();
        QuantizedParamStore { entries }
    }

    /// The quantized form of parameter `index` (`ParamId::index()`), if that
    /// parameter was eligible.
    pub fn entry(&self, index: usize) -> Option<&QuantizedTensor> {
        self.entries.get(index).and_then(Option::as_ref)
    }

    /// Number of parameters that were quantized.
    pub fn num_quantized(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }

    /// Number of parameter slots tracked (equals the source store's `len`).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no parameters are tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// An [`InferCtx`] variant that routes weight matmuls through the int8
/// kernel.
///
/// Wraps a plain `InferCtx` (every non-matmul op delegates to it verbatim,
/// so activations, softmax, layer norm, attention and the numeric heads are
/// the f32 implementations) plus a per-`Var` tag recording which arena slots
/// hold parameters with a quantized twin. `matmul(a, b)` consults the tag of
/// `b`: tagged weights run [`QuantizedTensor::matmul_quantized`], everything
/// else falls through to the f32 kernel.
#[derive(Default)]
pub struct QuantInferCtx {
    inner: InferCtx,
    weights: Option<Arc<QuantizedParamStore>>,
    /// Per arena slot: `ParamId::index() + 1` when the slot holds a param
    /// with a quantized twin, `0` otherwise. Kept in lockstep with the
    /// arena — every `Forward` op pushes exactly one value.
    wmap: Vec<u32>,
}

impl QuantInferCtx {
    /// An empty context with no quantized weights attached (all matmuls run
    /// f32 until [`Self::set_weights`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches the quantized weight store subsequent `param` calls resolve
    /// against. Call between requests, not mid-forward.
    pub fn set_weights(&mut self, weights: Arc<QuantizedParamStore>) {
        self.weights = Some(weights);
    }

    /// Drops all recorded values so the context can be reused (the attached
    /// weight store is kept).
    pub fn clear(&mut self) {
        self.inner.clear();
        self.wmap.clear();
    }

    /// Number of recorded values.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when nothing has been evaluated yet.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    #[inline]
    fn track(&mut self, v: Var, tag: u32) -> Var {
        debug_assert_eq!(v.0, self.wmap.len(), "arena/tag map out of lockstep");
        self.wmap.push(tag);
        v
    }
}

impl Forward for QuantInferCtx {
    fn value(&self, v: Var) -> &Tensor {
        self.inner.value(v)
    }

    fn leaf(&mut self, value: Tensor) -> Var {
        let v = self.inner.leaf(value);
        self.track(v, 0)
    }

    fn constant(&mut self, value: Tensor) -> Var {
        let v = self.inner.constant(value);
        self.track(v, 0)
    }

    fn param(&mut self, store: &ParamStore, id: ParamId) -> Var {
        let v = self.inner.param(store, id);
        let tag = match &self.weights {
            Some(q) if q.entry(id.index()).is_some() => (id.index() + 1) as u32,
            _ => 0,
        };
        self.track(v, tag)
    }

    fn add(&mut self, a: Var, b: Var) -> Var {
        let v = self.inner.add(a, b);
        self.track(v, 0)
    }

    fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = self.inner.mul(a, b);
        self.track(v, 0)
    }

    fn add_scalar(&mut self, a: Var, c: f32) -> Var {
        let v = self.inner.add_scalar(a, c);
        self.track(v, 0)
    }

    fn mul_scalar(&mut self, a: Var, c: f32) -> Var {
        let v = self.inner.mul_scalar(a, c);
        self.track(v, 0)
    }

    fn add_bias(&mut self, a: Var, b: Var) -> Var {
        let v = self.inner.add_bias(a, b);
        self.track(v, 0)
    }

    fn mul_bcast_row(&mut self, a: Var, b: Var) -> Var {
        let v = self.inner.mul_bcast_row(a, b);
        self.track(v, 0)
    }

    fn scale_rows(&mut self, a: Var, w: Var) -> Var {
        let v = self.inner.scale_rows(a, w);
        self.track(v, 0)
    }

    fn relu(&mut self, a: Var) -> Var {
        let v = self.inner.relu(a);
        self.track(v, 0)
    }

    fn gelu(&mut self, a: Var) -> Var {
        let v = self.inner.gelu(a);
        self.track(v, 0)
    }

    fn tanh(&mut self, a: Var) -> Var {
        let v = self.inner.tanh(a);
        self.track(v, 0)
    }

    fn sigmoid(&mut self, a: Var) -> Var {
        let v = self.inner.sigmoid(a);
        self.track(v, 0)
    }

    fn matmul(&mut self, a: Var, b: Var) -> Var {
        let tag = self.wmap[b.0] as usize;
        if tag != 0 {
            let q = self
                .weights
                .as_ref()
                .expect("tagged weight Var without an attached store");
            if let Some(qt) = q.entry(tag - 1) {
                let value = qt.matmul_quantized(self.inner.value(a));
                let v = self.inner.leaf(value);
                return self.track(v, 0);
            }
        }
        let v = self.inner.matmul(a, b);
        self.track(v, 0)
    }

    fn bmm(&mut self, a: Var, b: Var) -> Var {
        let v = self.inner.bmm(a, b);
        self.track(v, 0)
    }

    fn reshape(&mut self, a: Var, shape: Shape) -> Var {
        let v = self.inner.reshape(a, shape);
        // A reshaped weight is still the same weight: the GEMM only cares
        // about the (unchanged) rank-2 layout, so the tag propagates.
        let tag = self.wmap[a.0];
        let tag = if tag != 0 && self.inner.value(v).shape().rank() == 2 {
            tag
        } else {
            0
        };
        self.track(v, tag)
    }

    fn slice_last(&mut self, a: Var, start: usize, len: usize) -> Var {
        let v = self.inner.slice_last(a, start, len);
        self.track(v, 0)
    }

    fn concat_last(&mut self, parts: &[Var]) -> Var {
        let v = self.inner.concat_last(parts);
        self.track(v, 0)
    }

    fn select_rows(&mut self, a: Var, indices: &[usize]) -> Var {
        let v = self.inner.select_rows(a, indices);
        self.track(v, 0)
    }

    fn stack_rows(&mut self, rows: &[Var]) -> Var {
        let v = self.inner.stack_rows(rows);
        self.track(v, 0)
    }

    fn row(&mut self, a: Var, i: usize) -> Var {
        let v = self.inner.row(a, i);
        self.track(v, 0)
    }

    fn sum_all(&mut self, a: Var) -> Var {
        let v = self.inner.sum_all(a);
        self.track(v, 0)
    }

    fn sum_dim1(&mut self, a: Var) -> Var {
        let v = self.inner.sum_dim1(a);
        self.track(v, 0)
    }

    fn softmax_last(&mut self, a: Var) -> Var {
        let v = self.inner.softmax_last(a);
        self.track(v, 0)
    }

    fn layer_norm_last(&mut self, a: Var, eps: f32) -> Var {
        let v = self.inner.layer_norm_last(a, eps);
        self.track(v, 0)
    }

    fn fused_attention(
        &mut self,
        q: Var,
        k: Var,
        v: Var,
        heads: usize,
        scale: f32,
        add_mask: Option<&Tensor>,
    ) -> Var {
        let out = self.inner.fused_attention(q, k, v, heads, scale, add_mask);
        self.track(out, 0)
    }
}

impl ForwardArena for QuantInferCtx {
    fn clear(&mut self) {
        QuantInferCtx::clear(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive triple-loop reference over the same quantized inputs.
    fn matmul_q8_ref(aq: &[i16], bq: &[i16], m: usize, k: usize, n: usize) -> Vec<i32> {
        let mut out = vec![0i32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0i32;
                for p in 0..k {
                    acc += aq[i * k + p] as i32 * bq[p * n + j] as i32;
                }
                out[i * n + j] = acc;
            }
        }
        out
    }

    /// Deterministic i8-range fill covering the full [-127, 127] span.
    fn qseq(len: usize, seed: i32) -> Vec<i16> {
        (0..len)
            .map(|i| {
                let v = (i as i32).wrapping_mul(37).wrapping_add(seed) % 255;
                (v - 127) as i16
            })
            .collect()
    }

    #[test]
    fn q8_gemm_matches_reference_exactly_on_odd_sizes() {
        // Edge-straddling shapes around the MR/NR tile boundaries, plus odd
        // k to exercise the zero-padded pair slot.
        for &(m, k, n) in &[
            (1usize, 1usize, 8usize),
            (3, 5, 9),
            (4, 2, 8),
            (5, 7, 17),
            (8, 8, 8),
            (13, 11, 24),
            (16, 33, 40),
        ] {
            let aq = qseq(m * k, 17);
            let bq = qseq(k * n, -91);
            let mut out = vec![0i32; m * n];
            matmul_q8_into(&aq, &bq, &mut out, m, k, n);
            assert_eq!(
                out,
                matmul_q8_ref(&aq, &bq, m, k, n),
                "mismatch at {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn q8_gemm_saturated_inputs_do_not_overflow() {
        // All values pinned at ±127: every accumulator hits its magnitude
        // bound for this k.
        let (m, k, n) = (4usize, 1024usize, 8usize);
        let aq = vec![127i16; m * k];
        let bq: Vec<i16> = (0..k * n)
            .map(|i| if i % 2 == 0 { 127 } else { -127 })
            .collect();
        let mut out = vec![0i32; m * n];
        matmul_q8_into(&aq, &bq, &mut out, m, k, n);
        assert_eq!(out, matmul_q8_ref(&aq, &bq, m, k, n));
    }

    #[test]
    fn scale_and_quantize_roundtrip_within_one_step() {
        let data: Vec<f32> = (0..100).map(|i| (i as f32 - 50.0) * 0.31).collect();
        let scale = quantize_scale(&data);
        let recip = 1.0 / scale;
        let mut q = Vec::new();
        quantize_slice_into(&data, recip, &mut q);
        for (&x, &qi) in data.iter().zip(&q) {
            assert!((-127..=127).contains(&qi));
            let back = qi as f32 * scale;
            assert!(
                (back - x).abs() <= scale * 0.5 + 1e-6,
                "x={x} back={back} scale={scale}"
            );
        }
        assert_eq!(quantize_scale(&[0.0, 0.0]), 1.0, "all-zero scale");
    }

    #[test]
    fn quantized_store_skips_ineligible_params() {
        let mut ps = ParamStore::new();
        let wide = ps.add("wide", Tensor::ones([16, 16]));
        let narrow = ps.add("narrow.w", Tensor::ones([16, 1])); // numeric head
        let vector = ps.add("bias", Tensor::ones([16]));
        let q = QuantizedParamStore::from_store(&ps);
        assert!(q.entry(wide.index()).is_some());
        assert!(q.entry(narrow.index()).is_none(), "n < NR must stay f32");
        assert!(q.entry(vector.index()).is_none(), "rank-1 must stay f32");
        assert_eq!(q.num_quantized(), 1);
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn matmul_quantized_matches_manual_dequant() {
        let k = 24;
        let n = 16;
        let m = 5;
        let w = Tensor::new(
            [k, n],
            (0..k * n)
                .map(|i| ((i as f32) * 0.013 - 1.7) * if i % 5 == 0 { -1.0 } else { 1.0 })
                .collect(),
        );
        let a = Tensor::new(
            [m, k],
            (0..m * k).map(|i| (i as f32) * 0.021 - 1.1).collect(),
        );
        let qt = QuantizedTensor::from_tensor(&w).expect("eligible");
        let got = qt.matmul_quantized(&a);
        // Manual: quantize both sides (activation per row), exact integer
        // product, dequantize per row.
        let sb = quantize_scale(w.data());
        let mut aq = Vec::new();
        let mut sa = Vec::new();
        for row in a.data().chunks_exact(k) {
            let s = quantize_scale(row);
            sa.push(s);
            quantize_slice_into(row, 1.0 / s, &mut aq);
        }
        let mut bq = Vec::new();
        quantize_slice_into(w.data(), 1.0 / sb, &mut bq);
        let acc = matmul_q8_ref(&aq, &bq, m, k, n);
        for (i, (&g, &ac)) in got.data().iter().zip(&acc).enumerate() {
            let want = ac as f32 * (sa[i / n] * sb);
            assert_eq!(g.to_bits(), want.to_bits(), "element {i}");
        }
        // And the dequantized result approximates the f32 product.
        let f32_out = a.matmul(&w);
        for (&g, &f) in got.data().iter().zip(f32_out.data()) {
            assert!((g - f).abs() < 0.5, "quantized {g} too far from f32 {f}");
        }
    }

    #[test]
    fn matmul_quantized_rows_are_independent_of_batch_mates() {
        // Serving concatenates every batched query's chains into one
        // activation matrix, so a row's bits must not change when other rows
        // join the batch (a per-tensor activation scale would break this —
        // the ci.sh shard-matrix gate caught exactly that).
        let k = 20;
        let n = 8;
        let w = Tensor::new(
            [k, n],
            (0..k * n).map(|i| (i as f32) * 0.017 - 1.3).collect(),
        );
        let qt = QuantizedTensor::from_tensor(&w).expect("eligible");
        let row: Vec<f32> = (0..k).map(|i| (i as f32) * 0.03 - 0.2).collect();
        let alone = qt.matmul_quantized(&Tensor::new([1, k], row.clone()));
        // Batch-mate with a much larger magnitude, which would dominate a
        // shared per-tensor scale.
        let mut batched_data = row.clone();
        batched_data.extend((0..k).map(|i| (i as f32) * 9.0 - 55.0));
        let batched = qt.matmul_quantized(&Tensor::new([2, k], batched_data));
        for (j, (&a, &b)) in alone.data().iter().zip(&batched.data()[..n]).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "column {j} depends on batch-mates"
            );
        }
    }

    #[test]
    fn quant_ctx_runs_linear_layers_quantized_and_rest_f32() {
        use crate::nn::{Activation, Mlp};
        use cf_rand::SeedableRng;
        let mut rng = cf_rand::rngs::StdRng::seed_from_u64(11);
        let mut ps = ParamStore::new();
        let mlp = Mlp::new(&mut ps, "f", &[12, 32, 32], Activation::Gelu, &mut rng);
        let q = Arc::new(QuantizedParamStore::from_store(&ps));
        assert!(q.num_quantized() >= 2, "MLP weights should quantize");
        let x = Tensor::new([4, 12], (0..48).map(|i| (i as f32) * 0.07 - 1.5).collect());

        let mut fctx = InferCtx::new();
        let xv = fctx.leaf(x.clone());
        let fy = mlp.forward(&mut fctx, &ps, xv);
        let f32_out = fctx.value(fy).data().to_vec();

        let mut qctx = QuantInferCtx::new();
        qctx.set_weights(Arc::clone(&q));
        let xv = qctx.leaf(x.clone());
        let qy = mlp.forward(&mut qctx, &ps, xv);
        let q_out = qctx.value(qy).data().to_vec();

        assert_eq!(q_out.len(), f32_out.len());
        let mut max_err = 0.0f32;
        let mut identical = true;
        for (&a, &b) in q_out.iter().zip(&f32_out) {
            max_err = max_err.max((a - b).abs());
            identical &= a.to_bits() == b.to_bits();
        }
        assert!(!identical, "quantized path must actually run quantized");
        assert!(max_err < 0.2, "quantization error too large: {max_err}");

        // Without an attached store, the ctx is bit-identical to f32.
        let mut plain = QuantInferCtx::new();
        let xv = plain.leaf(x);
        let py = mlp.forward(&mut plain, &ps, xv);
        assert_eq!(plain.value(py).data(), f32_out.as_slice());
    }

    #[test]
    fn quant_ctx_is_deterministic_across_clears() {
        use crate::nn::{Activation, Mlp};
        use cf_rand::SeedableRng;
        let mut rng = cf_rand::rngs::StdRng::seed_from_u64(3);
        let mut ps = ParamStore::new();
        let mlp = Mlp::new(&mut ps, "f", &[8, 16, 16], Activation::Tanh, &mut rng);
        let q = Arc::new(QuantizedParamStore::from_store(&ps));
        let x = Tensor::new([3, 8], (0..24).map(|i| (i as f32) * 0.11 - 1.0).collect());
        let mut ctx = QuantInferCtx::new();
        ctx.set_weights(q);
        let mut runs = Vec::new();
        for _ in 0..3 {
            ctx.clear();
            let xv = ctx.leaf(x.clone());
            let y = mlp.forward(&mut ctx, &ps, xv);
            runs.push(
                ctx.value(y)
                    .data()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
            );
        }
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[1], runs[2]);
    }
}
