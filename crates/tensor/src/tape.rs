//! Arena-based reverse-mode autodiff tape.
//!
//! Every differentiable op appends one node to the tape; node ids are handed
//! out as lightweight [`Var`]s. Because the arena is append-only, parents
//! always have smaller indices than children, so a single reverse scan of the
//! arena is a valid topological traversal for backpropagation — no explicit
//! graph sort is needed. This follows the "arena over `Rc<RefCell>` graph"
//! idiom for linked structures in Rust.
//!
//! The tape is also an *allocation* arena: backward closures are bump-
//! allocated into reusable byte chunks instead of one `Box` per node, node
//! and gradient tables are stashed thread-locally across tape lifetimes, and
//! every tensor buffer comes from [`crate::pool`]. After one warm-up step,
//! building + differentiating a tape performs zero heap allocations
//! (`DESIGN.md` §10).

use std::cell::RefCell;
use std::mem::MaybeUninit;

use crate::params::ParamId;
use crate::shape::Shape;
use crate::tensor::Tensor;

/// Handle to a node on a [`Tape`]. Cheap to copy; only valid for the tape
/// that produced it.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Hash)]
pub struct Var(pub(crate) usize);

impl Var {
    /// Raw node index on the owning tape.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// Backward rule of one node: given the incoming gradient of the node it may
/// read any forward value from the tape and must accumulate gradients into
/// its parents via [`GradStore::accumulate`]. Stored as a raw fat pointer
/// into the tape's closure arena; the tape drops it in place on reset.
pub(crate) type BwdPtr = *mut (dyn Fn(&Tensor, &Tape, &mut GradStore) + 'static);

pub(crate) struct Node {
    pub(crate) value: Tensor,
    /// `None` marks a leaf (input, constant, or parameter).
    pub(crate) backward: Option<BwdPtr>,
    /// Set when the leaf mirrors a parameter from a `ParamStore`.
    pub(crate) param: Option<ParamId>,
}

/// Chunk size for the closure bump arena. One training step records a few
/// hundred closures of ≤ ~100 bytes each, so one chunk usually suffices.
const ARENA_CHUNK: usize = 64 * 1024;

/// How many retired tape/grad skeletons to keep per thread. Nested tapes
/// (gradcheck re-runs, eval inside training) rarely go deeper than this.
const MAX_STASH: usize = 4;

/// Bump allocator for backward closures.
///
/// Closures are placement-written into boxed byte chunks (stable addresses —
/// chunks are never reallocated, only appended) and dropped in place when the
/// tape resets. `reset` rewinds the bump cursor but keeps the chunks, so a
/// recycled tape records its next step without touching the allocator.
#[derive(Default)]
struct ClosureArena {
    chunks: Vec<Box<[MaybeUninit<u8>]>>,
    cur: usize,
    offset: usize,
}

impl ClosureArena {
    fn alloc<F>(&mut self, f: F) -> BwdPtr
    where
        F: Fn(&Tensor, &Tape, &mut GradStore) + 'static,
    {
        let size = std::mem::size_of::<F>();
        let align = std::mem::align_of::<F>();
        if size == 0 {
            // Zero-sized closures live at any aligned address.
            let p = std::ptr::NonNull::<F>::dangling().as_ptr();
            unsafe { p.write(f) };
            return p as BwdPtr;
        }
        loop {
            if let Some(chunk) = self.chunks.get_mut(self.cur) {
                // Alignment is computed from the chunk's real base address.
                let base = chunk.as_mut_ptr() as usize;
                let aligned = (base + self.offset + align - 1) & !(align - 1);
                let start = aligned - base;
                if start + size <= chunk.len() {
                    let p = unsafe { chunk.as_mut_ptr().add(start) } as *mut F;
                    unsafe { p.write(f) };
                    self.offset = start + size;
                    return p as BwdPtr;
                }
                self.cur += 1;
                self.offset = 0;
            } else {
                let len = ARENA_CHUNK.max(size + align);
                self.chunks
                    .push(vec![MaybeUninit::uninit(); len].into_boxed_slice());
                self.cur = self.chunks.len() - 1;
                self.offset = 0;
            }
        }
    }

    /// Rewinds the bump cursor, keeping the chunks for the next tape.
    /// Callers must have already dropped every closure in place.
    fn reset(&mut self) {
        self.cur = 0;
        self.offset = 0;
    }
}

thread_local! {
    /// Retired tape skeletons: empty node tables + closure arenas whose
    /// capacity survives across `Tape::new()`/drop cycles.
    static TAPE_STASH: RefCell<Vec<(Vec<Node>, ClosureArena)>> = const { RefCell::new(Vec::new()) };
    /// Retired gradient-store skeletons (node/param tables + scratch).
    #[allow(clippy::type_complexity)]
    static GRAD_STASH: RefCell<Vec<(Vec<Option<Tensor>>, Vec<Option<Tensor>>, Vec<f32>)>> =
        const { RefCell::new(Vec::new()) };
}

/// The autodiff tape: an arena of nodes recording one forward pass.
///
/// A tape is built per forward pass and dropped afterwards; parameters live
/// in a [`crate::params::ParamStore`] and are copied onto the tape by
/// [`Tape::param`]. Dropping a tape recycles its node table, closure arena
/// and every node tensor, so per-step tapes are allocation-free at steady
/// state.
pub struct Tape {
    pub(crate) nodes: Vec<Node>,
    arena: ClosureArena,
}

impl Default for Tape {
    fn default() -> Self {
        Self::new()
    }
}

impl Tape {
    /// An empty tape (recycled from this thread's stash when available).
    pub fn new() -> Self {
        let stashed = TAPE_STASH.with(|s| s.borrow_mut().pop());
        match stashed {
            Some((nodes, arena)) => Tape { nodes, arena },
            None => Tape {
                nodes: Vec::new(),
                arena: ClosureArena::default(),
            },
        }
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The forward value of a node.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// Drops every closure in place and clears the node table (node tensors
    /// recycle through `Tensor::drop`).
    fn clear_nodes(&mut self) {
        for node in &mut self.nodes {
            if let Some(p) = node.backward.take() {
                unsafe { std::ptr::drop_in_place(p) };
            }
        }
        self.nodes.clear();
        self.arena.reset();
    }

    /// Records a node with no backward rule.
    pub(crate) fn push_value(&mut self, value: Tensor) -> Var {
        self.nodes.push(Node {
            value,
            backward: None,
            param: None,
        });
        Var(self.nodes.len() - 1)
    }

    /// Records a node with a backward rule (bump-allocated on the tape).
    pub(crate) fn push_bwd<F>(&mut self, value: Tensor, f: F) -> Var
    where
        F: Fn(&Tensor, &Tape, &mut GradStore) + 'static,
    {
        let ptr = self.arena.alloc(f);
        self.nodes.push(Node {
            value,
            backward: Some(ptr),
            param: None,
        });
        Var(self.nodes.len() - 1)
    }

    /// Attaches a backward rule to an already-recorded node. Used by ops
    /// whose closure must capture the output [`Var`] itself (softmax, tanh…).
    pub(crate) fn set_bwd<F>(&mut self, v: Var, f: F)
    where
        F: Fn(&Tensor, &Tape, &mut GradStore) + 'static,
    {
        let ptr = self.arena.alloc(f);
        let old = self.nodes[v.0].backward.replace(ptr);
        debug_assert!(old.is_none(), "node {} already had a backward rule", v.0);
    }

    /// Records a leaf whose gradient is retained after backward (an "input").
    pub fn leaf(&mut self, value: Tensor) -> Var {
        self.push_value(value)
    }

    /// Records a constant; identical to a leaf, named for intent.
    pub fn constant(&mut self, value: Tensor) -> Var {
        self.leaf(value)
    }

    /// Records a scalar constant.
    pub fn scalar(&mut self, value: f32) -> Var {
        self.leaf(Tensor::scalar(value))
    }

    /// Copies a parameter onto the tape; its gradient lands in
    /// [`GradStore::param_grad`] after backward.
    pub fn param(&mut self, store: &crate::params::ParamStore, id: ParamId) -> Var {
        let v = self.push_value(store.get(id).clone());
        self.nodes[v.0].param = Some(id);
        v
    }

    /// Runs backpropagation from `loss` (normally a scalar), returning the
    /// gradient store. `num_params` sizes the per-parameter gradient table;
    /// pass `store.len()`.
    pub fn backward(&self, loss: Var, num_params: usize) -> GradStore {
        let mut grads = GradStore::new(self.nodes.len(), num_params);
        grads.accumulate(loss, Tensor::ones(*self.value(loss).shape()));
        for i in (0..=loss.0).rev() {
            let node = &self.nodes[i];
            match node.backward {
                Some(p) => {
                    // Interior node: consume its gradient and push it down.
                    if let Some(g) = grads.node_grads[i].take() {
                        let f = unsafe { &*p };
                        f(&g, self, &mut grads);
                    }
                }
                None => {
                    // Leaf: retain the gradient, mirroring params out.
                    if let (Some(pid), Some(g)) = (node.param, grads.node_grads[i].as_ref()) {
                        grads.accumulate_param(pid, g.clone());
                    }
                }
            }
        }
        grads
    }
}

impl Drop for Tape {
    fn drop(&mut self) {
        self.clear_nodes();
        let nodes = std::mem::take(&mut self.nodes);
        let arena = std::mem::take(&mut self.arena);
        let _ = TAPE_STASH.try_with(|s| {
            let mut s = s.borrow_mut();
            if s.len() < MAX_STASH {
                s.push((nodes, arena));
            }
        });
    }
}

/// Gradients produced by [`Tape::backward`].
///
/// Interior-node gradients are consumed during the reverse scan; leaf
/// gradients (inputs, constants, parameter copies) are retained and parameter
/// gradients are additionally aggregated per [`ParamId`] — the same parameter
/// may appear on the tape many times (e.g. a shared embedding table).
pub struct GradStore {
    pub(crate) node_grads: Vec<Option<Tensor>>,
    param_grads: Vec<Option<Tensor>>,
    /// Reused zeroed staging buffer for [`GradStore::accumulate_with`] when a
    /// slot already holds a gradient — backward rules then never allocate a
    /// fresh tensor per contribution.
    scratch: Vec<f32>,
}

impl GradStore {
    fn new(num_nodes: usize, num_params: usize) -> Self {
        let stashed = GRAD_STASH.with(|s| s.borrow_mut().pop());
        let (mut node_grads, mut param_grads, scratch) = stashed.unwrap_or_default();
        node_grads.resize_with(num_nodes, || None);
        param_grads.resize_with(num_params, || None);
        GradStore {
            node_grads,
            param_grads,
            scratch,
        }
    }

    /// An empty parameter-gradient table with no tape nodes. The
    /// data-parallel trainer builds one per optimizer step and merges the
    /// per-shard contributions into it through [`Self::add_param_grad`] in a
    /// fixed order, so the reduction tree is identical at every thread count.
    pub fn for_params(num_params: usize) -> Self {
        GradStore::new(0, num_params)
    }

    /// Adds a flat gradient contribution for parameter `id`. The first
    /// contribution copies the bits verbatim (not `0.0 + x`, which would
    /// flip `-0.0`); later contributions add elementwise in call order, so
    /// the caller controls the reduction order exactly.
    pub fn add_param_grad(&mut self, id: ParamId, shape: &Shape, data: &[f32]) {
        assert_eq!(shape.numel(), data.len(), "add_param_grad length mismatch");
        match &mut self.param_grads[id.index()] {
            Some(acc) => crate::simd::add_assign_slice(acc.data_mut(), data),
            slot @ None => {
                let mut buf = crate::pool::take_f32(data.len());
                buf.extend_from_slice(data);
                *slot = Some(Tensor::new(*shape, buf));
            }
        }
    }

    /// Adds `g` into the gradient slot of `v`.
    pub fn accumulate(&mut self, v: Var, g: Tensor) {
        match &mut self.node_grads[v.0] {
            Some(acc) => acc.add_assign(&g),
            slot @ None => *slot = Some(g),
        }
    }

    /// Adds `g` into the gradient slot of `v` without taking ownership:
    /// clones only when the slot is empty, otherwise accumulates directly.
    /// Bitwise-equivalent to `accumulate(v, g.clone())` minus the allocation.
    pub fn accumulate_in_place(&mut self, v: Var, g: &Tensor) {
        match &mut self.node_grads[v.0] {
            Some(acc) => acc.add_assign(g),
            slot @ None => *slot = Some(g.clone()),
        }
    }

    /// Accumulates a gradient contribution of `shape` into `v`'s slot via a
    /// filler that *adds into* (or writes once per element of) a zeroed
    /// buffer — the natural contract of the `matmul_into*` kernels.
    ///
    /// First contribution: `fill` runs directly on the freshly allocated
    /// slot, so no temporary exists at all. Later contributions: `fill`
    /// runs on a reused scratch buffer which is then added elementwise —
    /// the same `compute-then-add` summation order as the
    /// allocate-a-`Tensor`-per-op path this replaces, keeping gradients
    /// bitwise identical while eliminating the per-op allocation.
    pub fn accumulate_with(&mut self, v: Var, shape: &Shape, fill: impl FnOnce(&mut [f32])) {
        match &mut self.node_grads[v.0] {
            Some(acc) => {
                debug_assert_eq!(
                    acc.shape(),
                    shape,
                    "accumulate_with shape mismatch on node {}",
                    v.0
                );
                let n = shape.numel();
                self.scratch.clear();
                self.scratch.resize(n, 0.0);
                fill(&mut self.scratch);
                crate::simd::add_assign_slice(acc.data_mut(), &self.scratch);
            }
            slot @ None => {
                let mut fresh = Tensor::zeros(*shape);
                fill(fresh.data_mut());
                *slot = Some(fresh);
            }
        }
    }

    fn accumulate_param(&mut self, id: ParamId, g: Tensor) {
        match &mut self.param_grads[id.index()] {
            Some(acc) => acc.add_assign(&g),
            slot @ None => *slot = Some(g),
        }
    }

    /// Gradient of a retained leaf, if it received any.
    pub fn grad(&self, v: Var) -> Option<&Tensor> {
        self.node_grads[v.0].as_ref()
    }

    /// Aggregated gradient of a parameter, if it participated in the loss.
    pub fn param_grad(&self, id: ParamId) -> Option<&Tensor> {
        self.param_grads[id.index()].as_ref()
    }

    /// Global L2 norm across all parameter gradients.
    pub fn global_param_norm(&self) -> f32 {
        self.param_grads
            .iter()
            .flatten()
            .map(|g| g.data().iter().map(|x| x * x).sum::<f32>())
            .sum::<f32>()
            .sqrt()
    }

    /// Scales every parameter gradient in place (used by gradient clipping).
    pub fn scale_param_grads(&mut self, alpha: f32) {
        for g in self.param_grads.iter_mut().flatten() {
            g.scale_in_place(alpha);
        }
    }

    /// True when every produced gradient is finite.
    pub fn all_finite(&self) -> bool {
        self.node_grads.iter().flatten().all(Tensor::all_finite)
            && self.param_grads.iter().flatten().all(Tensor::all_finite)
    }
}

impl Drop for GradStore {
    fn drop(&mut self) {
        // Gradient tensors recycle through their own Drop; the emptied
        // tables and scratch go back to the stash for the next backward.
        self.node_grads.clear();
        self.param_grads.clear();
        let skeleton = (
            std::mem::take(&mut self.node_grads),
            std::mem::take(&mut self.param_grads),
            std::mem::take(&mut self.scratch),
        );
        let _ = GRAD_STASH.try_with(|s| {
            let mut s = s.borrow_mut();
            if s.len() < MAX_STASH {
                s.push(skeleton);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamStore;

    #[test]
    fn leaf_values_are_stored() {
        let mut t = Tape::new();
        let a = t.leaf(Tensor::vector(&[1.0, 2.0]));
        assert_eq!(t.value(a).data(), &[1.0, 2.0]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn backward_of_identity_leaf_is_ones() {
        let mut t = Tape::new();
        let a = t.leaf(Tensor::vector(&[3.0, 4.0]));
        let g = t.backward(a, 0);
        assert_eq!(g.grad(a).unwrap().data(), &[1.0, 1.0]);
    }

    #[test]
    fn param_grad_is_aggregated_across_uses() {
        let mut ps = ParamStore::new();
        let w = ps.add("w", Tensor::vector(&[1.0]));
        let mut t = Tape::new();
        let a = t.param(&ps, w);
        let b = t.param(&ps, w);
        let s = t.add(a, b);
        let g = t.backward(s, ps.len());
        // d(a+b)/dw where both a and b mirror w: gradient 1 + 1.
        assert_eq!(g.param_grad(w).unwrap().data(), &[2.0]);
    }

    #[test]
    fn unused_param_has_no_grad() {
        let mut ps = ParamStore::new();
        let w = ps.add("w", Tensor::vector(&[1.0]));
        let u = ps.add("unused", Tensor::vector(&[1.0]));
        let mut t = Tape::new();
        let a = t.param(&ps, w);
        let g = t.backward(a, ps.len());
        assert!(g.param_grad(w).is_some());
        assert!(g.param_grad(u).is_none());
    }

    #[test]
    fn recycled_tape_reruns_identically() {
        // Two tapes built back-to-back (the second recycles the first's
        // skeleton) must produce bit-identical values and gradients.
        let run = || {
            let mut ps = ParamStore::new();
            let w = ps.add("w", Tensor::vector(&[0.5, -1.25, 3.0]));
            let mut t = Tape::new();
            let a = t.param(&ps, w);
            let b = t.tanh(a);
            let c = t.mul(b, a);
            let l = t.sum_all(c);
            let loss_bits: Vec<u32> = t.value(l).data().iter().map(|x| x.to_bits()).collect();
            let g = t.backward(l, ps.len());
            let grad_bits: Vec<u32> = g
                .param_grad(w)
                .unwrap()
                .data()
                .iter()
                .map(|x| x.to_bits())
                .collect();
            (loss_bits, grad_bits)
        };
        let first = run();
        for _ in 0..3 {
            assert_eq!(run(), first);
        }
    }

    #[test]
    fn closure_captures_drop_on_tape_drop() {
        use std::rc::Rc;
        // A closure capturing an Rc must release it when the tape resets —
        // proves drop_in_place runs over the bump arena.
        let token = Rc::new(());
        {
            let mut t = Tape::new();
            let probe = Rc::clone(&token);
            let a = t.leaf(Tensor::scalar(1.0));
            let v = t.push_bwd(Tensor::scalar(2.0), move |g, _t, gs| {
                let _keepalive = &probe;
                gs.accumulate_in_place(a, g);
            });
            let g = t.backward(v, 0);
            assert_eq!(g.grad(a).unwrap().item(), 1.0);
            assert_eq!(Rc::strong_count(&token), 2);
        }
        assert_eq!(Rc::strong_count(&token), 1, "closure capture leaked");
    }
}
