//! Arena-based reverse-mode autodiff tape.
//!
//! Every differentiable op appends one node to the tape; node ids are handed
//! out as lightweight [`Var`]s. Because the arena is append-only, parents
//! always have smaller indices than children, so a single reverse scan of the
//! arena is a valid topological traversal for backpropagation — no explicit
//! graph sort is needed. This follows the "arena over `Rc<RefCell>` graph"
//! idiom for linked structures in Rust.

use crate::params::ParamId;
use crate::shape::Shape;
use crate::tensor::Tensor;

/// Handle to a node on a [`Tape`]. Cheap to copy; only valid for the tape
/// that produced it.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Hash)]
pub struct Var(pub(crate) usize);

impl Var {
    /// Raw node index on the owning tape.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// Backward rule of one node: given the incoming gradient of the node it may
/// read any forward value from the tape and must accumulate gradients into
/// its parents via [`GradStore::accumulate`].
pub(crate) type BackwardFn = Box<dyn Fn(&Tensor, &Tape, &mut GradStore)>;

pub(crate) struct Node {
    pub(crate) value: Tensor,
    /// `None` marks a leaf (input, constant, or parameter).
    pub(crate) backward: Option<BackwardFn>,
    /// Set when the leaf mirrors a parameter from a `ParamStore`.
    pub(crate) param: Option<ParamId>,
}

/// The autodiff tape: an arena of nodes recording one forward pass.
///
/// A tape is built per forward pass and dropped afterwards; parameters live
/// in a [`crate::params::ParamStore`] and are copied onto the tape by
/// [`Tape::param`].
#[derive(Default)]
pub struct Tape {
    pub(crate) nodes: Vec<Node>,
}

impl Tape {
    /// An empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The forward value of a node.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    pub(crate) fn push(&mut self, value: Tensor, backward: Option<BackwardFn>) -> Var {
        self.nodes.push(Node {
            value,
            backward,
            param: None,
        });
        Var(self.nodes.len() - 1)
    }

    /// Records a leaf whose gradient is retained after backward (an "input").
    pub fn leaf(&mut self, value: Tensor) -> Var {
        self.push(value, None)
    }

    /// Records a constant; identical to a leaf, named for intent.
    pub fn constant(&mut self, value: Tensor) -> Var {
        self.leaf(value)
    }

    /// Records a scalar constant.
    pub fn scalar(&mut self, value: f32) -> Var {
        self.leaf(Tensor::scalar(value))
    }

    /// Copies a parameter onto the tape; its gradient lands in
    /// [`GradStore::param_grad`] after backward.
    pub fn param(&mut self, store: &crate::params::ParamStore, id: ParamId) -> Var {
        let v = self.push(store.get(id).clone(), None);
        self.nodes[v.0].param = Some(id);
        v
    }

    /// Runs backpropagation from `loss` (normally a scalar), returning the
    /// gradient store. `num_params` sizes the per-parameter gradient table;
    /// pass `store.len()`.
    pub fn backward(&self, loss: Var, num_params: usize) -> GradStore {
        let mut grads = GradStore::new(self.nodes.len(), num_params);
        grads.accumulate(loss, Tensor::ones(self.value(loss).shape().clone()));
        for i in (0..=loss.0).rev() {
            let node = &self.nodes[i];
            match &node.backward {
                Some(f) => {
                    // Interior node: consume its gradient and push it down.
                    if let Some(g) = grads.node_grads[i].take() {
                        f(&g, self, &mut grads);
                    }
                }
                None => {
                    // Leaf: retain the gradient, mirroring params out.
                    if let (Some(pid), Some(g)) = (node.param, grads.node_grads[i].as_ref()) {
                        grads.accumulate_param(pid, g.clone());
                    }
                }
            }
        }
        grads
    }
}

/// Gradients produced by [`Tape::backward`].
///
/// Interior-node gradients are consumed during the reverse scan; leaf
/// gradients (inputs, constants, parameter copies) are retained and parameter
/// gradients are additionally aggregated per [`ParamId`] — the same parameter
/// may appear on the tape many times (e.g. a shared embedding table).
pub struct GradStore {
    pub(crate) node_grads: Vec<Option<Tensor>>,
    param_grads: Vec<Option<Tensor>>,
    /// Reused zeroed staging buffer for [`GradStore::accumulate_with`] when a
    /// slot already holds a gradient — backward rules then never allocate a
    /// fresh tensor per contribution.
    scratch: Vec<f32>,
}

impl GradStore {
    fn new(num_nodes: usize, num_params: usize) -> Self {
        GradStore {
            node_grads: (0..num_nodes).map(|_| None).collect(),
            param_grads: (0..num_params).map(|_| None).collect(),
            scratch: Vec::new(),
        }
    }

    /// Adds `g` into the gradient slot of `v`.
    pub fn accumulate(&mut self, v: Var, g: Tensor) {
        match &mut self.node_grads[v.0] {
            Some(acc) => acc.add_assign(&g),
            slot @ None => *slot = Some(g),
        }
    }

    /// Adds `g` into the gradient slot of `v` without taking ownership:
    /// clones only when the slot is empty, otherwise accumulates directly.
    /// Bitwise-equivalent to `accumulate(v, g.clone())` minus the allocation.
    pub fn accumulate_in_place(&mut self, v: Var, g: &Tensor) {
        match &mut self.node_grads[v.0] {
            Some(acc) => acc.add_assign(g),
            slot @ None => *slot = Some(g.clone()),
        }
    }

    /// Accumulates a gradient contribution of `shape` into `v`'s slot via a
    /// filler that *adds into* (or writes once per element of) a zeroed
    /// buffer — the natural contract of the `matmul_into*` kernels.
    ///
    /// First contribution: `fill` runs directly on the freshly allocated
    /// slot, so no temporary exists at all. Later contributions: `fill`
    /// runs on a reused scratch buffer which is then added elementwise —
    /// the same `compute-then-add` summation order as the
    /// allocate-a-`Tensor`-per-op path this replaces, keeping gradients
    /// bitwise identical while eliminating the per-op allocation.
    pub fn accumulate_with(&mut self, v: Var, shape: &Shape, fill: impl FnOnce(&mut [f32])) {
        match &mut self.node_grads[v.0] {
            Some(acc) => {
                debug_assert_eq!(
                    acc.shape(),
                    shape,
                    "accumulate_with shape mismatch on node {}",
                    v.0
                );
                let n = shape.numel();
                self.scratch.clear();
                self.scratch.resize(n, 0.0);
                fill(&mut self.scratch);
                for (o, s) in acc.data_mut().iter_mut().zip(&self.scratch) {
                    *o += *s;
                }
            }
            slot @ None => {
                let mut fresh = Tensor::zeros(shape.clone());
                fill(fresh.data_mut());
                *slot = Some(fresh);
            }
        }
    }

    fn accumulate_param(&mut self, id: ParamId, g: Tensor) {
        match &mut self.param_grads[id.index()] {
            Some(acc) => acc.add_assign(&g),
            slot @ None => *slot = Some(g),
        }
    }

    /// Gradient of a retained leaf, if it received any.
    pub fn grad(&self, v: Var) -> Option<&Tensor> {
        self.node_grads[v.0].as_ref()
    }

    /// Aggregated gradient of a parameter, if it participated in the loss.
    pub fn param_grad(&self, id: ParamId) -> Option<&Tensor> {
        self.param_grads[id.index()].as_ref()
    }

    /// Global L2 norm across all parameter gradients.
    pub fn global_param_norm(&self) -> f32 {
        self.param_grads
            .iter()
            .flatten()
            .map(|g| g.data().iter().map(|x| x * x).sum::<f32>())
            .sum::<f32>()
            .sqrt()
    }

    /// Scales every parameter gradient in place (used by gradient clipping).
    pub fn scale_param_grads(&mut self, alpha: f32) {
        for g in self.param_grads.iter_mut().flatten() {
            g.scale_in_place(alpha);
        }
    }

    /// True when every produced gradient is finite.
    pub fn all_finite(&self) -> bool {
        self.node_grads.iter().flatten().all(Tensor::all_finite)
            && self.param_grads.iter().flatten().all(Tensor::all_finite)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamStore;

    #[test]
    fn leaf_values_are_stored() {
        let mut t = Tape::new();
        let a = t.leaf(Tensor::vector(&[1.0, 2.0]));
        assert_eq!(t.value(a).data(), &[1.0, 2.0]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn backward_of_identity_leaf_is_ones() {
        let mut t = Tape::new();
        let a = t.leaf(Tensor::vector(&[3.0, 4.0]));
        let g = t.backward(a, 0);
        assert_eq!(g.grad(a).unwrap().data(), &[1.0, 1.0]);
    }

    #[test]
    fn param_grad_is_aggregated_across_uses() {
        let mut ps = ParamStore::new();
        let w = ps.add("w", Tensor::vector(&[1.0]));
        let mut t = Tape::new();
        let a = t.param(&ps, w);
        let b = t.param(&ps, w);
        let s = t.add(a, b);
        let g = t.backward(s, ps.len());
        // d(a+b)/dw where both a and b mirror w: gradient 1 + 1.
        assert_eq!(g.param_grad(w).unwrap().data(), &[2.0]);
    }

    #[test]
    fn unused_param_has_no_grad() {
        let mut ps = ParamStore::new();
        let w = ps.add("w", Tensor::vector(&[1.0]));
        let u = ps.add("unused", Tensor::vector(&[1.0]));
        let mut t = Tape::new();
        let a = t.param(&ps, w);
        let g = t.backward(a, ps.len());
        assert!(g.param_grad(w).is_some());
        assert!(g.param_grad(u).is_none());
    }
}
