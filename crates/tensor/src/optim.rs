//! Optimizers: Adam (used by the paper) and plain SGD, plus global-norm
//! gradient clipping.

use crate::params::{ParamId, ParamStore};
use crate::tape::GradStore;
use crate::tensor::Tensor;

/// Clips parameter gradients to a maximum global L2 norm; returns the
/// pre-clip norm.
pub fn clip_global_norm(grads: &mut GradStore, max_norm: f32) -> f32 {
    let norm = grads.global_param_norm();
    if norm.is_finite() && norm > max_norm && norm > 0.0 {
        grads.scale_param_grads(max_norm / norm);
    }
    norm
}

/// Adam with bias correction and optional decoupled weight decay (AdamW when
/// `weight_decay > 0`).
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay (default 0.9).
    pub beta1: f32,
    /// Second-moment decay (default 0.999).
    pub beta2: f32,
    /// Denominator epsilon.
    pub eps: f32,
    /// Decoupled weight-decay coefficient (0 disables).
    pub weight_decay: f32,
    step: u64,
    m: Vec<Option<Tensor>>,
    v: Vec<Option<Tensor>>,
}

impl Adam {
    /// Adam with the paper's learning rate default (1e-4) unless overridden.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            step: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Enables decoupled (AdamW-style) weight decay.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Number of optimizer steps taken so far.
    pub fn steps(&self) -> u64 {
        self.step
    }

    /// A copy of the optimizer's mutable state (step count and both moment
    /// estimates), for durable checkpoints.
    pub fn snapshot(&self) -> AdamSnapshot {
        AdamSnapshot {
            step: self.step,
            m: self.m.clone(),
            v: self.v.clone(),
        }
    }

    /// Restores state captured by [`Self::snapshot`]. Together with
    /// restoring parameters and the data-order RNG, this makes a resumed
    /// run's update sequence bit-identical to the uninterrupted one.
    pub fn restore(&mut self, snapshot: AdamSnapshot) {
        self.step = snapshot.step;
        self.m = snapshot.m;
        self.v = snapshot.v;
    }

    /// Applies one update using the gradients produced by a backward pass.
    /// Parameters without gradients are left untouched.
    pub fn step(&mut self, params: &mut ParamStore, grads: &GradStore) {
        self.step += 1;
        if self.m.len() < params.len() {
            self.m.resize_with(params.len(), || None);
            self.v.resize_with(params.len(), || None);
        }
        let bc1 = 1.0 - self.beta1.powi(self.step as i32);
        let bc2 = 1.0 - self.beta2.powi(self.step as i32);
        for idx in 0..params.len() {
            let id = ParamId(idx);
            let Some(g) = grads.param_grad(id) else {
                continue;
            };
            let m = self.m[idx].get_or_insert_with(|| Tensor::zeros(g.shape().clone()));
            let v = self.v[idx].get_or_insert_with(|| Tensor::zeros(g.shape().clone()));
            let p = params.get_mut(id);
            adam_update_slice(
                p.data_mut(),
                g.data(),
                m.data_mut(),
                v.data_mut(),
                self.beta1,
                self.beta2,
                bc1,
                bc2,
                self.lr,
                self.eps,
                self.weight_decay,
            );
        }
    }
}

/// Element count above which one parameter's Adam update fans out across
/// the thread pool (every lane is independent, so the split is bitwise
/// invariant at any thread count).
const PAR_MIN_ELEMS: usize = 32 * 1024;

/// One Adam update over a parameter's flat data, chunked across the thread
/// pool for large tensors.
#[allow(clippy::too_many_arguments)]
fn adam_update_slice(
    p: &mut [f32],
    g: &[f32],
    m: &mut [f32],
    v: &mut [f32],
    beta1: f32,
    beta2: f32,
    bc1: f32,
    bc2: f32,
    lr: f32,
    eps: f32,
    weight_decay: f32,
) {
    let n = g.len();
    if n >= PAR_MIN_ELEMS {
        let (sp, sm, sv) = (
            crate::pool::SharedMut::new(p),
            crate::pool::SharedMut::new(m),
            crate::pool::SharedMut::new(v),
        );
        crate::pool::parallel_for(n, |r| {
            // SAFETY: partition ranges are disjoint and identical across
            // all four buffers.
            let (pr, mr, vr) = unsafe {
                (
                    sp.get(r.start, r.len()),
                    sm.get(r.start, r.len()),
                    sv.get(r.start, r.len()),
                )
            };
            adam_update_chunk(
                pr,
                &g[r],
                mr,
                vr,
                beta1,
                beta2,
                bc1,
                bc2,
                lr,
                eps,
                weight_decay,
            );
        });
    } else {
        adam_update_chunk(p, g, m, v, beta1, beta2, bc1, bc2, lr, eps, weight_decay);
    }
}

crate::simd::simd_hot! {

/// One contiguous chunk of an Adam update: every lane is an independent
/// exactly-rounded chain, so this vectorizes fully.
#[allow(clippy::too_many_arguments)]
fn adam_update_chunk(
    p: &mut [f32],
    g: &[f32],
    m: &mut [f32],
    v: &mut [f32],
    beta1: f32,
    beta2: f32,
    bc1: f32,
    bc2: f32,
    lr: f32,
    eps: f32,
    weight_decay: f32,
) {
    for i in 0..g.len() {
        let gi = g[i];
        let mi = beta1 * m[i] + (1.0 - beta1) * gi;
        let vi = beta2 * v[i] + (1.0 - beta2) * gi * gi;
        m[i] = mi;
        v[i] = vi;
        let m_hat = mi / bc1;
        let v_hat = vi / bc2;
        let mut update = lr * m_hat / (v_hat.sqrt() + eps);
        if weight_decay > 0.0 {
            update += lr * weight_decay * p[i];
        }
        p[i] -= update;
    }
}

}

/// The mutable state of an [`Adam`] optimizer, as captured by
/// [`Adam::snapshot`] and serialized into CFT2 checkpoints (see
/// [`crate::serialize`]). Moment slots are `None` for parameters that have
/// never received a gradient, mirroring the lazy allocation in
/// [`Adam::step`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AdamSnapshot {
    /// Optimizer steps taken (drives bias correction).
    pub step: u64,
    /// First-moment estimates, indexed by parameter id.
    pub m: Vec<Option<Tensor>>,
    /// Second-moment estimates, indexed by parameter id.
    pub v: Vec<Option<Tensor>>,
}

/// Plain stochastic gradient descent (used by a few baselines and tests).
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
}

impl Sgd {
    /// SGD with the given learning rate.
    pub fn new(lr: f32) -> Self {
        Sgd { lr }
    }

    /// Applies `p -= lr * grad` to every parameter with a gradient.
    pub fn step(&self, params: &mut ParamStore, grads: &GradStore) {
        for idx in 0..params.len() {
            let id = ParamId(idx);
            if let Some(g) = grads.param_grad(id) {
                params.get_mut(id).axpy(-self.lr, g);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;

    /// Minimizes f(w) = (w - 3)^2 and checks convergence.
    fn converge(opt: &mut Adam, iters: usize) -> f32 {
        let mut ps = ParamStore::new();
        let w = ps.add("w", Tensor::vector(&[0.0]));
        for _ in 0..iters {
            let mut t = Tape::new();
            let wv = t.param(&ps, w);
            let target = Tensor::vector(&[3.0]);
            let loss = t.mse_loss(wv, &target);
            let grads = t.backward(loss, ps.len());
            opt.step(&mut ps, &grads);
        }
        ps.get(w).item()
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.1);
        let w = converge(&mut opt, 300);
        assert!((w - 3.0).abs() < 0.05, "adam stopped at {w}");
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut ps = ParamStore::new();
        let w = ps.add("w", Tensor::vector(&[0.0]));
        let opt = Sgd::new(0.1);
        for _ in 0..100 {
            let mut t = Tape::new();
            let wv = t.param(&ps, w);
            let loss = t.mse_loss(wv, &Tensor::vector(&[3.0]));
            let grads = t.backward(loss, ps.len());
            opt.step(&mut ps, &grads);
        }
        assert!((ps.get(w).item() - 3.0).abs() < 1e-3);
    }

    #[test]
    fn clip_rescales_large_gradients() {
        let mut ps = ParamStore::new();
        let w = ps.add("w", Tensor::vector(&[0.0]));
        let mut t = Tape::new();
        let wv = t.param(&ps, w);
        let scaled = t.mul_scalar(wv, 100.0);
        let loss = t.mse_loss(scaled, &Tensor::vector(&[100.0]));
        let mut grads = t.backward(loss, ps.len());
        let pre = clip_global_norm(&mut grads, 1.0);
        assert!(pre > 1.0);
        assert!((grads.global_param_norm() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn adam_skips_ungradded_params() {
        let mut ps = ParamStore::new();
        let w = ps.add("w", Tensor::vector(&[1.0]));
        let frozen = ps.add("frozen", Tensor::vector(&[7.0]));
        let mut opt = Adam::new(0.1);
        let mut t = Tape::new();
        let wv = t.param(&ps, w);
        let loss = t.mse_loss(wv, &Tensor::vector(&[0.0]));
        let grads = t.backward(loss, ps.len());
        opt.step(&mut ps, &grads);
        assert_eq!(ps.get(frozen).item(), 7.0);
        assert!(ps.get(w).item() < 1.0);
    }

    #[test]
    fn snapshot_restore_resumes_updates_bitwise() {
        // Two optimizers on identical problems: one runs 6 steps straight;
        // the other runs 3, is snapshotted into a fresh instance, and runs
        // 3 more. Final parameters must agree bit-for-bit.
        fn one_step(opt: &mut Adam, ps: &mut ParamStore, w: ParamId) {
            let mut t = Tape::new();
            let wv = t.param(ps, w);
            let loss = t.mse_loss(wv, &Tensor::vector(&[3.0]));
            let grads = t.backward(loss, ps.len());
            opt.step(ps, &grads);
        }
        let mut ps_a = ParamStore::new();
        let wa = ps_a.add("w", Tensor::vector(&[0.0]));
        let mut opt_a = Adam::new(0.1);
        for _ in 0..6 {
            one_step(&mut opt_a, &mut ps_a, wa);
        }

        let mut ps_b = ParamStore::new();
        let wb = ps_b.add("w", Tensor::vector(&[0.0]));
        let mut opt_b = Adam::new(0.1);
        for _ in 0..3 {
            one_step(&mut opt_b, &mut ps_b, wb);
        }
        let snap = opt_b.snapshot();
        let mut opt_c = Adam::new(0.1);
        opt_c.restore(snap);
        assert_eq!(opt_c.steps(), 3);
        for _ in 0..3 {
            one_step(&mut opt_c, &mut ps_b, wb);
        }
        assert_eq!(
            ps_a.get(wa).item().to_bits(),
            ps_b.get(wb).item().to_bits(),
            "resumed Adam diverged from the uninterrupted run"
        );
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut ps = ParamStore::new();
        let w = ps.add("w", Tensor::vector(&[5.0]));
        let mut opt = Adam::new(0.0).with_weight_decay(0.1);
        opt.lr = 0.1; // decay applies via lr * wd * p
        let mut t = Tape::new();
        let wv = t.param(&ps, w);
        // Loss constant in w would produce no grad; use a tiny quadratic.
        let loss = t.mse_loss(wv, &Tensor::vector(&[5.0]));
        let grads = t.backward(loss, ps.len());
        opt.step(&mut ps, &grads);
        assert!(ps.get(w).item() < 5.0);
    }
}
