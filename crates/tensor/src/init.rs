//! Weight initializers.

use crate::shape::Shape;
use crate::tensor::Tensor;
use cf_rand::Rng;

/// Initialization schemes for learnable tensors.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum Init {
    /// All zeros (biases).
    Zeros,
    /// All set to the given constant.
    Const(f32),
    /// Uniform in `[-a, a]`.
    Uniform(f32),
    /// Gaussian with the given standard deviation.
    Normal(f32),
    /// Glorot/Xavier uniform: `U(-sqrt(6/(fan_in+fan_out)), +...)`.
    ///
    /// Fan-in/out are taken from the last two dims; rank-1 tensors use
    /// `fan_in = fan_out = len`.
    XavierUniform,
    /// Kaiming/He normal for ReLU-family activations: `N(0, sqrt(2/fan_in))`.
    KaimingNormal,
}

impl Init {
    /// Draws a tensor of `shape` according to the scheme.
    pub fn sample(self, shape: impl Into<Shape>, rng: &mut impl Rng) -> Tensor {
        let shape = shape.into();
        let n = shape.numel();
        let (fan_in, fan_out) = fans(&shape);
        let data: Vec<f32> = match self {
            Init::Zeros => vec![0.0; n],
            Init::Const(c) => vec![c; n],
            Init::Uniform(a) => (0..n).map(|_| rng.gen_range(-a..=a)).collect(),
            Init::Normal(std) => (0..n)
                .map(|_| std * cf_rand::sample_normal_f32(rng))
                .collect(),
            Init::XavierUniform => {
                let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
                (0..n).map(|_| rng.gen_range(-a..=a)).collect()
            }
            Init::KaimingNormal => {
                let std = (2.0 / fan_in as f32).sqrt();
                (0..n)
                    .map(|_| std * cf_rand::sample_normal_f32(rng))
                    .collect()
            }
        };
        Tensor::new(shape, data)
    }
}

/// `(fan_in, fan_out)` for a weight shape, matching the PyTorch convention of
/// `[out, in]`-style trailing dims read as `[.., fan_out, fan_in]` — except we
/// store linear weights as `[in, out]`, so fan_in is the second-to-last dim.
fn fans(shape: &Shape) -> (usize, usize) {
    match shape.rank() {
        0 => (1, 1),
        1 => (shape.dim(0).max(1), shape.dim(0).max(1)),
        r => (shape.dim(r - 2).max(1), shape.dim(r - 1).max(1)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_rand::rngs::StdRng;
    use cf_rand::SeedableRng;

    #[test]
    fn zeros_and_const() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(Init::Zeros
            .sample([4], &mut rng)
            .data()
            .iter()
            .all(|&x| x == 0.0));
        assert!(Init::Const(2.5)
            .sample([4], &mut rng)
            .data()
            .iter()
            .all(|&x| x == 2.5));
    }

    #[test]
    fn uniform_respects_bound() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = Init::Uniform(0.1).sample([1000], &mut rng);
        assert!(t.data().iter().all(|&x| (-0.1..=0.1).contains(&x)));
    }

    #[test]
    fn xavier_bound_from_fans() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = Init::XavierUniform.sample([100, 50], &mut rng);
        let bound = (6.0f32 / 150.0).sqrt();
        assert!(t.data().iter().all(|&x| x.abs() <= bound + 1e-6));
    }

    #[test]
    fn normal_statistics_roughly_match() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = Init::Normal(1.0).sample([20_000], &mut rng);
        let mean = t.mean();
        let var = t.data().iter().map(|x| (x - mean).powi(2)).sum::<f32>() / t.numel() as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn gaussian_is_finite() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            assert!(cf_rand::sample_normal_f32(&mut rng).is_finite());
        }
    }
}
