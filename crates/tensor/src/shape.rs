//! Shape utilities for row-major contiguous tensors.

/// Maximum supported tensor rank. Nothing in the model exceeds rank 3
/// (`[batch, seq, dim]`); 4 leaves headroom without growing the struct.
pub const MAX_RANK: usize = 4;

/// A tensor shape: dimension sizes, outermost first.
///
/// Tensors in this crate are always row-major and contiguous, so a shape plus
/// a flat `Vec<f32>` fully describes the data. There are no strided views;
/// `reshape` is metadata-only and `transpose` materializes.
///
/// Dimensions are stored inline (rank ≤ [`MAX_RANK`]) so `Shape` is `Copy`
/// and constructing or cloning a tensor never heap-allocates for its shape —
/// a prerequisite for the zero-allocation steady state (`DESIGN.md` §10).
#[derive(Clone, Copy, Debug)]
pub struct Shape {
    dims: [usize; MAX_RANK],
    rank: u8,
}

impl Shape {
    /// Shape from a dimension list. Panics if the rank exceeds [`MAX_RANK`].
    pub fn new(dims: &[usize]) -> Self {
        assert!(
            dims.len() <= MAX_RANK,
            "rank {} exceeds MAX_RANK {MAX_RANK}",
            dims.len()
        );
        let mut d = [0usize; MAX_RANK];
        d[..dims.len()].copy_from_slice(dims);
        Shape {
            dims: d,
            rank: dims.len() as u8,
        }
    }

    /// Scalar shape (rank 0, one element).
    pub fn scalar() -> Self {
        Shape::new(&[])
    }

    /// The dimension sizes, outermost first.
    pub fn dims(&self) -> &[usize] {
        &self.dims[..self.rank as usize]
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.dims().iter().product()
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.rank as usize
    }

    /// Size of the last dimension; 1 for scalars.
    pub fn last_dim(&self) -> usize {
        self.dims().last().copied().unwrap_or(1)
    }

    /// Number of rows when the tensor is viewed as `[numel / last_dim, last_dim]`.
    pub fn leading(&self) -> usize {
        let d = self.dims();
        if d.is_empty() {
            1
        } else {
            d[..d.len() - 1].iter().product()
        }
    }

    /// Dimension size at `i`, panicking with a readable message out of range.
    pub fn dim(&self, i: usize) -> usize {
        assert!(
            i < self.rank(),
            "dim {i} out of range for shape {:?}",
            self.dims()
        );
        self.dims[i]
    }

    /// This shape with the last dimension replaced by `len`.
    ///
    /// Panics on scalars (there is no last dimension to replace).
    pub fn with_last(&self, len: usize) -> Shape {
        assert!(self.rank() > 0, "scalar shape has no last dimension");
        let mut s = *self;
        s.dims[s.rank as usize - 1] = len;
        s
    }

    /// Interprets the shape as a matrix `[rows, cols]`.
    ///
    /// Panics unless the rank is exactly 2.
    pub fn as_matrix(&self) -> (usize, usize) {
        assert!(
            self.rank() == 2,
            "expected rank-2 shape, got {:?}",
            self.dims()
        );
        (self.dims[0], self.dims[1])
    }

    /// Interprets the shape as a batch of matrices `[batch, rows, cols]`.
    ///
    /// Panics unless the rank is exactly 3.
    pub fn as_batch_matrix(&self) -> (usize, usize, usize) {
        assert!(
            self.rank() == 3,
            "expected rank-3 shape, got {:?}",
            self.dims()
        );
        (self.dims[0], self.dims[1], self.dims[2])
    }
}

impl PartialEq for Shape {
    fn eq(&self, other: &Self) -> bool {
        self.dims() == other.dims()
    }
}

impl Eq for Shape {}

impl std::hash::Hash for Shape {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.dims().hash(state);
    }
}

impl From<Vec<usize>> for Shape {
    fn from(v: Vec<usize>) -> Self {
        Shape::new(&v)
    }
}

impl From<&[usize]> for Shape {
    fn from(v: &[usize]) -> Self {
        Shape::new(v)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(v: [usize; N]) -> Self {
        Shape::new(&v)
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", self.dims())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_rank() {
        let s = Shape::from([2, 3, 4]);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.last_dim(), 4);
        assert_eq!(s.leading(), 6);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::scalar();
        assert_eq!(s.numel(), 1);
        assert_eq!(s.rank(), 0);
        assert_eq!(s.last_dim(), 1);
        assert_eq!(s.leading(), 1);
    }

    #[test]
    fn matrix_views() {
        assert_eq!(Shape::from([3, 5]).as_matrix(), (3, 5));
        assert_eq!(Shape::from([2, 3, 5]).as_batch_matrix(), (2, 3, 5));
    }

    #[test]
    #[should_panic(expected = "rank-2")]
    fn as_matrix_rejects_vector() {
        Shape::from([3]).as_matrix();
    }

    #[test]
    fn equality_ignores_trailing_storage() {
        assert_eq!(Shape::from([2, 3]), Shape::new(&[2, 3]));
        assert_ne!(Shape::from([2, 3]), Shape::from([2, 3, 1]));
        assert_eq!(Shape::from([4]).with_last(7), Shape::from([7]));
    }
}
