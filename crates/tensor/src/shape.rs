//! Shape utilities for row-major contiguous tensors.

/// A tensor shape: dimension sizes, outermost first.
///
/// Tensors in this crate are always row-major and contiguous, so a shape plus
/// a flat `Vec<f32>` fully describes the data. There are no strided views;
/// `reshape` is metadata-only and `transpose` materializes.
#[derive(Clone, PartialEq, Eq, Debug, Hash)]
pub struct Shape(pub Vec<usize>);

impl Shape {
    /// Scalar shape (rank 0, one element).
    pub fn scalar() -> Self {
        Shape(vec![])
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Size of the last dimension; 1 for scalars.
    pub fn last_dim(&self) -> usize {
        self.0.last().copied().unwrap_or(1)
    }

    /// Number of rows when the tensor is viewed as `[numel / last_dim, last_dim]`.
    pub fn leading(&self) -> usize {
        if self.0.is_empty() {
            1
        } else {
            self.0[..self.0.len() - 1].iter().product()
        }
    }

    /// Dimension size at `i`, panicking with a readable message out of range.
    pub fn dim(&self, i: usize) -> usize {
        assert!(
            i < self.0.len(),
            "dim {i} out of range for shape {:?}",
            self.0
        );
        self.0[i]
    }

    /// Interprets the shape as a matrix `[rows, cols]`.
    ///
    /// Panics unless the rank is exactly 2.
    pub fn as_matrix(&self) -> (usize, usize) {
        assert!(self.rank() == 2, "expected rank-2 shape, got {:?}", self.0);
        (self.0[0], self.0[1])
    }

    /// Interprets the shape as a batch of matrices `[batch, rows, cols]`.
    ///
    /// Panics unless the rank is exactly 3.
    pub fn as_batch_matrix(&self) -> (usize, usize, usize) {
        assert!(self.rank() == 3, "expected rank-3 shape, got {:?}", self.0);
        (self.0[0], self.0[1], self.0[2])
    }
}

impl From<Vec<usize>> for Shape {
    fn from(v: Vec<usize>) -> Self {
        Shape(v)
    }
}

impl From<&[usize]> for Shape {
    fn from(v: &[usize]) -> Self {
        Shape(v.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(v: [usize; N]) -> Self {
        Shape(v.to_vec())
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_rank() {
        let s = Shape::from([2, 3, 4]);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.last_dim(), 4);
        assert_eq!(s.leading(), 6);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::scalar();
        assert_eq!(s.numel(), 1);
        assert_eq!(s.rank(), 0);
        assert_eq!(s.last_dim(), 1);
        assert_eq!(s.leading(), 1);
    }

    #[test]
    fn matrix_views() {
        assert_eq!(Shape::from([3, 5]).as_matrix(), (3, 5));
        assert_eq!(Shape::from([2, 3, 5]).as_batch_matrix(), (2, 3, 5));
    }

    #[test]
    #[should_panic(expected = "rank-2")]
    fn as_matrix_rejects_vector() {
        Shape::from([3]).as_matrix();
    }
}
