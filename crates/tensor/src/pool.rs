//! Size-bucketed buffer pool backing every tensor and scratch allocation,
//! plus the in-tree [`ThreadPool`] that parallelizes the hot kernels.
//!
//! The tape arena gives buffers a shared lifetime: every op output, gradient
//! slot and packing panel allocated during a step dies together when the tape
//! (or [`crate::InferCtx`]) is reset. Instead of returning those `Vec`s to the
//! global allocator and immediately re-requesting identical sizes on the next
//! step, this module keeps per-thread free-lists bucketed by power-of-two
//! capacity. After one warm-up step the steady state performs **zero** heap
//! allocations in the numeric substrate (see `DESIGN.md` §10).
//!
//! Recycling is bitwise-safe by construction: a pooled buffer is never
//! observable with stale contents. [`take_zeroed`] clears and `resize(n, 0.0)`s
//! the vector (producing exactly the bytes of `vec![0.0; n]`) and
//! [`take_f32`] returns a zero-length vector whose contents are only ever
//! `extend`ed with freshly computed values.
//!
//! The pool is thread-local (the tape itself is `!Send`), so no locking is
//! involved; each serve worker warms its own pool.

use std::cell::RefCell;

/// Number of power-of-two size classes. Class `c` holds vectors whose
/// capacity lies in `[2^c, 2^(c+1))`; class 27 covers 512 MiB of `f32`s,
/// far beyond anything the workloads allocate.
const NUM_CLASSES: usize = 28;

/// Maximum retained vectors per size class (per thread). A batched serve
/// context retires a couple thousand buffers at once when it clears —
/// heavily concentrated in the tiny classes (per-chain scalars and `[k]`
/// vectors land together) — and any overflow here turns into one allocator
/// round-trip per step, so the cap is sized well above what one tape or one
/// serve batch of the model shapes retires at once. The byte budget below
/// is the real memory bound.
const MAX_PER_CLASS: usize = 4096;

/// Total retained bytes per element-type pool (per thread). Bounds the pool
/// the way the old `matmul_into_bt` thread-local `PACK` scratch was not.
const MAX_POOL_BYTES: usize = 64 << 20;

struct Pool<T> {
    classes: Vec<Vec<Vec<T>>>,
    bytes: usize,
    enabled: bool,
    hits: u64,
    misses: u64,
}

impl<T: Clone + Default> Pool<T> {
    fn new() -> Self {
        Pool {
            classes: (0..NUM_CLASSES).map(|_| Vec::new()).collect(),
            bytes: 0,
            enabled: true,
            hits: 0,
            misses: 0,
        }
    }

    /// Class that can serve requests of length `n`: every vector stored in
    /// class `c` has capacity `>= 2^c`, so serving from `ceil(log2(n))`
    /// guarantees no reallocation on `resize`/`extend` up to `n` elements.
    fn class_for_request(n: usize) -> usize {
        (usize::BITS - (n - 1).leading_zeros()) as usize
    }

    /// Class a vector of capacity `cap` is stored in: `floor(log2(cap))`.
    fn class_for_capacity(cap: usize) -> usize {
        (usize::BITS - 1 - cap.leading_zeros()) as usize
    }

    /// A vector with `len == 0` and `capacity >= n` (pooled or fresh).
    fn take(&mut self, n: usize) -> Vec<T> {
        if n == 0 {
            return Vec::new();
        }
        if self.enabled {
            let class = Self::class_for_request(n);
            if class < NUM_CLASSES {
                if let Some(mut v) = self.classes[class].pop() {
                    self.bytes -= v.capacity() * std::mem::size_of::<T>();
                    self.hits += 1;
                    v.clear();
                    return v;
                }
                self.misses += 1;
                // Allocate the full class width so the buffer lands back in
                // `class` on recycle and serves every future request of this
                // size without reallocating.
                return Vec::with_capacity(n.next_power_of_two());
            }
        }
        self.misses += 1;
        Vec::with_capacity(n)
    }

    fn recycle(&mut self, v: Vec<T>) {
        let cap = v.capacity();
        if !self.enabled || cap == 0 {
            return;
        }
        let class = Self::class_for_capacity(cap);
        let bytes = cap * std::mem::size_of::<T>();
        if class >= NUM_CLASSES
            || self.classes[class].len() >= MAX_PER_CLASS
            || self.bytes + bytes > MAX_POOL_BYTES
        {
            return; // over budget: let the allocator have it back
        }
        self.bytes += bytes;
        self.classes[class].push(v);
    }
}

thread_local! {
    static F32_POOL: RefCell<Pool<f32>> = RefCell::new(Pool::new());
    static USIZE_POOL: RefCell<Pool<usize>> = RefCell::new(Pool::new());
    static I16_POOL: RefCell<Pool<i16>> = RefCell::new(Pool::new());
    static I32_POOL: RefCell<Pool<i32>> = RefCell::new(Pool::new());
}

/// Pool hit/miss counters for one thread (used by benches and the zero-alloc
/// gate to prove the steady state never touches the allocator).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Requests served from a free-list.
    pub hits: u64,
    /// Requests that had to allocate (warm-up or pool disabled).
    pub misses: u64,
    /// Bytes currently retained by the `f32` pool.
    pub retained_bytes: usize,
}

/// Snapshot of this thread's `f32`-pool counters.
pub fn stats() -> PoolStats {
    F32_POOL.with(|p| {
        let p = p.borrow();
        PoolStats {
            hits: p.hits,
            misses: p.misses,
            retained_bytes: p.bytes,
        }
    })
}

/// Resets this thread's hit/miss counters (retained buffers are kept).
pub fn reset_stats() {
    F32_POOL.with(|p| {
        let mut p = p.borrow_mut();
        p.hits = 0;
        p.misses = 0;
    });
    USIZE_POOL.with(|p| {
        let mut p = p.borrow_mut();
        p.hits = 0;
        p.misses = 0;
    });
    I16_POOL.with(|p| {
        let mut p = p.borrow_mut();
        p.hits = 0;
        p.misses = 0;
    });
    I32_POOL.with(|p| {
        let mut p = p.borrow_mut();
        p.hits = 0;
        p.misses = 0;
    });
}

/// Enables or disables pooling on this thread, returning the previous state.
///
/// While disabled, takes allocate fresh exact-size vectors and recycles drop
/// their argument — the pre-pool behaviour. Tests use this to prove the
/// pooled and fresh paths are bit-identical; the bench uses it for the
/// unpooled `train_step` baseline arm.
pub fn set_enabled(enabled: bool) -> bool {
    let prev_f = F32_POOL.with(|p| {
        let mut p = p.borrow_mut();
        std::mem::replace(&mut p.enabled, enabled)
    });
    USIZE_POOL.with(|p| p.borrow_mut().enabled = enabled);
    I16_POOL.with(|p| p.borrow_mut().enabled = enabled);
    I32_POOL.with(|p| p.borrow_mut().enabled = enabled);
    prev_f
}

/// An empty `Vec<f32>` with capacity for at least `n` elements. Extend it
/// with exactly the values you would have collected into a fresh vector.
pub fn take_f32(n: usize) -> Vec<f32> {
    F32_POOL.with(|p| p.borrow_mut().take(n))
}

/// A `Vec<f32>` of length `n` holding all zeros — bitwise identical to
/// `vec![0.0f32; n]`.
pub fn take_f32_zeroed(n: usize) -> Vec<f32> {
    let mut v = take_f32(n);
    v.resize(n, 0.0);
    v
}

/// A `Vec<f32>` of length `n` filled with `x` — bitwise `vec![x; n]`.
pub fn take_f32_filled(n: usize, x: f32) -> Vec<f32> {
    let mut v = take_f32(n);
    v.resize(n, x);
    v
}

/// Returns a buffer to this thread's pool. Called by `Tensor::drop`; call it
/// directly for raw scratch vectors obtained from [`take_f32`].
pub fn recycle_f32(v: Vec<f32>) {
    // `try_with` so drops during thread teardown degrade to a plain free.
    let _ = F32_POOL.try_with(|p| p.borrow_mut().recycle(v));
}

/// An empty `Vec<usize>` with capacity for at least `n` elements.
pub fn take_usize(n: usize) -> Vec<usize> {
    USIZE_POOL.with(|p| p.borrow_mut().take(n))
}

/// Returns an index buffer to this thread's pool.
pub fn recycle_usize(v: Vec<usize>) {
    let _ = USIZE_POOL.try_with(|p| p.borrow_mut().recycle(v));
}

/// RAII scratch buffer of `f32`s: recycles itself into the pool on drop.
/// Used for kernel packing panels and backward-pass scratch that is not a
/// [`crate::Tensor`] (tensors recycle through their own `Drop`).
#[derive(Debug, Default)]
pub struct ScratchF32(pub Vec<f32>);

impl ScratchF32 {
    /// Empty scratch with capacity for at least `n` elements.
    pub fn with_capacity(n: usize) -> Self {
        ScratchF32(take_f32(n))
    }

    /// Zero-filled scratch of length `n` (bitwise `vec![0.0; n]`).
    pub fn zeroed(n: usize) -> Self {
        ScratchF32(take_f32_zeroed(n))
    }
}

impl Drop for ScratchF32 {
    fn drop(&mut self) {
        recycle_f32(std::mem::take(&mut self.0));
    }
}

impl std::ops::Deref for ScratchF32 {
    type Target = Vec<f32>;
    fn deref(&self) -> &Vec<f32> {
        &self.0
    }
}

impl std::ops::DerefMut for ScratchF32 {
    fn deref_mut(&mut self) -> &mut Vec<f32> {
        &mut self.0
    }
}

/// An empty `Vec<i16>` with capacity for at least `n` elements (quantized
/// GEMM packing panels).
pub fn take_i16(n: usize) -> Vec<i16> {
    I16_POOL.with(|p| p.borrow_mut().take(n))
}

/// A `Vec<i16>` of length `n` holding all zeros — identical to
/// `vec![0i16; n]`.
pub fn take_i16_zeroed(n: usize) -> Vec<i16> {
    let mut v = take_i16(n);
    v.resize(n, 0);
    v
}

/// Returns a quantized-panel buffer to this thread's pool.
pub fn recycle_i16(v: Vec<i16>) {
    let _ = I16_POOL.try_with(|p| p.borrow_mut().recycle(v));
}

/// An empty `Vec<i32>` with capacity for at least `n` elements (quantized
/// GEMM accumulators).
pub fn take_i32(n: usize) -> Vec<i32> {
    I32_POOL.with(|p| p.borrow_mut().take(n))
}

/// A `Vec<i32>` of length `n` holding all zeros — identical to
/// `vec![0i32; n]`.
pub fn take_i32_zeroed(n: usize) -> Vec<i32> {
    let mut v = take_i32(n);
    v.resize(n, 0);
    v
}

/// Returns an accumulator buffer to this thread's pool.
pub fn recycle_i32(v: Vec<i32>) {
    let _ = I32_POOL.try_with(|p| p.borrow_mut().recycle(v));
}

/// RAII scratch buffer of `i16`s: recycles itself into the pool on drop.
/// Holds the quantized activation/weight packing panels of the int8 GEMM.
#[derive(Debug, Default)]
pub struct ScratchI16(pub Vec<i16>);

impl ScratchI16 {
    /// Empty scratch with capacity for at least `n` elements.
    pub fn with_capacity(n: usize) -> Self {
        ScratchI16(take_i16(n))
    }

    /// Zero-filled scratch of length `n` (identical to `vec![0i16; n]`).
    pub fn zeroed(n: usize) -> Self {
        ScratchI16(take_i16_zeroed(n))
    }
}

impl Drop for ScratchI16 {
    fn drop(&mut self) {
        recycle_i16(std::mem::take(&mut self.0));
    }
}

impl std::ops::Deref for ScratchI16 {
    type Target = Vec<i16>;
    fn deref(&self) -> &Vec<i16> {
        &self.0
    }
}

impl std::ops::DerefMut for ScratchI16 {
    fn deref_mut(&mut self) -> &mut Vec<i16> {
        &mut self.0
    }
}

/// RAII scratch buffer of `i32`s (int8-GEMM accumulator tiles).
#[derive(Debug, Default)]
pub struct ScratchI32(pub Vec<i32>);

impl ScratchI32 {
    /// Empty scratch with capacity for at least `n` elements.
    pub fn with_capacity(n: usize) -> Self {
        ScratchI32(take_i32(n))
    }

    /// Zero-filled scratch of length `n` (identical to `vec![0i32; n]`).
    pub fn zeroed(n: usize) -> Self {
        ScratchI32(take_i32_zeroed(n))
    }
}

impl Drop for ScratchI32 {
    fn drop(&mut self) {
        recycle_i32(std::mem::take(&mut self.0));
    }
}

impl std::ops::Deref for ScratchI32 {
    type Target = Vec<i32>;
    fn deref(&self) -> &Vec<i32> {
        &self.0
    }
}

impl std::ops::DerefMut for ScratchI32 {
    fn deref_mut(&mut self) -> &mut Vec<i32> {
        &mut self.0
    }
}

/// RAII scratch buffer of `usize`s (chain/row indices, argmax results, …).
#[derive(Debug, Default)]
pub struct ScratchUsize(pub Vec<usize>);

impl ScratchUsize {
    /// Empty scratch with capacity for at least `n` elements.
    pub fn with_capacity(n: usize) -> Self {
        ScratchUsize(take_usize(n))
    }

    /// Pooled copy of a slice.
    pub fn copy_of(xs: &[usize]) -> Self {
        let mut v = take_usize(xs.len());
        v.extend_from_slice(xs);
        ScratchUsize(v)
    }
}

impl Drop for ScratchUsize {
    fn drop(&mut self) {
        recycle_usize(std::mem::take(&mut self.0));
    }
}

impl std::ops::Deref for ScratchUsize {
    type Target = Vec<usize>;
    fn deref(&self) -> &Vec<usize> {
        &self.0
    }
}

impl std::ops::DerefMut for ScratchUsize {
    fn deref_mut(&mut self) -> &mut Vec<usize> {
        &mut self.0
    }
}

// ---------------------------------------------------------------------------
// Thread pool
// ---------------------------------------------------------------------------
//
// A small dependency-free worker pool with a scoped `run(n_items, |range|)`
// API. Work is split by *static range partition*: slice `s` of `T` gets
// `s*n/T .. (s+1)*n/T`, so the assignment depends only on `(n_items, T)` and
// never on timing. Determinism does not rest on the partition, though — the
// kernels routed through the pool only ever split *independent* dimensions
// (output rows, attention bands, flat elements, batch indices), so every
// element's float-op sequence is identical no matter which thread computes
// it or how many threads exist. See `DESIGN.md` §12.
//
// Workers are persistent (spawned once, parked on a condvar between jobs),
// which keeps their thread-local buffer pools warm: after one warm-up step a
// parallel kernel performs zero heap allocations, same as the serial path.

use std::any::Any;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Errors surfaced by [`ThreadPool::run`].
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum PoolError {
    /// `run` was called from inside a `run` closure (on the caller thread or
    /// on a pool worker). Nested jobs would deadlock a one-job-at-a-time
    /// pool, so they are rejected with this typed error instead;
    /// [`parallel_for`] falls back to the serial path in that case.
    Nested,
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::Nested => write!(f, "nested ThreadPool::run is not supported"),
        }
    }
}

impl std::error::Error for PoolError {}

/// One installed job: a lifetime-erased pointer to the caller's closure plus
/// the partition inputs. The caller blocks inside `run` until every slice
/// completes, so the pointer never outlives the borrow it was made from.
struct Job {
    f: *const (dyn Fn(Range<usize>) + Sync),
    n_items: usize,
    slices: usize,
}

// SAFETY: the closure behind `f` is `Sync` (shared `&` calls from many
// threads are fine) and `run` keeps the referent alive until the job retires.
unsafe impl Send for Job {}

struct JobState {
    /// Bumped once per installed job; workers detect new work by comparing
    /// against the last generation they executed.
    generation: u64,
    job: Option<Job>,
    /// Worker slices still running for the current generation.
    pending: usize,
    /// First worker panic of the current generation, if any.
    panic: Option<Box<dyn Any + Send>>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<JobState>,
    /// Workers park here between jobs.
    work_cv: Condvar,
    /// The caller parks here while worker slices drain.
    done_cv: Condvar,
}

thread_local! {
    /// Set while this thread is executing a `run` closure (caller or worker).
    static IN_RUN: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Clears `IN_RUN` even if the guarded closure panics.
struct InRunGuard;

impl InRunGuard {
    fn enter() -> Option<InRunGuard> {
        IN_RUN.with(|f| {
            if f.get() {
                None
            } else {
                f.set(true);
                Some(InRunGuard)
            }
        })
    }
}

impl Drop for InRunGuard {
    fn drop(&mut self) {
        let _ = IN_RUN.try_with(|f| f.set(false));
    }
}

/// Static range partition: slice `s` of `slices` over `n` items. Public so
/// callers that shard work by a *fixed* count (e.g. the data-parallel
/// trainer) partition exactly like the pool does.
pub fn slice_range(n: usize, slices: usize, s: usize) -> Range<usize> {
    (s * n / slices)..((s + 1) * n / slices)
}

/// A fixed set of persistent worker threads executing range-partitioned jobs.
///
/// `ThreadPool::new(t)` spawns `t - 1` workers; the calling thread always
/// executes slice 0 itself, so a 1-thread pool has no workers and
/// [`ThreadPool::run`] degenerates to a direct closure call with zero
/// synchronization. Workers park on a condvar between jobs and are joined on
/// drop. One job runs at a time; concurrent `run` calls from different
/// threads serialize on an internal lock, and nested calls return
/// [`PoolError::Nested`].
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    /// Serializes concurrent `run` callers (distinct from nesting).
    run_lock: Mutex<()>,
    threads: usize,
}

/// Ignore mutex poisoning: closures never panic while the state lock is held
/// (worker bodies run under `catch_unwind`), so a poisoned lock can only mean
/// a panic in this module's own bookkeeping — the data is still consistent.
fn lock(m: &Mutex<JobState>) -> MutexGuard<'_, JobState> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl ThreadPool {
    /// A pool that executes jobs on `threads` threads total (the caller plus
    /// `threads - 1` spawned workers). `threads` is clamped to at least 1.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(JobState {
                generation: 0,
                job: None,
                pending: 0,
                panic: None,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let workers = (1..threads)
            .map(|slice| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("cf-pool-{slice}"))
                    .spawn(move || worker_loop(&shared, slice))
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool {
            shared,
            workers,
            run_lock: Mutex::new(()),
            threads,
        }
    }

    /// Total threads participating in each job (including the caller).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Splits `0..n_items` into one contiguous range per thread and runs `f`
    /// on each range concurrently, returning once every range completes.
    ///
    /// Slice 0 runs on the calling thread; a 1-thread pool therefore calls
    /// `f(0..n_items)` directly with no synchronization at all. A panic in
    /// any slice is re-raised on the caller *after* all other slices finish
    /// (so no closure borrow is outstanding), and the pool remains usable
    /// for subsequent jobs. Steady-state `run` performs no heap allocation.
    pub fn run<F>(&self, n_items: usize, f: F) -> Result<(), PoolError>
    where
        F: Fn(Range<usize>) + Sync,
    {
        let guard = InRunGuard::enter().ok_or(PoolError::Nested)?;
        if self.threads == 1 || n_items == 0 {
            f(0..n_items);
            drop(guard);
            return Ok(());
        }
        let _serialize = self.run_lock.lock().unwrap_or_else(|e| e.into_inner());
        let f_ref: &(dyn Fn(Range<usize>) + Sync) = &f;
        // SAFETY: erases the borrow lifetime; `run` blocks until every slice
        // retires, so workers never observe a dangling pointer.
        let f_ptr: *const (dyn Fn(Range<usize>) + Sync) = unsafe { std::mem::transmute(f_ref) };
        {
            let mut st = lock(&self.shared.state);
            debug_assert!(st.job.is_none(), "run_lock must serialize jobs");
            st.generation += 1;
            st.pending = self.threads - 1;
            st.panic = None;
            st.job = Some(Job {
                f: f_ptr,
                n_items,
                slices: self.threads,
            });
            self.shared.work_cv.notify_all();
        }
        // Caller executes slice 0 while workers run slices 1..threads.
        let own = catch_unwind(AssertUnwindSafe(|| {
            f(slice_range(n_items, self.threads, 0))
        }));
        let worker_panic = {
            let mut st = lock(&self.shared.state);
            while st.pending > 0 {
                st = self
                    .shared
                    .done_cv
                    .wait(st)
                    .unwrap_or_else(|e| e.into_inner());
            }
            st.job = None;
            st.panic.take()
        };
        drop(guard);
        if let Err(payload) = own {
            std::panic::resume_unwind(payload);
        }
        if let Some(payload) = worker_panic {
            std::panic::resume_unwind(payload);
        }
        Ok(())
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut st = lock(&self.shared.state);
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared, slice: usize) {
    let mut seen = 0u64;
    loop {
        let (f, range) = {
            let mut st = lock(&shared.state);
            loop {
                if st.shutdown {
                    return;
                }
                if st.generation != seen {
                    break;
                }
                st = shared.work_cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            seen = st.generation;
            let job = st.job.as_ref().expect("generation bumped without a job");
            (job.f, slice_range(job.n_items, job.slices, slice))
        };
        // Execute outside the lock; flag the thread so kernels called from
        // inside the closure take their serial path instead of re-entering.
        let result = IN_RUN.with(|flag| {
            flag.set(true);
            let r = catch_unwind(AssertUnwindSafe(|| unsafe { (*f)(range) }));
            flag.set(false);
            r
        });
        let mut st = lock(&shared.state);
        if let Err(payload) = result {
            if st.panic.is_none() {
                st.panic = Some(payload);
            }
        }
        st.pending -= 1;
        if st.pending == 0 {
            shared.done_cv.notify_all();
        }
    }
}

// --- Global pool --------------------------------------------------------

/// Configured global thread count; 0 means "not yet initialized" (first use
/// reads `CF_THREADS`, falling back to the host parallelism).
static CONFIGURED: AtomicUsize = AtomicUsize::new(0);

/// Lazily built global pool shared by every parallel kernel.
static GLOBAL: Mutex<Option<Arc<ThreadPool>>> = Mutex::new(None);

fn default_threads() -> usize {
    match std::env::var("CF_THREADS") {
        Ok(s) => s.trim().parse::<usize>().unwrap_or(1).max(1),
        Err(_) => std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
    }
}

/// The global worker-thread count used by parallel kernels. Initialized on
/// first use from the `CF_THREADS` environment variable (host parallelism
/// when unset); change it at runtime with [`set_threads`].
pub fn threads() -> usize {
    let t = CONFIGURED.load(Ordering::Relaxed);
    if t != 0 {
        return t;
    }
    let t = default_threads();
    // Racing initializers compute the same value (env is stable), so a plain
    // store is fine.
    CONFIGURED.store(t, Ordering::Relaxed);
    t
}

/// Reconfigures the global pool to `threads` threads (clamped to ≥ 1). The
/// previous worker set is joined once every outstanding job completes; the
/// new pool is built lazily on the next parallel kernel. Thread count never
/// affects results — every kernel is bitwise invariant across counts — so
/// this is purely a performance knob (`--threads` / `CF_THREADS`).
pub fn set_threads(threads: usize) {
    let t = threads.max(1);
    CONFIGURED.store(t, Ordering::Relaxed);
    let mut g = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    *g = None; // rebuilt lazily at the new width
}

fn global_pool() -> Option<Arc<ThreadPool>> {
    let t = threads();
    if t <= 1 {
        return None;
    }
    let mut g = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    match g.as_ref() {
        Some(p) if p.threads() == t => Some(Arc::clone(p)),
        _ => {
            let p = Arc::new(ThreadPool::new(t));
            *g = Some(Arc::clone(&p));
            Some(p)
        }
    }
}

/// Runs `f` over `0..n_items` on the global pool, falling back to a direct
/// serial call when the pool is single-threaded, the item count is trivial,
/// or the caller is already inside a pool job (nested parallelism runs
/// serially by design). The serial and parallel paths execute the exact same
/// per-item work, so results are bitwise identical either way.
pub fn parallel_for<F>(n_items: usize, f: F)
where
    F: Fn(Range<usize>) + Sync,
{
    if n_items > 1 && !IN_RUN.with(std::cell::Cell::get) {
        if let Some(pool) = global_pool() {
            match pool.run(n_items, &f) {
                Ok(()) => return,
                Err(PoolError::Nested) => {} // raced a nested entry: serial
            }
        }
    }
    f(0..n_items);
}

/// Lifetime-erased shared-mutable view of a slice, for kernels whose
/// parallel slices write *disjoint* (but possibly interleaved) elements of
/// one output buffer — e.g. per-head attention bands that share rows.
///
/// # Safety contract
///
/// The creator must guarantee that concurrent [`Self::get`] calls from
/// different pool slices never touch the same index, and that no access
/// outlives the borrow `new` was given (the scoped [`ThreadPool::run`] API
/// enforces the latter structurally).
pub struct SharedMut<T> {
    ptr: *mut T,
    len: usize,
}

// SAFETY: dereferencing is gated behind `unsafe fn get` whose contract
// requires disjoint element access per thread.
unsafe impl<T: Send> Sync for SharedMut<T> {}
unsafe impl<T: Send> Send for SharedMut<T> {}

impl<T> SharedMut<T> {
    /// Wraps a mutable slice for disjoint multi-threaded writes.
    pub fn new(s: &mut [T]) -> Self {
        SharedMut {
            ptr: s.as_mut_ptr(),
            len: s.len(),
        }
    }

    /// Mutable subslice `start..start + len`.
    ///
    /// # Safety
    ///
    /// Caller must ensure no concurrently outstanding `get`/`get_all` range
    /// overlaps this one, and that the underlying borrow is still live.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn get(&self, start: usize, len: usize) -> &mut [T] {
        debug_assert!(start + len <= self.len);
        std::slice::from_raw_parts_mut(self.ptr.add(start), len)
    }

    /// The whole buffer.
    ///
    /// # Safety
    ///
    /// Same disjointness contract as [`Self::get`]: the thread may only
    /// write elements no other thread touches while the view is shared.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn get_all(&self) -> &mut [T] {
        std::slice::from_raw_parts_mut(self.ptr, self.len)
    }
}

#[cfg(test)]
mod pool_thread_tests {
    use super::*;

    #[test]
    fn single_thread_pool_runs_on_caller() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.threads(), 1);
        let caller = std::thread::current().id();
        let hits = AtomicUsize::new(0);
        pool.run(5, |r| {
            assert_eq!(std::thread::current().id(), caller);
            hits.fetch_add(r.len(), Ordering::Relaxed);
        })
        .unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn ranges_cover_exactly_once_at_every_width() {
        for threads in [1usize, 2, 3, 4, 8] {
            for n in [0usize, 1, 2, 3, 7, 8, 64, 1000] {
                let pool = ThreadPool::new(threads);
                let touched: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
                pool.run(n, |r| {
                    for i in r {
                        touched[i].fetch_add(1, Ordering::Relaxed);
                    }
                })
                .unwrap();
                for (i, t) in touched.iter().enumerate() {
                    assert_eq!(
                        t.load(Ordering::Relaxed),
                        1,
                        "item {i} of {n} at {threads} threads"
                    );
                }
            }
        }
    }

    #[test]
    fn nested_run_is_rejected_not_deadlocked() {
        let pool = ThreadPool::new(4);
        let saw_nested = AtomicUsize::new(0);
        pool.run(4, |_r| {
            // Any nested attempt — same pool or a different one — errors.
            match pool.run(2, |_| unreachable!("nested job must not execute")) {
                Err(PoolError::Nested) => {
                    saw_nested.fetch_add(1, Ordering::Relaxed);
                }
                Ok(()) => panic!("nested run unexpectedly accepted"),
            }
        })
        .unwrap();
        assert_eq!(saw_nested.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn worker_panic_propagates_without_poisoning() {
        let pool = ThreadPool::new(4);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(8, |r| {
                if r.contains(&5) {
                    panic!("slice bomb");
                }
            })
        }));
        assert!(caught.is_err(), "panic must reach the caller");
        // Pool still works for the next job.
        let count = AtomicUsize::new(0);
        pool.run(8, |r| {
            count.fetch_add(r.len(), Ordering::Relaxed);
        })
        .unwrap();
        assert_eq!(count.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn ten_thousand_tiny_jobs_complete() {
        let pool = ThreadPool::new(4);
        let total = AtomicUsize::new(0);
        for _ in 0..10_000 {
            pool.run(3, |r| {
                total.fetch_add(r.len(), Ordering::Relaxed);
            })
            .unwrap();
        }
        assert_eq!(total.load(Ordering::Relaxed), 30_000);
    }

    #[test]
    fn drop_joins_all_workers() {
        let pool = ThreadPool::new(4);
        pool.run(4, |_| {}).unwrap();
        let weak = Arc::downgrade(&pool.shared);
        drop(pool); // joins; workers release their Arc<Shared> clones
        assert_eq!(
            weak.strong_count(),
            0,
            "a worker thread outlived the pool drop"
        );
    }

    #[test]
    fn concurrent_runs_from_two_threads_serialize() {
        let pool = Arc::new(ThreadPool::new(2));
        let total = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let pool = Arc::clone(&pool);
                let total = Arc::clone(&total);
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        pool.run(4, |r| {
                            total.fetch_add(r.len(), Ordering::Relaxed);
                        })
                        .unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(total.load(Ordering::Relaxed), 4_000);
    }

    #[test]
    fn parallel_for_matches_serial_bitwise() {
        // The global pool may be at any width here; parallel_for must
        // produce the same bytes as a plain serial loop regardless.
        let n = 1023usize;
        let src: Vec<f32> = (0..n).map(|i| (i as f32) * 0.37 - 11.0).collect();
        let mut serial = vec![0.0f32; n];
        for i in 0..n {
            serial[i] = src[i] * 1.25 + 0.5;
        }
        let mut par = vec![0.0f32; n];
        let out = SharedMut::new(&mut par);
        parallel_for(n, |r| {
            // SAFETY: ranges from the partition are disjoint.
            let dst = unsafe { out.get(r.start, r.len()) };
            for (j, i) in r.enumerate() {
                dst[j] = src[i] * 1.25 + 0.5;
            }
        });
        for i in 0..n {
            assert_eq!(par[i].to_bits(), serial[i].to_bits());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_zeroed_matches_fresh_vec_bitwise() {
        // Dirty the pool with a recognizable pattern, then prove a zeroed
        // take cannot observe it.
        let mut v = take_f32(100);
        v.resize(100, f32::NAN);
        recycle_f32(v);
        let z = take_f32_zeroed(100);
        let fresh = vec![0.0f32; 100];
        assert_eq!(z.len(), fresh.len());
        for (a, b) in z.iter().zip(&fresh) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn steady_state_hits_after_warm_up() {
        reset_stats();
        for _ in 0..3 {
            let v = take_f32_zeroed(1000);
            recycle_f32(v);
        }
        let s = stats();
        assert!(s.hits >= 2, "expected pool hits, got {s:?}");
        assert!(s.misses <= 1, "expected one warm-up miss, got {s:?}");
    }

    #[test]
    fn served_capacity_always_fits_request() {
        // A recycled odd-capacity vector must never be served to a request
        // it cannot hold without reallocating.
        recycle_f32(Vec::with_capacity(100)); // class 6 (64..128)
        let v = take_f32(100); // requests class 7
        assert!(v.capacity() >= 100);
        let w = take_f32(65); // class 7 again; the cap-100 vec is in class 6
        assert!(w.capacity() >= 65);
    }

    #[test]
    fn disabled_pool_allocates_fresh() {
        let prev = set_enabled(false);
        let v = take_f32_zeroed(64);
        recycle_f32(v);
        reset_stats();
        let v = take_f32_zeroed(64);
        assert_eq!(stats().hits, 0);
        drop(v);
        set_enabled(prev);
    }

    #[test]
    fn scratch_recycles_on_drop() {
        let prev = set_enabled(true);
        {
            let mut s = ScratchF32::with_capacity(512);
            s.push(1.0);
        }
        reset_stats();
        let s2 = ScratchF32::with_capacity(512);
        assert_eq!(stats().hits, 1, "scratch drop did not recycle");
        drop(s2);
        set_enabled(prev);
    }
}
