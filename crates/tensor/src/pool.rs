//! Size-bucketed buffer pool backing every tensor and scratch allocation.
//!
//! The tape arena gives buffers a shared lifetime: every op output, gradient
//! slot and packing panel allocated during a step dies together when the tape
//! (or [`crate::InferCtx`]) is reset. Instead of returning those `Vec`s to the
//! global allocator and immediately re-requesting identical sizes on the next
//! step, this module keeps per-thread free-lists bucketed by power-of-two
//! capacity. After one warm-up step the steady state performs **zero** heap
//! allocations in the numeric substrate (see `DESIGN.md` §10).
//!
//! Recycling is bitwise-safe by construction: a pooled buffer is never
//! observable with stale contents. [`take_zeroed`] clears and `resize(n, 0.0)`s
//! the vector (producing exactly the bytes of `vec![0.0; n]`) and
//! [`take_f32`] returns a zero-length vector whose contents are only ever
//! `extend`ed with freshly computed values.
//!
//! The pool is thread-local (the tape itself is `!Send`), so no locking is
//! involved; each serve worker warms its own pool.

use std::cell::RefCell;

/// Number of power-of-two size classes. Class `c` holds vectors whose
/// capacity lies in `[2^c, 2^(c+1))`; class 27 covers 512 MiB of `f32`s,
/// far beyond anything the workloads allocate.
const NUM_CLASSES: usize = 28;

/// Maximum retained vectors per size class (per thread). A batched serve
/// context retires a couple thousand buffers at once when it clears —
/// heavily concentrated in the tiny classes (per-chain scalars and `[k]`
/// vectors land together) — and any overflow here turns into one allocator
/// round-trip per step, so the cap is sized well above what one tape or one
/// serve batch of the model shapes retires at once. The byte budget below
/// is the real memory bound.
const MAX_PER_CLASS: usize = 4096;

/// Total retained bytes per element-type pool (per thread). Bounds the pool
/// the way the old `matmul_into_bt` thread-local `PACK` scratch was not.
const MAX_POOL_BYTES: usize = 64 << 20;

struct Pool<T> {
    classes: Vec<Vec<Vec<T>>>,
    bytes: usize,
    enabled: bool,
    hits: u64,
    misses: u64,
}

impl<T: Clone + Default> Pool<T> {
    fn new() -> Self {
        Pool {
            classes: (0..NUM_CLASSES).map(|_| Vec::new()).collect(),
            bytes: 0,
            enabled: true,
            hits: 0,
            misses: 0,
        }
    }

    /// Class that can serve requests of length `n`: every vector stored in
    /// class `c` has capacity `>= 2^c`, so serving from `ceil(log2(n))`
    /// guarantees no reallocation on `resize`/`extend` up to `n` elements.
    fn class_for_request(n: usize) -> usize {
        (usize::BITS - (n - 1).leading_zeros()) as usize
    }

    /// Class a vector of capacity `cap` is stored in: `floor(log2(cap))`.
    fn class_for_capacity(cap: usize) -> usize {
        (usize::BITS - 1 - cap.leading_zeros()) as usize
    }

    /// A vector with `len == 0` and `capacity >= n` (pooled or fresh).
    fn take(&mut self, n: usize) -> Vec<T> {
        if n == 0 {
            return Vec::new();
        }
        if self.enabled {
            let class = Self::class_for_request(n);
            if class < NUM_CLASSES {
                if let Some(mut v) = self.classes[class].pop() {
                    self.bytes -= v.capacity() * std::mem::size_of::<T>();
                    self.hits += 1;
                    v.clear();
                    return v;
                }
                self.misses += 1;
                // Allocate the full class width so the buffer lands back in
                // `class` on recycle and serves every future request of this
                // size without reallocating.
                return Vec::with_capacity(n.next_power_of_two());
            }
        }
        self.misses += 1;
        Vec::with_capacity(n)
    }

    fn recycle(&mut self, v: Vec<T>) {
        let cap = v.capacity();
        if !self.enabled || cap == 0 {
            return;
        }
        let class = Self::class_for_capacity(cap);
        let bytes = cap * std::mem::size_of::<T>();
        if class >= NUM_CLASSES
            || self.classes[class].len() >= MAX_PER_CLASS
            || self.bytes + bytes > MAX_POOL_BYTES
        {
            return; // over budget: let the allocator have it back
        }
        self.bytes += bytes;
        self.classes[class].push(v);
    }
}

thread_local! {
    static F32_POOL: RefCell<Pool<f32>> = RefCell::new(Pool::new());
    static USIZE_POOL: RefCell<Pool<usize>> = RefCell::new(Pool::new());
}

/// Pool hit/miss counters for one thread (used by benches and the zero-alloc
/// gate to prove the steady state never touches the allocator).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Requests served from a free-list.
    pub hits: u64,
    /// Requests that had to allocate (warm-up or pool disabled).
    pub misses: u64,
    /// Bytes currently retained by the `f32` pool.
    pub retained_bytes: usize,
}

/// Snapshot of this thread's `f32`-pool counters.
pub fn stats() -> PoolStats {
    F32_POOL.with(|p| {
        let p = p.borrow();
        PoolStats {
            hits: p.hits,
            misses: p.misses,
            retained_bytes: p.bytes,
        }
    })
}

/// Resets this thread's hit/miss counters (retained buffers are kept).
pub fn reset_stats() {
    F32_POOL.with(|p| {
        let mut p = p.borrow_mut();
        p.hits = 0;
        p.misses = 0;
    });
    USIZE_POOL.with(|p| {
        let mut p = p.borrow_mut();
        p.hits = 0;
        p.misses = 0;
    });
}

/// Enables or disables pooling on this thread, returning the previous state.
///
/// While disabled, takes allocate fresh exact-size vectors and recycles drop
/// their argument — the pre-pool behaviour. Tests use this to prove the
/// pooled and fresh paths are bit-identical; the bench uses it for the
/// unpooled `train_step` baseline arm.
pub fn set_enabled(enabled: bool) -> bool {
    let prev_f = F32_POOL.with(|p| {
        let mut p = p.borrow_mut();
        std::mem::replace(&mut p.enabled, enabled)
    });
    USIZE_POOL.with(|p| p.borrow_mut().enabled = enabled);
    prev_f
}

/// An empty `Vec<f32>` with capacity for at least `n` elements. Extend it
/// with exactly the values you would have collected into a fresh vector.
pub fn take_f32(n: usize) -> Vec<f32> {
    F32_POOL.with(|p| p.borrow_mut().take(n))
}

/// A `Vec<f32>` of length `n` holding all zeros — bitwise identical to
/// `vec![0.0f32; n]`.
pub fn take_f32_zeroed(n: usize) -> Vec<f32> {
    let mut v = take_f32(n);
    v.resize(n, 0.0);
    v
}

/// A `Vec<f32>` of length `n` filled with `x` — bitwise `vec![x; n]`.
pub fn take_f32_filled(n: usize, x: f32) -> Vec<f32> {
    let mut v = take_f32(n);
    v.resize(n, x);
    v
}

/// Returns a buffer to this thread's pool. Called by `Tensor::drop`; call it
/// directly for raw scratch vectors obtained from [`take_f32`].
pub fn recycle_f32(v: Vec<f32>) {
    // `try_with` so drops during thread teardown degrade to a plain free.
    let _ = F32_POOL.try_with(|p| p.borrow_mut().recycle(v));
}

/// An empty `Vec<usize>` with capacity for at least `n` elements.
pub fn take_usize(n: usize) -> Vec<usize> {
    USIZE_POOL.with(|p| p.borrow_mut().take(n))
}

/// Returns an index buffer to this thread's pool.
pub fn recycle_usize(v: Vec<usize>) {
    let _ = USIZE_POOL.try_with(|p| p.borrow_mut().recycle(v));
}

/// RAII scratch buffer of `f32`s: recycles itself into the pool on drop.
/// Used for kernel packing panels and backward-pass scratch that is not a
/// [`crate::Tensor`] (tensors recycle through their own `Drop`).
#[derive(Debug, Default)]
pub struct ScratchF32(pub Vec<f32>);

impl ScratchF32 {
    /// Empty scratch with capacity for at least `n` elements.
    pub fn with_capacity(n: usize) -> Self {
        ScratchF32(take_f32(n))
    }

    /// Zero-filled scratch of length `n` (bitwise `vec![0.0; n]`).
    pub fn zeroed(n: usize) -> Self {
        ScratchF32(take_f32_zeroed(n))
    }
}

impl Drop for ScratchF32 {
    fn drop(&mut self) {
        recycle_f32(std::mem::take(&mut self.0));
    }
}

impl std::ops::Deref for ScratchF32 {
    type Target = Vec<f32>;
    fn deref(&self) -> &Vec<f32> {
        &self.0
    }
}

impl std::ops::DerefMut for ScratchF32 {
    fn deref_mut(&mut self) -> &mut Vec<f32> {
        &mut self.0
    }
}

/// RAII scratch buffer of `usize`s (chain/row indices, argmax results, …).
#[derive(Debug, Default)]
pub struct ScratchUsize(pub Vec<usize>);

impl ScratchUsize {
    /// Empty scratch with capacity for at least `n` elements.
    pub fn with_capacity(n: usize) -> Self {
        ScratchUsize(take_usize(n))
    }

    /// Pooled copy of a slice.
    pub fn copy_of(xs: &[usize]) -> Self {
        let mut v = take_usize(xs.len());
        v.extend_from_slice(xs);
        ScratchUsize(v)
    }
}

impl Drop for ScratchUsize {
    fn drop(&mut self) {
        recycle_usize(std::mem::take(&mut self.0));
    }
}

impl std::ops::Deref for ScratchUsize {
    type Target = Vec<usize>;
    fn deref(&self) -> &Vec<usize> {
        &self.0
    }
}

impl std::ops::DerefMut for ScratchUsize {
    fn deref_mut(&mut self) -> &mut Vec<usize> {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_zeroed_matches_fresh_vec_bitwise() {
        // Dirty the pool with a recognizable pattern, then prove a zeroed
        // take cannot observe it.
        let mut v = take_f32(100);
        v.resize(100, f32::NAN);
        recycle_f32(v);
        let z = take_f32_zeroed(100);
        let fresh = vec![0.0f32; 100];
        assert_eq!(z.len(), fresh.len());
        for (a, b) in z.iter().zip(&fresh) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn steady_state_hits_after_warm_up() {
        reset_stats();
        for _ in 0..3 {
            let v = take_f32_zeroed(1000);
            recycle_f32(v);
        }
        let s = stats();
        assert!(s.hits >= 2, "expected pool hits, got {s:?}");
        assert!(s.misses <= 1, "expected one warm-up miss, got {s:?}");
    }

    #[test]
    fn served_capacity_always_fits_request() {
        // A recycled odd-capacity vector must never be served to a request
        // it cannot hold without reallocating.
        recycle_f32(Vec::with_capacity(100)); // class 6 (64..128)
        let v = take_f32(100); // requests class 7
        assert!(v.capacity() >= 100);
        let w = take_f32(65); // class 7 again; the cap-100 vec is in class 6
        assert!(w.capacity() >= 65);
    }

    #[test]
    fn disabled_pool_allocates_fresh() {
        let prev = set_enabled(false);
        let v = take_f32_zeroed(64);
        recycle_f32(v);
        reset_stats();
        let v = take_f32_zeroed(64);
        assert_eq!(stats().hits, 0);
        drop(v);
        set_enabled(prev);
    }

    #[test]
    fn scratch_recycles_on_drop() {
        let prev = set_enabled(true);
        {
            let mut s = ScratchF32::with_capacity(512);
            s.push(1.0);
        }
        reset_stats();
        let s2 = ScratchF32::with_capacity(512);
        assert_eq!(stats().hits, 1, "scratch drop did not recycle");
        drop(s2);
        set_enabled(prev);
    }
}
