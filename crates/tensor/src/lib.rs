#![warn(missing_docs)]

//! # cf-tensor
//!
//! A minimal, dependency-light CPU tensor library with reverse-mode autodiff,
//! built from scratch as the neural substrate for the ChainsFormer
//! reproduction (no mature deep-learning stack exists in offline Rust).
//!
//! Pieces:
//! - [`tensor::Tensor`] — dense row-major `f32` storage with matmul/bmm
//!   kernels usable outside autodiff;
//! - [`tape::Tape`] / [`tape::Var`] — an arena-based autodiff tape: every op
//!   appends a node, and a single reverse scan backpropagates (see
//!   [`crate::ops`] for the op set);
//! - [`params::ParamStore`] — flat parameter arena shared by layers and
//!   optimizers;
//! - [`nn`] — Linear/MLP/Embedding/LayerNorm, multi-head attention,
//!   encoder-only Transformers, and an LSTM for the paper's ablation;
//! - [`optim`] — Adam (paper default) and SGD with global-norm clipping;
//! - [`pool`] — thread-local size-bucketed buffer pool behind every tensor
//!   and scratch allocation (zero steady-state heap traffic per step);
//! - `simd` (internal) — runtime AVX2/AVX-512 dispatch for the hot kernels,
//!   bitwise-identical across tiers because no fast-math is ever enabled;
//! - [`gradcheck`] — finite-difference gradient checking used across tests.
//!
//! ## Example
//! ```
//! use cf_tensor::{Tape, Tensor, ParamStore, nn::{Mlp, Activation}, optim::Adam};
//! use cf_rand::SeedableRng;
//!
//! let mut rng = cf_rand::rngs::StdRng::seed_from_u64(0);
//! let mut ps = ParamStore::new();
//! let mlp = Mlp::new(&mut ps, "f", &[2, 16, 1], Activation::Tanh, &mut rng);
//! let mut opt = Adam::new(1e-2);
//! for _ in 0..10 {
//!     let mut tape = Tape::new();
//!     let x = tape.leaf(Tensor::new([4, 2], vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0]));
//!     let pred = mlp.forward(&mut tape, &ps, x);
//!     let loss = tape.mse_loss(pred, &Tensor::new([4, 1], vec![0.0, 1.0, 1.0, 0.0]));
//!     let grads = tape.backward(loss, ps.len());
//!     opt.step(&mut ps, &grads);
//! }
//! assert!(ps.all_finite());
//! ```

pub mod gradcheck;
pub mod infer;
pub mod init;
pub mod nn;
pub mod ops;
pub mod optim;
pub mod params;
pub mod pool;
pub mod quant;
pub mod serialize;
pub mod shape;
pub(crate) mod simd;
pub mod tape;
pub mod tensor;
#[cfg(test)]
mod test_alloc;

pub use infer::{Forward, ForwardArena, InferCtx};
pub use init::Init;
pub use optim::AdamSnapshot;
pub use params::{ParamId, ParamStore};
pub use quant::{QuantInferCtx, QuantizedParamStore, QuantizedTensor};
pub use serialize::{
    crc32, load_checkpoint, load_params, save_checkpoint, save_checkpoint_atomic, save_params,
    save_params_atomic, CheckpointError, TrainState,
};
pub use shape::Shape;
pub use tape::{GradStore, Tape, Var};
pub use tensor::{matmul_into, matmul_into_at, matmul_into_bt, Tensor};
