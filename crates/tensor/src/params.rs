//! Named parameter storage shared by layers and optimizers.

use crate::init::Init;
use crate::tensor::Tensor;
use cf_rand::Rng;

/// Handle to a parameter inside a [`ParamStore`]. Cheap to copy.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Hash)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// The raw index of this parameter in its store.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// Flat arena of learnable tensors.
///
/// Layers allocate parameters here at construction time and hold only
/// [`ParamId`]s; optimizers mutate the store in place after each backward
/// pass. Keeping the tensors in one arena makes checkpointing, counting and
/// optimizer state trivial.
#[derive(Default, Debug, Clone)]
pub struct ParamStore {
    tensors: Vec<Tensor>,
    names: Vec<String>,
}

impl ParamStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter with an explicit value.
    pub fn add(&mut self, name: impl Into<String>, tensor: Tensor) -> ParamId {
        self.tensors.push(tensor);
        self.names.push(name.into());
        ParamId(self.tensors.len() - 1)
    }

    /// Registers a parameter drawn from an initializer.
    pub fn add_init(
        &mut self,
        name: impl Into<String>,
        shape: impl Into<crate::shape::Shape>,
        init: Init,
        rng: &mut impl Rng,
    ) -> ParamId {
        self.add(name, init.sample(shape, rng))
    }

    /// Borrow of a parameter's tensor.
    pub fn get(&self, id: ParamId) -> &Tensor {
        &self.tensors[id.0]
    }

    /// Mutable borrow of a parameter's tensor (used by optimizers).
    pub fn get_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.tensors[id.0]
    }

    /// The name a parameter was registered under.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Number of registered parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.tensors.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.tensors.is_empty()
    }

    /// Total number of learnable scalars.
    pub fn num_scalars(&self) -> usize {
        self.tensors.iter().map(Tensor::numel).sum()
    }

    /// Iterates over `(id, name, tensor)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &str, &Tensor)> {
        self.tensors
            .iter()
            .zip(&self.names)
            .enumerate()
            .map(|(i, (t, n))| (ParamId(i), n.as_str(), t))
    }

    /// True when every parameter is finite — a cheap NaN tripwire for tests.
    pub fn all_finite(&self) -> bool {
        self.tensors.iter().all(Tensor::all_finite)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_rand::rngs::StdRng;
    use cf_rand::SeedableRng;

    #[test]
    fn add_get_roundtrip() {
        let mut ps = ParamStore::new();
        let id = ps.add("w", Tensor::ones([2, 2]));
        assert_eq!(ps.get(id).sum(), 4.0);
        assert_eq!(ps.name(id), "w");
        assert_eq!(ps.len(), 1);
        assert_eq!(ps.num_scalars(), 4);
    }

    #[test]
    fn add_init_uses_shape() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut ps = ParamStore::new();
        let id = ps.add_init("w", [3, 5], Init::XavierUniform, &mut rng);
        assert_eq!(ps.get(id).shape().as_matrix(), (3, 5));
        assert!(ps.all_finite());
    }

    #[test]
    fn iter_yields_all() {
        let mut ps = ParamStore::new();
        ps.add("a", Tensor::zeros([1]));
        ps.add("b", Tensor::zeros([2]));
        let names: Vec<_> = ps.iter().map(|(_, n, _)| n.to_string()).collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}
