//! Systematic finite-difference gradient checks over the full op set, plus
//! property-based checks of tensor algebra. These are the tests that keep
//! the hand-written backward rules honest.

use cf_check::prelude::*;
use cf_rand::rngs::StdRng;
use cf_rand::SeedableRng;
use cf_tensor::gradcheck::assert_grad_close;
use cf_tensor::nn::MultiHeadAttention;
use cf_tensor::{ParamStore, Tape, Tensor, Var};

const EPS: f32 = 1e-2;
const TOL: f32 = 3e-2;

fn input(n: usize) -> Tensor {
    Tensor::new(
        [n],
        (0..n)
            .map(|i| 0.15 * (i as f32 + 1.0) * if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect(),
    )
}

fn check(n: usize, f: impl Fn(&mut Tape, Var) -> Var) {
    assert_grad_close(&input(n), EPS, TOL, f);
}

#[test]
fn grad_elementwise_ops() {
    check(6, |t, x| {
        let y = t.mul(x, x);
        t.sum_all(y)
    });
    check(6, |t, x| {
        let y = t.neg(x);
        let z = t.add(x, y); // zero, but exercises add/neg
        let w = t.add_scalar(z, 1.0);
        let m = t.mul(w, x);
        t.mean_all(m)
    });
    check(4, |t, x| {
        let c = t.constant(Tensor::vector(&[2.0, 3.0, 4.0, 5.0]));
        let y = t.div(x, c);
        t.sum_all(y)
    });
}

#[test]
fn grad_activations() {
    check(5, |t, x| {
        let y = t.tanh(x);
        t.sum_all(y)
    });
    check(5, |t, x| {
        let y = t.sigmoid(x);
        t.sum_all(y)
    });
    check(5, |t, x| {
        let y = t.gelu(x);
        t.sum_all(y)
    });
    check(5, |t, x| {
        let y = t.exp(x);
        t.mean_all(y)
    });
    // relu is kinked at 0 — inputs avoid it by construction.
    check(5, |t, x| {
        let y = t.relu(x);
        t.sum_all(y)
    });
}

#[test]
fn grad_matmul_chain() {
    check(12, |t, x| {
        let m = t.reshape(x, [3, 4]);
        let mt = t.transpose(m);
        let p = t.matmul(m, mt);
        t.sum_all(p)
    });
}

#[test]
fn grad_bmm() {
    check(12, |t, x| {
        let m = t.reshape(x, [2, 2, 3]);
        let mt = t.transpose_batch(m);
        let p = t.bmm(m, mt);
        t.mean_all(p)
    });
}

#[test]
fn grad_transpose_fused_matmul_variants() {
    // matmul_at: C = AᵀB with A stored [k,m].
    check(12, |t, x| {
        let m = t.reshape(x, [3, 4]);
        let b = t.constant(Tensor::new(
            [3, 2],
            (0..6).map(|i| 0.2 * i as f32 - 0.5).collect(),
        ));
        let p = t.matmul_at(m, b);
        t.sum_all(p)
    });
    // matmul_bt: C = ABᵀ with B stored [n,k].
    check(12, |t, x| {
        let m = t.reshape(x, [3, 4]);
        let b = t.constant(Tensor::new(
            [2, 4],
            (0..8).map(|i| 0.3 - 0.1 * i as f32).collect(),
        ));
        let p = t.matmul_bt(m, b);
        t.mean_all(p)
    });
    // Gradient wrt the transposed operand as well: x feeds both sides.
    check(12, |t, x| {
        let m = t.reshape(x, [3, 4]);
        let gram = t.matmul_at(m, m); // [4,4] = MᵀM
        t.sum_all(gram)
    });
}

#[test]
fn grad_bmm_bt() {
    check(12, |t, x| {
        let m = t.reshape(x, [2, 2, 3]);
        let p = t.bmm_bt(m, m); // [2,2,2] batched Gram
        t.mean_all(p)
    });
}

#[test]
fn grad_fused_attention_core() {
    // Gradient wrt q, k and v of the fused kernel itself (x feeds all
    // three), with and without an additive mask.
    check(12, |t, x| {
        let m = t.reshape(x, [1, 3, 4]);
        let y = t.fused_attention(m, m, m, 2, 0.5, None);
        t.mean_all(y)
    });
    check(12, |t, x| {
        let m = t.reshape(x, [1, 3, 4]);
        let mask = Tensor::new(
            [1, 3, 3],
            vec![0.0, 0.0, -1e9, 0.0, 0.0, -1e9, 0.0, 0.0, -1e9],
        );
        let y = t.fused_attention(m, m, m, 2, 0.5, Some(&mask));
        t.mean_all(y)
    });
}

#[test]
fn grad_softmax_and_layernorm() {
    check(6, |t, x| {
        let m = t.reshape(x, [2, 3]);
        let s = t.softmax_last(m);
        let w = t.constant(Tensor::new([2, 3], vec![1.0, -2.0, 0.5, 0.7, 0.1, -0.4]));
        let p = t.mul(s, w);
        t.sum_all(p)
    });
    check(8, |t, x| {
        let m = t.reshape(x, [2, 4]);
        let y = t.layer_norm_last(m, 1e-5);
        let w = t.constant(Tensor::new(
            [2, 4],
            (0..8).map(|i| (i as f32) * 0.3 - 1.0).collect(),
        ));
        let p = t.mul(y, w);
        t.sum_all(p)
    });
}

#[test]
fn grad_shape_ops() {
    check(8, |t, x| {
        let m = t.reshape(x, [2, 4]);
        let left = t.slice_last(m, 0, 2);
        let right = t.slice_last(m, 2, 2);
        let swapped = t.concat_last(&[right, left]);
        let sel = t.select_rows(swapped, &[1, 1, 0]);
        t.mean_all(sel)
    });
    check(6, |t, x| {
        let m = t.reshape(x, [3, 2]);
        let r = t.row(m, 1);
        let s = t.stack_rows(&[r, r]);
        t.sum_all(s)
    });
}

#[test]
fn grad_broadcast_ops() {
    check(6, |t, x| {
        let m = t.reshape(x, [2, 3]);
        let b = t.constant(Tensor::vector(&[0.5, -0.2, 0.9]));
        let y = t.add_bias(m, b);
        let z = t.mul_bcast_row(y, b);
        t.sum_all(z)
    });
    check(6, |t, x| {
        let m = t.reshape(x, [2, 3]);
        let w = t.constant(Tensor::vector(&[2.0, -1.0]));
        let y = t.scale_rows(m, w);
        t.sum_all(y)
    });
    // grad wrt the scale weights themselves
    check(2, |t, w| {
        let m = t.constant(Tensor::new(
            [2, 3],
            (0..6).map(|i| i as f32 * 0.2).collect(),
        ));
        let y = t.scale_rows(m, w);
        t.sum_all(y)
    });
}

#[test]
fn grad_reductions() {
    check(12, |t, x| {
        let m = t.reshape(x, [2, 3, 2]);
        let s = t.sum_dim1(m);
        let e = t.exp(s);
        t.mean_all(e)
    });
}

#[test]
fn grad_scalar_and_const_ops() {
    check(6, |t, x| {
        let y = t.mul_scalar(x, -1.7);
        let z = t.sub(x, y);
        t.sum_all(z)
    });
    check(6, |t, x| {
        let c = Tensor::vector(&[0.3, -0.1, 0.7, 0.2, -0.5, 0.4]);
        let y = t.add_const(x, &c);
        let sq = t.mul(y, y);
        t.mean_all(sq)
    });
}

#[test]
fn grad_extra_activations() {
    check(5, |t, x| {
        let y = t.leaky_relu(x, 0.01);
        t.sum_all(y)
    });
    check(5, |t, x| {
        let y = t.softplus(x);
        t.sum_all(y)
    });
    // ln needs positive inputs: shift by +2 keeps everything >= 1.1.
    check(6, |t, x| {
        let p = t.add_scalar(x, 2.0);
        let y = t.ln(p);
        t.sum_all(y)
    });
    // clamp kinks at the bounds — input(6) (±0.15·k) never lands on ±0.5,
    // so both clipped and passed-through elements are exercised away from
    // the kink.
    check(6, |t, x| {
        let y = t.clamp(x, -0.5, 0.5);
        let sq = t.mul(y, y);
        t.sum_all(sq)
    });
}

#[test]
fn grad_dropout_with_fixed_seed() {
    // The mask is drawn from the rng at record time; re-seeding inside the
    // closure keeps every finite-difference evaluation on the same mask.
    check(8, |t, x| {
        let mut rng = StdRng::seed_from_u64(99);
        let y = t.dropout(x, 0.5, &mut rng);
        t.sum_all(y)
    });
    // p == 0 is the identity fast path.
    check(4, |t, x| {
        let mut rng = StdRng::seed_from_u64(99);
        let y = t.dropout(x, 0.0, &mut rng);
        t.sum_all(y)
    });
}

#[test]
fn grad_log_softmax_and_max() {
    check(6, |t, x| {
        let m = t.reshape(x, [2, 3]);
        let s = t.log_softmax_last(m);
        let w = t.constant(Tensor::new([2, 3], vec![0.9, -1.2, 0.4, -0.3, 0.8, 0.1]));
        let p = t.mul(s, w);
        t.sum_all(p)
    });
    // max_last kinks where the arg-max changes; input(6)'s per-row gaps
    // (≥ 0.3) dwarf the probe eps so the arg-max is stable.
    check(6, |t, x| {
        let m = t.reshape(x, [2, 3]);
        let y = t.max_last(m);
        t.sum_all(y)
    });
}

#[test]
fn grad_concat_rows() {
    check(8, |t, x| {
        let m = t.reshape(x, [2, 4]);
        let top = t.select_rows(m, &[0]);
        let bot = t.select_rows(m, &[1]);
        let stacked = t.concat_rows(&[bot, top, bot]);
        let sq = t.mul(stacked, stacked);
        t.mean_all(sq)
    });
}

#[test]
fn grad_attention_forward() {
    // Gradient wrt the input of a full multi-head self-attention block
    // ([B=1, T=3, d=4], 2 heads). Projections are rebuilt from the same
    // seed every evaluation, so the closure stays deterministic.
    let n_params = {
        let mut rng = StdRng::seed_from_u64(7);
        let mut ps = ParamStore::new();
        MultiHeadAttention::new(&mut ps, "gc", 4, 2, &mut rng);
        ps.len()
    };
    cf_tensor::gradcheck::assert_grad_close_with_params(&input(12), EPS, TOL, n_params, |t, x| {
        let mut rng = StdRng::seed_from_u64(7);
        let mut ps = ParamStore::new();
        let mha = MultiHeadAttention::new(&mut ps, "gc", 4, 2, &mut rng);
        let xs = t.reshape(x, [1, 3, 4]);
        let y = mha.forward(t, &ps, xs, None);
        t.mean_all(y)
    });
    // Masked variant: the padded key position must not receive gradient
    // through the attention probabilities.
    cf_tensor::gradcheck::assert_grad_close_with_params(&input(12), EPS, TOL, n_params, |t, x| {
        let mut rng = StdRng::seed_from_u64(7);
        let mut ps = ParamStore::new();
        let mha = MultiHeadAttention::new(&mut ps, "gc", 4, 2, &mut rng);
        let xs = t.reshape(x, [1, 3, 4]);
        let mask = vec![vec![true, true, false]];
        let y = mha.forward(t, &ps, xs, Some(cf_tensor::nn::KeyMask::Rows(&mask)));
        t.mean_all(y)
    });
}

#[test]
fn grad_losses() {
    let target = Tensor::vector(&[0.1, -0.3, 0.8, 0.05]);
    check(4, |t, x| t.mse_loss(x, &target));
    check(4, |t, x| t.huber_loss(x, &target, 0.5));
    // L1 subgradient: exact away from kinks (inputs differ from target).
    check(4, |t, x| t.l1_loss(x, &target));
}

property! {
    #![config(cases = 48)]

    /// (A·B)ᵀ = Bᵀ·Aᵀ for arbitrary small matrices.
    #[test]
    fn matmul_transpose_identity(
        a in vec(-2f32..2.0, 6),
        b in vec(-2f32..2.0, 6),
    ) {
        let ma = Tensor::new([2, 3], a);
        let mb = Tensor::new([3, 2], b);
        let lhs = ma.matmul(&mb).transpose();
        let rhs = mb.transpose().matmul(&ma.transpose());
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            check_assert!((x - y).abs() < 1e-4);
        }
    }

    /// Matmul distributes over addition: A(B + C) = AB + AC.
    #[test]
    fn matmul_distributes(
        a in vec(-2f32..2.0, 4),
        b in vec(-2f32..2.0, 4),
        c in vec(-2f32..2.0, 4),
    ) {
        let ma = Tensor::new([2, 2], a);
        let mb = Tensor::new([2, 2], b);
        let mc = Tensor::new([2, 2], c);
        let sum = mb.zip(&mc, |x, y| x + y);
        let lhs = ma.matmul(&sum);
        let rhs_a = ma.matmul(&mb);
        let rhs_b = ma.matmul(&mc);
        for ((l, x), y) in lhs.data().iter().zip(rhs_a.data()).zip(rhs_b.data()) {
            check_assert!((l - (x + y)).abs() < 1e-4);
        }
    }

    /// backward() of sum_all always returns all-ones gradients.
    #[test]
    fn sum_grad_is_ones(data in vec(-10f32..10.0, 1..20)) {
        let mut t = Tape::new();
        let x = t.leaf(Tensor::new([data.len()], data));
        let s = t.sum_all(x);
        let g = t.backward(s, 0);
        check_assert!(g.grad(x).unwrap().data().iter().all(|&v| v == 1.0));
    }

    /// Smooth activations pass gradcheck on arbitrary inputs, not just the
    /// fixed probe vector.
    #[test]
    fn grad_smooth_activations_random_inputs(data in vec(-2f32..2.0, 4)) {
        let x = Tensor::new([4], data);
        assert_grad_close(&x, EPS, TOL, |t, v| {
            let a = t.tanh(v);
            let b = t.sigmoid(a);
            let c = t.gelu(b);
            let d = t.softplus(c);
            t.sum_all(d)
        });
    }

    /// Softmax/log-softmax/layer-norm gradients hold on random 2×3 inputs.
    #[test]
    fn grad_rowwise_ops_random_inputs(data in vec(-3f32..3.0, 6), w in vec(-1f32..1.0, 6)) {
        let x = Tensor::new([6], data);
        let weights = Tensor::new([2, 3], w);
        assert_grad_close(&x, EPS, TOL, |t, v| {
            let m = t.reshape(v, [2, 3]);
            let s = t.softmax_last(m);
            let l = t.log_softmax_last(m);
            let n = t.layer_norm_last(m, 1e-5);
            let wc = t.constant(weights.clone());
            let sw = t.mul(s, wc);
            let lw = t.mul(l, wc);
            let sum1 = t.sum_all(sw);
            let sum2 = t.sum_all(lw);
            let sum3 = t.mean_all(n);
            let partial = t.add(sum1, sum2);
            t.add(partial, sum3)
        });
    }

    /// Kinked ops (relu family, clamp, max) pass gradcheck whenever the
    /// input sits safely away from their kink points.
    #[test]
    fn grad_kinked_ops_away_from_kinks(data in vec(-2f32..2.0, 6)) {
        // Keep every coordinate clear of 0 (relu kink), ±1 (clamp bounds)
        // and keep the per-row max separated (max_last tie).
        let margin = 0.05;
        check_assume!(data.iter().all(|v| v.abs() > margin && (v.abs() - 1.0).abs() > margin));
        let mut sorted = [data[0], data[1], data[2]];
        sorted.sort_by(|a, b| a.total_cmp(b));
        check_assume!(sorted[2] - sorted[1] > margin);
        let mut sorted = [data[3], data[4], data[5]];
        sorted.sort_by(|a, b| a.total_cmp(b));
        check_assume!(sorted[2] - sorted[1] > margin);
        let x = Tensor::new([6], data);
        assert_grad_close(&x, EPS, TOL, |t, v| {
            let r = t.relu(v);
            let lr = t.leaky_relu(v, 0.05);
            let cl = t.clamp(v, -1.0, 1.0);
            let m = t.reshape(v, [2, 3]);
            let mx = t.max_last(m);
            let s1 = t.sum_all(r);
            let s2 = t.sum_all(lr);
            let s3 = t.sum_all(cl);
            let s4 = t.sum_all(mx);
            let p1 = t.add(s1, s2);
            let p2 = t.add(s3, s4);
            t.add(p1, p2)
        });
    }

    /// Softmax is invariant to constant logit shifts.
    #[test]
    fn softmax_shift_invariance(data in vec(-20f32..20.0, 2..10), shift in -50f32..50.0) {
        let mut t = Tape::new();
        let n = data.len();
        let x1 = t.leaf(Tensor::new([n], data.clone()));
        let y1 = t.softmax_last(x1);
        let x2 = t.leaf(Tensor::new([n], data.iter().map(|v| v + shift).collect::<Vec<_>>()));
        let y2 = t.softmax_last(x2);
        for (a, b) in t.value(y1).data().iter().zip(t.value(y2).data()) {
            check_assert!((a - b).abs() < 1e-4);
        }
    }
}
