//! Systematic finite-difference gradient checks over the full op set, plus
//! property-based checks of tensor algebra. These are the tests that keep
//! the hand-written backward rules honest.

use cf_tensor::gradcheck::assert_grad_close;
use cf_tensor::{Tape, Tensor, Var};
use proptest::prelude::*;

const EPS: f32 = 1e-2;
const TOL: f32 = 3e-2;

fn input(n: usize) -> Tensor {
    Tensor::new(
        [n],
        (0..n)
            .map(|i| 0.15 * (i as f32 + 1.0) * if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect(),
    )
}

fn check(n: usize, f: impl Fn(&mut Tape, Var) -> Var) {
    assert_grad_close(&input(n), EPS, TOL, f);
}

#[test]
fn grad_elementwise_ops() {
    check(6, |t, x| {
        let y = t.mul(x, x);
        t.sum_all(y)
    });
    check(6, |t, x| {
        let y = t.neg(x);
        let z = t.add(x, y); // zero, but exercises add/neg
        let w = t.add_scalar(z, 1.0);
        let m = t.mul(w, x);
        t.mean_all(m)
    });
    check(4, |t, x| {
        let c = t.constant(Tensor::vector(&[2.0, 3.0, 4.0, 5.0]));
        let y = t.div(x, c);
        t.sum_all(y)
    });
}

#[test]
fn grad_activations() {
    check(5, |t, x| {
        let y = t.tanh(x);
        t.sum_all(y)
    });
    check(5, |t, x| {
        let y = t.sigmoid(x);
        t.sum_all(y)
    });
    check(5, |t, x| {
        let y = t.gelu(x);
        t.sum_all(y)
    });
    check(5, |t, x| {
        let y = t.exp(x);
        t.mean_all(y)
    });
    // relu is kinked at 0 — inputs avoid it by construction.
    check(5, |t, x| {
        let y = t.relu(x);
        t.sum_all(y)
    });
}

#[test]
fn grad_matmul_chain() {
    check(12, |t, x| {
        let m = t.reshape(x, [3, 4]);
        let mt = t.transpose(m);
        let p = t.matmul(m, mt);
        t.sum_all(p)
    });
}

#[test]
fn grad_bmm() {
    check(12, |t, x| {
        let m = t.reshape(x, [2, 2, 3]);
        let mt = t.transpose_batch(m);
        let p = t.bmm(m, mt);
        t.mean_all(p)
    });
}

#[test]
fn grad_softmax_and_layernorm() {
    check(6, |t, x| {
        let m = t.reshape(x, [2, 3]);
        let s = t.softmax_last(m);
        let w = t.constant(Tensor::new([2, 3], vec![1.0, -2.0, 0.5, 0.7, 0.1, -0.4]));
        let p = t.mul(s, w);
        t.sum_all(p)
    });
    check(8, |t, x| {
        let m = t.reshape(x, [2, 4]);
        let y = t.layer_norm_last(m, 1e-5);
        let w = t.constant(Tensor::new(
            [2, 4],
            (0..8).map(|i| (i as f32) * 0.3 - 1.0).collect(),
        ));
        let p = t.mul(y, w);
        t.sum_all(p)
    });
}

#[test]
fn grad_shape_ops() {
    check(8, |t, x| {
        let m = t.reshape(x, [2, 4]);
        let left = t.slice_last(m, 0, 2);
        let right = t.slice_last(m, 2, 2);
        let swapped = t.concat_last(&[right, left]);
        let sel = t.select_rows(swapped, &[1, 1, 0]);
        t.mean_all(sel)
    });
    check(6, |t, x| {
        let m = t.reshape(x, [3, 2]);
        let r = t.row(m, 1);
        let s = t.stack_rows(&[r, r]);
        t.sum_all(s)
    });
}

#[test]
fn grad_broadcast_ops() {
    check(6, |t, x| {
        let m = t.reshape(x, [2, 3]);
        let b = t.constant(Tensor::vector(&[0.5, -0.2, 0.9]));
        let y = t.add_bias(m, b);
        let z = t.mul_bcast_row(y, b);
        t.sum_all(z)
    });
    check(6, |t, x| {
        let m = t.reshape(x, [2, 3]);
        let w = t.constant(Tensor::vector(&[2.0, -1.0]));
        let y = t.scale_rows(m, w);
        t.sum_all(y)
    });
    // grad wrt the scale weights themselves
    check(2, |t, w| {
        let m = t.constant(Tensor::new(
            [2, 3],
            (0..6).map(|i| i as f32 * 0.2).collect(),
        ));
        let y = t.scale_rows(m, w);
        t.sum_all(y)
    });
}

#[test]
fn grad_reductions() {
    check(12, |t, x| {
        let m = t.reshape(x, [2, 3, 2]);
        let s = t.sum_dim1(m);
        let e = t.exp(s);
        t.mean_all(e)
    });
}

#[test]
fn grad_losses() {
    let target = Tensor::vector(&[0.1, -0.3, 0.8, 0.05]);
    check(4, |t, x| t.mse_loss(x, &target));
    check(4, |t, x| t.huber_loss(x, &target, 0.5));
    // L1 subgradient: exact away from kinks (inputs differ from target).
    check(4, |t, x| t.l1_loss(x, &target));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// (A·B)ᵀ = Bᵀ·Aᵀ for arbitrary small matrices.
    #[test]
    fn matmul_transpose_identity(
        a in prop::collection::vec(-2f32..2.0, 6),
        b in prop::collection::vec(-2f32..2.0, 6),
    ) {
        let ma = Tensor::new([2, 3], a);
        let mb = Tensor::new([3, 2], b);
        let lhs = ma.matmul(&mb).transpose();
        let rhs = mb.transpose().matmul(&ma.transpose());
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// Matmul distributes over addition: A(B + C) = AB + AC.
    #[test]
    fn matmul_distributes(
        a in prop::collection::vec(-2f32..2.0, 4),
        b in prop::collection::vec(-2f32..2.0, 4),
        c in prop::collection::vec(-2f32..2.0, 4),
    ) {
        let ma = Tensor::new([2, 2], a);
        let mb = Tensor::new([2, 2], b);
        let mc = Tensor::new([2, 2], c);
        let sum = mb.zip(&mc, |x, y| x + y);
        let lhs = ma.matmul(&sum);
        let rhs_a = ma.matmul(&mb);
        let rhs_b = ma.matmul(&mc);
        for ((l, x), y) in lhs.data().iter().zip(rhs_a.data()).zip(rhs_b.data()) {
            prop_assert!((l - (x + y)).abs() < 1e-4);
        }
    }

    /// backward() of sum_all always returns all-ones gradients.
    #[test]
    fn sum_grad_is_ones(data in prop::collection::vec(-10f32..10.0, 1..20)) {
        let mut t = Tape::new();
        let x = t.leaf(Tensor::new([data.len()], data));
        let s = t.sum_all(x);
        let g = t.backward(s, 0);
        prop_assert!(g.grad(x).unwrap().data().iter().all(|&v| v == 1.0));
    }

    /// Softmax is invariant to constant logit shifts.
    #[test]
    fn softmax_shift_invariance(data in prop::collection::vec(-20f32..20.0, 2..10), shift in -50f32..50.0) {
        let mut t = Tape::new();
        let n = data.len();
        let x1 = t.leaf(Tensor::new([n], data.clone()));
        let y1 = t.softmax_last(x1);
        let x2 = t.leaf(Tensor::new([n], data.iter().map(|v| v + shift).collect::<Vec<_>>()));
        let y2 = t.softmax_last(x2);
        for (a, b) in t.value(y1).data().iter().zip(t.value(y2).data()) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }
}
