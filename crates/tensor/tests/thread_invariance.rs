//! Bitwise thread-invariance suite: every parallel code path must produce
//! *identical bits* at every thread count. The kernels only ever split
//! independent output regions (GEMM row bands, attention batch blocks,
//! element chunks) and never a reduction chain, so `CF_THREADS=8` must match
//! `CF_THREADS=1` exactly — these tests pin that contract, including the
//! ragged cases where items don't divide evenly across slices (7 row panels
//! on 4 threads, empty slices, single-row inputs).

use cf_tensor::optim::{clip_global_norm, Adam};
use cf_tensor::pool::set_threads;
use cf_tensor::{matmul_into, matmul_into_at, matmul_into_bt, GradStore, ParamStore, Tape, Tensor};
use std::sync::Mutex;

/// `set_threads` is process-global; serialize tests that sweep it so one
/// test's sweep doesn't overlap another's (overlap would still be *correct*
/// — the whole point is that bits don't depend on the width — but keeping
/// the sweeps disjoint makes a failure unambiguous about which width broke).
static THREADS_GUARD: Mutex<()> = Mutex::new(());

const WIDTHS: [usize; 4] = [1, 2, 4, 8];

/// Runs `f` at 1 thread, then asserts every other width reproduces the
/// result bit-for-bit (`T` carries bits, e.g. `Vec<u32>` of `to_bits`).
fn assert_thread_invariant<T: PartialEq + std::fmt::Debug>(label: &str, f: impl Fn() -> T) {
    let _g = THREADS_GUARD.lock().unwrap_or_else(|e| e.into_inner());
    set_threads(1);
    let base = f();
    for &t in &WIDTHS[1..] {
        set_threads(t);
        let got = f();
        assert_eq!(base, got, "{label}: bits diverged at {t} threads");
    }
    set_threads(1);
}

/// Deterministic pseudo-random fill (tiny LCG), identical on every run.
fn fill(n: usize, seed: u32) -> Vec<f32> {
    let mut state = seed.wrapping_mul(2654435761).wrapping_add(1);
    (0..n)
        .map(|_| {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            ((state >> 8) as f32) / ((1u32 << 23) as f32) - 1.0
        })
        .collect()
}

fn bits(data: &[f32]) -> Vec<u32> {
    data.iter().map(|x| x.to_bits()).collect()
}

/// GEMM shapes covering: the parallel blocked path (≥ 512k flops), ragged
/// row-panel counts (7 rows → 2 panels over up to 8 slices, 129 rows → 33
/// panels), the 0-row and 1-row degenerate cases, and small shapes that stay
/// on the serial kernels.
const GEMM_SHAPES: [(usize, usize, usize); 7] = [
    (128, 128, 128), // square, parallel
    (7, 512, 512),   // ragged: 2 row panels across up to 8 slices
    (129, 64, 96),   // panel count 33: straddles every partition boundary
    (0, 64, 64),     // empty output
    (1, 512, 1024),  // single row (below MR: serial small kernel)
    (64, 64, 8),     // below the flop floor: serial blocked
    (5, 3, 9),       // tiny: serial small kernel
];

#[test]
fn gemm_all_three_transposes_are_thread_invariant() {
    for &(m, k, n) in &GEMM_SHAPES {
        let a = fill(m * k, 11);
        let b = fill(k * n, 23);
        let at = fill(k * m, 31); // A stored [k, m] for matmul_into_at
        let bt = fill(n * k, 43); // B stored [n, k] for matmul_into_bt
        assert_thread_invariant(&format!("matmul_into {m}x{k}x{n}"), || {
            let mut out = vec![0.0f32; m * n];
            matmul_into(&a, &b, &mut out, m, k, n);
            bits(&out)
        });
        assert_thread_invariant(&format!("matmul_into_at {m}x{k}x{n}"), || {
            let mut out = vec![0.0f32; m * n];
            matmul_into_at(&at, &b, &mut out, m, k, n);
            bits(&out)
        });
        assert_thread_invariant(&format!("matmul_into_bt {m}x{k}x{n}"), || {
            let mut out = vec![0.0f32; m * n];
            matmul_into_bt(&a, &bt, &mut out, m, k, n);
            bits(&out)
        });
    }
}

/// Quantized fill in the i8 range, deterministic.
fn fill_q8(n: usize, seed: u32) -> Vec<i16> {
    let mut state = seed.wrapping_mul(2654435761).wrapping_add(1);
    (0..n)
        .map(|_| {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            ((state >> 8) % 255) as i16 - 127
        })
        .collect()
}

/// The int8 GEMM is exact integer math, so it must equal the naive scalar
/// reference *and* be invariant across thread counts on every ragged /
/// panel-straddle shape — including the parallel-path shapes (7×512×512 ragged
/// row panels, 129×64×96 straddling every partition boundary).
#[test]
fn q8_gemm_matches_reference_at_every_thread_count() {
    use cf_tensor::quant::matmul_q8_into;
    for &(m, k, n) in &GEMM_SHAPES {
        let aq = fill_q8(m * k, 19);
        let bq = fill_q8(k * n, 47);
        // Naive reference (exact i32).
        let mut reference = vec![0i32; m * n];
        for i in 0..m {
            for p in 0..k {
                let a = aq[i * k + p] as i32;
                for j in 0..n {
                    reference[i * n + j] += a * bq[p * n + j] as i32;
                }
            }
        }
        assert_thread_invariant(&format!("matmul_q8_into {m}x{k}x{n}"), || {
            let mut out = vec![0i32; m * n];
            matmul_q8_into(&aq, &bq, &mut out, m, k, n);
            assert_eq!(
                out, reference,
                "{m}x{k}x{n}: kernel diverged from reference"
            );
            out
        });
    }
}

/// The full quantized-weight matmul (dynamic activation quantization +
/// int GEMM + dequantize) must produce identical f32 bits at every width.
#[test]
fn quantized_weight_matmul_is_thread_invariant() {
    use cf_tensor::quant::QuantizedTensor;
    let (m, k, n) = (32usize, 96usize, 64usize);
    let w = Tensor::new([k, n], fill(k * n, 61));
    let a = Tensor::new([m, k], fill(m * k, 67));
    let qt = QuantizedTensor::from_tensor(&w).expect("eligible weight");
    assert_thread_invariant("QuantizedTensor::matmul_quantized 32x96x64", || {
        bits(qt.matmul_quantized(&a).data())
    });
}

#[test]
fn batched_matmul_is_thread_invariant() {
    // 16 batches of 32³ = 524288 flops: over the fan-out floor.
    let (bsz, m, k, n) = (16, 32, 32, 32);
    let a = Tensor::new([bsz, m, k], fill(bsz * m * k, 7));
    let b = Tensor::new([bsz, k, n], fill(bsz * k * n, 13));
    assert_thread_invariant("Tensor::bmm 16x32x32x32", || bits(a.bmm(&b).data()));
}

#[test]
fn fused_attention_forward_and_backward_are_thread_invariant() {
    // [B=8, T=16, d=32] with 2 heads: probs work = 8·2·16·16·16 = 65536
    // flops, over the attention fan-out floor, so the per-batch block split
    // engages at widths > 1.
    let (b, t, d, heads) = (8usize, 16usize, 32usize, 2usize);
    let q = Tensor::new([b, t, d], fill(b * t * d, 3));
    let k = Tensor::new([b, t, d], fill(b * t * d, 5));
    let v = Tensor::new([b, t, d], fill(b * t * d, 9));
    let scale = 1.0 / ((d / heads) as f32).sqrt();
    assert_thread_invariant("fused_attention fwd+bwd", || {
        let mut tape = Tape::new();
        let qv = tape.leaf(q.clone());
        let kv = tape.leaf(k.clone());
        let vv = tape.leaf(v.clone());
        let y = tape.fused_attention(qv, kv, vv, heads, scale, None);
        let out_bits = bits(tape.value(y).data());
        let loss = tape.mean_all(y);
        let grads = tape.backward(loss, 0);
        let mut all = out_bits;
        for leaf in [qv, kv, vv] {
            all.extend(bits(grads.grad(leaf).expect("leaf grad").data()));
        }
        all
    });
}

#[test]
fn adam_step_and_clip_are_thread_invariant() {
    // One parameter above the element-chunking floor (40k elems) and one
    // tiny one, so both the parallel and serial Adam paths are covered.
    let big = Tensor::new([200, 200], fill(40_000, 17));
    let small = Tensor::new([7], fill(7, 19));
    let gbig = fill(40_000, 29);
    let gsmall = fill(7, 37);
    assert_thread_invariant("adam step + clip", || {
        let mut ps = ParamStore::new();
        let id_big = ps.add("big", big.clone());
        let id_small = ps.add("small", small.clone());
        let mut opt = Adam::new(1e-2);
        let mut all = Vec::new();
        for _ in 0..3 {
            let mut grads = GradStore::for_params(ps.len());
            grads.add_param_grad(id_big, big.shape(), &gbig);
            grads.add_param_grad(id_small, small.shape(), &gsmall);
            clip_global_norm(&mut grads, 1.0);
            opt.step(&mut ps, &grads);
        }
        all.extend(bits(ps.get(id_big).data()));
        all.extend(bits(ps.get(id_small).data()));
        all
    });
}

#[test]
fn gradient_accumulation_is_thread_invariant() {
    // A parameter used twice on the tape: its two gradient contributions
    // accumulate through `add_assign`, which chunks across the pool at 40k
    // elements. The shard-merge path (`add_param_grad` onto an occupied
    // slot) is exercised by the Adam test above.
    let w = Tensor::new([200, 200], fill(40_000, 41));
    assert_thread_invariant("param grad accumulate", || {
        let mut ps = ParamStore::new();
        let id = ps.add("w", w.clone());
        let mut tape = Tape::new();
        let a = tape.param(&ps, id);
        let b = tape.param(&ps, id);
        let y = tape.mul(a, b);
        let loss = tape.sum_all(y);
        let grads = tape.backward(loss, ps.len());
        bits(grads.param_grad(id).expect("param grad").data())
    });
}

#[test]
fn shard_merge_first_touch_preserves_negative_zero() {
    // The fixed-order merge must copy the first contribution verbatim: a
    // `0.0 + x` seed would turn -0.0 into +0.0 and break bitwise parity
    // with the single-tape path.
    let _g = THREADS_GUARD.lock().unwrap_or_else(|e| e.into_inner());
    let mut ps = ParamStore::new();
    let t = Tensor::new([3], vec![0.25, -0.5, 1.0]);
    let id = ps.add("w", t.clone());
    let mut grads = GradStore::for_params(ps.len());
    grads.add_param_grad(id, t.shape(), &[-0.0, 1.5, -2.0]);
    let g = grads.param_grad(id).unwrap().data();
    assert_eq!(g[0].to_bits(), (-0.0f32).to_bits(), "-0.0 not preserved");
    // Second contribution adds elementwise in call order.
    grads.add_param_grad(id, t.shape(), &[1.0, 0.5, 0.5]);
    let g = grads.param_grad(id).unwrap().data();
    assert_eq!(bits(g), bits(&[-0.0 + 1.0, 1.5 + 0.5, -2.0 + 0.5]));
}

#[test]
fn gradcheck_passes_with_pool_active() {
    // Finite-difference gradient checks with the pool at width 4. The
    // matmul is sized over the fan-out floor (4·128·1024 = 524288 flops) so
    // the row-panel split genuinely runs during every probe evaluation.
    let _g = THREADS_GUARD.lock().unwrap_or_else(|e| e.into_inner());
    set_threads(4);
    let x = Tensor::new([512], fill(512, 53));
    let w = Tensor::new([128, 1024], fill(128 * 1024, 59));
    cf_tensor::gradcheck::assert_grad_close(&x, 1e-2, 3e-2, |t, v| {
        let m = t.reshape(v, [4, 128]);
        let wc = t.constant(w.clone());
        let p = t.matmul(m, wc);
        t.mean_all(p)
    });
    // And the attention block with learnable projections, as in the main
    // gradcheck suite, now under an active pool.
    use cf_tensor::nn::MultiHeadAttention;
    let xin = Tensor::new(
        [12],
        (0..12)
            .map(|i| 0.15 * (i as f32 + 1.0) * if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect(),
    );
    let n_params = {
        let mut rng = cf_rand::rngs::StdRng::seed_from_u64(7);
        let mut store = ParamStore::new();
        MultiHeadAttention::new(&mut store, "gc", 4, 2, &mut rng);
        store.len()
    };
    cf_tensor::gradcheck::assert_grad_close_with_params(&xin, 1e-2, 3e-2, n_params, |t, v| {
        let mut rng = cf_rand::rngs::StdRng::seed_from_u64(7);
        let mut store = ParamStore::new();
        let mha = MultiHeadAttention::new(&mut store, "gc", 4, 2, &mut rng);
        let xs = t.reshape(v, [1, 3, 4]);
        let y = mha.forward(t, &store, xs, None);
        t.mean_all(y)
    });
    set_threads(1);
}

use cf_rand::SeedableRng;
