//! Crash-safety properties of the checkpoint substrate, driven by the
//! cf-check fault-injection tools:
//!
//! 1. the save path survives a write fault at **every byte offset**
//!    (loud error or silent truncation) without panicking, and whatever
//!    landed on disk is rejected by the loader with a typed error;
//! 2. the atomic save protocol leaves **old-or-new, never garbage**: every
//!    on-disk state a crash can produce loads to exactly the old params or
//!    exactly the new ones;
//! 3. garbage and adversarial headers (fuzzed with cf-rand) produce typed
//!    errors with bounded allocation — never a panic, never an OOM abort.

use cf_check::fault::{crash_states, FaultMode, FaultyWriter};
use cf_rand::rngs::StdRng;
use cf_rand::{Rng, RngCore, SeedableRng};
use cf_tensor::{
    load_checkpoint, load_params, save_checkpoint, save_checkpoint_atomic, AdamSnapshot,
    CheckpointError, ParamStore, Tensor, TrainState,
};

fn store(fill: f32) -> ParamStore {
    let mut ps = ParamStore::new();
    ps.add(
        "enc.w",
        Tensor::new([3, 4], (0..12).map(|i| fill + i as f32 * 0.25).collect()),
    );
    ps.add("enc.b", Tensor::vector(&[fill, -fill, 0.5]));
    ps.add("head", Tensor::scalar(fill * 2.0));
    ps
}

fn state_for(ps: &ParamStore, tag: u64) -> TrainState {
    TrainState {
        adam: AdamSnapshot {
            step: tag,
            m: vec![Some(Tensor::new([3, 4], vec![0.01; 12])), None, None],
            v: vec![Some(Tensor::new([3, 4], vec![0.02; 12])), None, None],
        },
        rng: [tag, tag ^ 1, tag ^ 2, tag ^ 3],
        next_epoch: tag,
        bad_epochs: 0,
        best_epoch: Some(tag),
        best_val: Some(0.25),
        config_fingerprint: 0x5EED,
        best_params: Some(ps.clone()),
    }
}

fn encode(ps: &ParamStore, tag: u64) -> Vec<u8> {
    let mut buf = Vec::new();
    save_checkpoint(ps, Some(&state_for(ps, tag)), &mut buf).unwrap();
    buf
}

fn params_bits(ps: &ParamStore) -> Vec<u32> {
    ps.iter()
        .flat_map(|(_, _, t)| t.data().iter().map(|x| x.to_bits()))
        .collect()
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("cf_crash_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

#[test]
fn save_survives_write_faults_at_every_offset() {
    let src = store(1.0);
    let full = encode(&src, 9);
    for cut in 0..full.len() {
        // Loud failure: the save must surface the io error, not panic.
        let mut w = FaultyWriter::new(Vec::new(), cut, FaultMode::Error);
        let err = save_checkpoint(&src, Some(&state_for(&src, 9)), &mut w)
            .expect_err("budgeted writer must fail the save");
        assert_eq!(err.kind(), std::io::ErrorKind::Other, "cut {cut}");

        // Silent truncation: save "succeeds", but what's on disk is a bare
        // prefix — the loader must reject it with a typed error.
        let mut w = FaultyWriter::new(Vec::new(), cut, FaultMode::Truncate);
        save_checkpoint(&src, Some(&state_for(&src, 9)), &mut w)
            .expect("truncate mode reports success");
        let survived = w.into_inner();
        assert_eq!(&survived[..], &full[..cut], "prefix property violated");
        let mut dst = store(0.0);
        let before = params_bits(&dst);
        let err = load_checkpoint(&mut dst, &survived[..])
            .expect_err(&format!("cut {cut}: truncated stream accepted"));
        assert!(
            matches!(
                err,
                CheckpointError::Io(_)
                    | CheckpointError::Corrupt(_)
                    | CheckpointError::BadCrc { .. }
                    | CheckpointError::BadMagic
            ),
            "cut {cut}: {err}"
        );
        assert_eq!(params_bits(&dst), before, "cut {cut}: store was tainted");
    }
}

#[test]
fn atomic_protocol_always_recovers_old_or_new() {
    let old_store = store(1.0);
    let new_store = store(-7.0);
    let old_bytes = encode(&old_store, 1);
    let new_bytes = encode(&new_store, 2);
    let old_bits = params_bits(&old_store);
    let new_bits = params_bits(&new_store);

    let dir = tmp_dir("old_or_new");
    let path = dir.join("model.ckpt");
    let tmp = dir.join("model.ckpt.tmp");

    for cs in crash_states(Some(&old_bytes), &new_bytes) {
        // Materialize exactly the state the crash left behind.
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&tmp);
        if let Some(b) = &cs.path_bytes {
            std::fs::write(&path, b).unwrap();
        }
        if let Some(b) = &cs.tmp_bytes {
            std::fs::write(&tmp, b).unwrap();
        }

        // Recovery is just "open the final path": the protocol guarantees
        // it holds a complete checkpoint. The stale tmp is inert.
        let mut loaded = store(0.0);
        let f = std::fs::File::open(&path).unwrap();
        load_checkpoint(&mut loaded, std::io::BufReader::new(f))
            .unwrap_or_else(|e| panic!("{}: final path unreadable: {e}", cs.label));
        let bits = params_bits(&loaded);
        assert!(
            bits == old_bits || bits == new_bits,
            "{}: recovered params are neither old nor new",
            cs.label
        );

        // And the next save must clobber the stale tmp and land cleanly.
        save_checkpoint_atomic(&new_store, None, &path)
            .unwrap_or_else(|e| panic!("{}: post-crash save failed: {e}", cs.label));
        assert!(
            !tmp.exists(),
            "{}: stale tmp survived the next save",
            cs.label
        );
        let mut after = store(0.0);
        let f = std::fs::File::open(&path).unwrap();
        load_checkpoint(&mut after, std::io::BufReader::new(f)).unwrap();
        assert_eq!(params_bits(&after), new_bits, "{}", cs.label);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn fuzzed_garbage_headers_never_panic_or_overallocate() {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    let mut rejected = 0usize;
    for case in 0..2000 {
        let len = rng.gen_range(0usize..512);
        let mut buf = vec![0u8; len];
        rng.fill_bytes(&mut buf);
        // Half the cases get a valid magic so parsing reaches the length
        // fields — the satellite's actual attack surface: u32/u64 counts
        // trusted before sanity checks used to drive Vec::with_capacity.
        match case % 4 {
            0 if len >= 4 => buf[..4].copy_from_slice(b"CFT1"),
            1 if len >= 4 => buf[..4].copy_from_slice(b"CFT2"),
            _ => {}
        }
        let mut dst = store(3.0);
        if load_checkpoint(&mut dst, &buf[..]).is_err() {
            rejected += 1;
        }
    }
    // Random bytes forming a valid checkpoint for this exact store is
    // astronomically unlikely; every case must have been rejected.
    assert_eq!(rejected, 2000);
}

#[test]
fn adversarial_length_fields_fail_fast_not_oom() {
    // Hand-built hostile streams: plausible structure, absurd counts. Each
    // must return a typed error without attempting the implied allocation
    // (multi-GB) — run under a memory limit these would abort, not error.
    let mut dst = store(0.0);

    // CFT1 claiming u32::MAX params.
    let mut b = b"CFT1".to_vec();
    b.extend_from_slice(&u32::MAX.to_le_bytes());
    assert!(load_params(&mut dst, &b[..]).is_err());

    // CFT1 with a 4 GiB name length.
    let mut b = b"CFT1".to_vec();
    b.extend_from_slice(&3u32.to_le_bytes());
    b.extend_from_slice(&u32::MAX.to_le_bytes());
    let err = load_params(&mut dst, &b[..]).unwrap_err();
    assert!(matches!(err, CheckpointError::Corrupt(_)), "{err}");

    // CFT2 section announcing a body far beyond the section cap.
    let mut b = b"CFT2".to_vec();
    b.push(0x01);
    b.extend_from_slice(&u64::MAX.to_le_bytes());
    let err = load_checkpoint(&mut dst, &b[..]).unwrap_err();
    assert!(matches!(err, CheckpointError::Corrupt(_)), "{err}");

    // CFT2 section with a large-but-under-cap length and no data behind
    // it: the chunked reader must hit EOF, not pre-reserve the claim.
    let mut b = b"CFT2".to_vec();
    b.push(0x01);
    b.extend_from_slice(&(1u64 << 30).to_le_bytes());
    b.extend_from_slice(&[0u8; 64]);
    let err = load_checkpoint(&mut dst, &b[..]).unwrap_err();
    assert!(matches!(err, CheckpointError::Io(_)), "{err}");
}
