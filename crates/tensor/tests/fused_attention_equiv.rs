//! Bitwise equivalence of the fused multi-head attention against the
//! compositional per-head reference graph, through the full
//! `MultiHeadAttention` module: forward values, the input gradient, and every
//! projection-parameter gradient must match exactly (`to_bits`), not merely
//! within tolerance. This is the contract that let the fused kernel replace
//! the reference path without perturbing the training trajectory.

use cf_rand::rngs::StdRng;
use cf_rand::{Rng, SeedableRng};
use cf_tensor::nn::{KeyMask, MultiHeadAttention};
use cf_tensor::{ParamStore, Tape, Tensor};

fn rand_input(b: usize, t: usize, d: usize, rng: &mut StdRng) -> Tensor {
    Tensor::new(
        [b, t, d],
        (0..b * t * d).map(|_| rng.gen_range(-1.0..1.0)).collect(),
    )
}

fn run_case(b: usize, seq: usize, dim: usize, heads: usize, mask: Option<KeyMask<'_>>, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ps = ParamStore::new();
    let mha = MultiHeadAttention::new(&mut ps, "eq", dim, heads, &mut rng);
    let x = rand_input(b, seq, dim, &mut rng);

    let run = |fused: bool| {
        let mut t = Tape::new();
        let xv = t.leaf(x.clone());
        let y = if fused {
            mha.forward(&mut t, &ps, xv, mask)
        } else {
            mha.forward_reference(&mut t, &ps, xv, mask)
        };
        let l = t.mean_all(y);
        let g = t.backward(l, ps.len());
        let out_bits: Vec<u32> = t.value(y).data().iter().map(|v| v.to_bits()).collect();
        let dx_bits: Vec<u32> = g
            .grad(xv)
            .expect("input grad")
            .data()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        let param_bits: Vec<(String, Vec<u32>)> = ps
            .iter()
            .map(|(id, name, _)| {
                (
                    name.to_string(),
                    g.param_grad(id)
                        .expect("param grad")
                        .data()
                        .iter()
                        .map(|v| v.to_bits())
                        .collect(),
                )
            })
            .collect();
        (out_bits, dx_bits, param_bits)
    };

    let fused = run(true);
    let reference = run(false);
    assert_eq!(fused.0, reference.0, "forward bits diverge (seed {seed})");
    assert_eq!(
        fused.1, reference.1,
        "input grad bits diverge (seed {seed})"
    );
    for ((name_f, bits_f), (_, bits_r)) in fused.2.iter().zip(&reference.2) {
        assert_eq!(bits_f, bits_r, "param grad bits diverge for {name_f}");
    }
}

#[test]
fn fused_attention_bitwise_matches_reference_unmasked() {
    run_case(2, 5, 8, 2, None, 11);
    run_case(1, 3, 4, 1, None, 12); // single head
    run_case(3, 4, 12, 4, None, 13); // dh = 3, odd remainder shapes
}

#[test]
fn fused_attention_bitwise_matches_reference_masked() {
    let mask = vec![
        vec![true, true, false, true, false],
        vec![true, true, true, true, true],
    ];
    run_case(2, 5, 8, 2, Some(KeyMask::Rows(&mask)), 21);
    let mask1 = vec![vec![true, false, true]];
    run_case(1, 3, 6, 3, Some(KeyMask::Rows(&mask1)), 22);
    // The padded-batch fast path must hit the identical additive mask.
    run_case(2, 5, 8, 2, Some(KeyMask::PrefixLens(&[3, 5])), 23);
}

#[test]
fn fused_attention_bitwise_matches_reference_at_model_shape() {
    // The paper's Chain-Encoder shape: B=8, T=16, d=64, h=4.
    run_case(8, 16, 64, 4, None, 31);
}
