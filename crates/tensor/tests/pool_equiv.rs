//! Bit-equality of the pooled and fresh-buffer execution paths.
//!
//! The buffer pool (`cf_tensor::pool`) recycles every tensor and scratch
//! buffer across tape/context lifetimes. Recycling must be unobservable:
//! with the pool disabled, every buffer comes fresh from the allocator (the
//! pre-pool behaviour), so running the same seeded computation both ways and
//! comparing bits proves a recycled buffer can never leak stale contents
//! into results. Each test additionally *dirties* the pool with NaN-filled
//! buffers first, so any read of recycled memory would poison the output.

use cf_rand::rngs::StdRng;
use cf_rand::{Rng, SeedableRng};
use cf_tensor::nn::{Linear, TransformerEncoder};
use cf_tensor::optim::Adam;
use cf_tensor::{pool, Forward, InferCtx, ParamStore, Tape, Tensor};

fn rand_tensor(shape: &[usize], rng: &mut StdRng) -> Tensor {
    let n: usize = shape.iter().product();
    Tensor::new(
        shape.to_vec(),
        (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect(),
    )
}

/// Fills this thread's pool with NaN garbage across the size classes the
/// model shapes use, so stale-content reads cannot go unnoticed.
fn dirty_pool() {
    for n in [1usize, 16, 64, 256, 1024, 4096, 16384] {
        let mut v = pool::take_f32(n);
        v.resize(n, f32::NAN);
        pool::recycle_f32(v);
    }
}

/// Runs `steps` taped train steps (encoder + head, MSE loss, Adam) from a
/// fixed seed and returns each step's loss bits.
fn train_loss_bits(pooled: bool, steps: usize) -> Vec<u32> {
    let prev = pool::set_enabled(pooled);
    if pooled {
        dirty_pool();
    }
    let mut rng = StdRng::seed_from_u64(23);
    let mut ps = ParamStore::new();
    let enc = TransformerEncoder::new(&mut ps, "enc", 16, 2, 2, 32, &mut rng);
    let head = Linear::new(&mut ps, "head", 16, 1, &mut rng);
    let x = rand_tensor(&[8, 4, 16], &mut rng);
    let target = rand_tensor(&[32, 1], &mut rng);
    let mut opt = Adam::new(1e-3);
    let mut bits = Vec::with_capacity(steps);
    for _ in 0..steps {
        let mut t = Tape::new();
        let xv = t.leaf(x.clone());
        let h = enc.forward(&mut t, &ps, xv, None);
        let flat = t.reshape(h, [32, 16]);
        let pred = head.forward(&mut t, &ps, flat);
        let loss = t.mse_loss(pred, &target);
        let grads = t.backward(loss, ps.len());
        opt.step(&mut ps, &grads);
        bits.push(t.value(loss).item().to_bits());
    }
    pool::set_enabled(prev);
    bits
}

/// Pooled and fresh-buffer training must follow the identical loss
/// trajectory, bit for bit, for several steps (covering forward, backward,
/// gradient accumulation and the optimizer update).
#[test]
fn taped_train_step_loss_bits_pooled_vs_fresh() {
    let pooled = train_loss_bits(true, 6);
    let fresh = train_loss_bits(false, 6);
    assert_eq!(pooled, fresh, "pooled training diverged from fresh buffers");
}

/// One tape-free forward of the encoder stack, returning output bits.
fn infer_bits(pooled: bool) -> Vec<u32> {
    let prev = pool::set_enabled(pooled);
    if pooled {
        dirty_pool();
    }
    let mut rng = StdRng::seed_from_u64(29);
    let mut ps = ParamStore::new();
    let enc = TransformerEncoder::new(&mut ps, "enc", 16, 4, 2, 32, &mut rng);
    let head = Linear::new(&mut ps, "head", 16, 1, &mut rng);
    let x = rand_tensor(&[3, 5, 16], &mut rng);
    let mut ctx = InferCtx::new();
    // Two rounds through one reused context: the second runs entirely on
    // recycled buffers and must not change the answer.
    let mut out = Vec::new();
    for _ in 0..2 {
        ctx.clear();
        let xv = ctx.leaf(x.clone());
        let h = enc.forward(&mut ctx, &ps, xv, None);
        let flat = ctx.reshape(h, [15, 16].into());
        let y = head.forward(&mut ctx, &ps, flat);
        out = ctx.value(y).data().iter().map(|v| v.to_bits()).collect();
    }
    pool::set_enabled(prev);
    out
}

/// The tape-free (serving) forward must be bitwise identical with the pool
/// enabled-and-dirty, warm-recycled, and disabled.
#[test]
fn infer_forward_bits_pooled_vs_fresh() {
    let pooled = infer_bits(true);
    let fresh = infer_bits(false);
    assert_eq!(pooled, fresh, "pooled InferCtx forward diverged");
}

/// Gradcheck over a tape running on a warm, dirtied pool: finite-difference
/// gradients of a composition that crosses the blocked-GEMM dispatch
/// threshold (8×16 · 16×64 = 8192 flops) and the fused softmax/layer-norm
/// scratch paths.
#[test]
fn gradcheck_on_warm_pooled_tape() {
    let prev = pool::set_enabled(true);
    dirty_pool();
    let mut rng = StdRng::seed_from_u64(31);
    let x = rand_tensor(&[8, 16], &mut rng);
    let w = rand_tensor(&[16, 64], &mut rng);
    cf_tensor::gradcheck::assert_grad_close(&x, 1e-2, 2e-2, |t, xv| {
        let wv = t.constant(w.clone());
        let h = t.matmul(xv, wv); // blocked-path GEMM
        let h = t.softmax_last(h);
        let h = t.layer_norm_last(h, 1e-5);
        t.mean_all(h)
    });
    pool::set_enabled(prev);
}
