//! Umbrella crate for the ChainsFormer reproduction workspace.
//!
//! Re-exports the public crates so examples and integration tests can use a
//! single import root.

pub use cf_baselines as baselines;
pub use cf_chains as chains;
pub use cf_hyperbolic as hyperbolic;
pub use cf_kg as kg;
pub use cf_tensor as tensor;
pub use chainsformer as model;
